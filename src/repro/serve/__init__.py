"""Multi-tenant serving layer with cross-tenant micro-batching.

The production front door for the skeleton runtime (docs/serving.md):
a long-running asyncio service that accepts pipeline jobs from many
independent tenants, admission-controls them (bounded per-tenant
queues, reject-with-retry-after), schedules fairly across tenants
(weighted deficit round-robin), and merges small same-signature jobs
across tenants into single fused, verified NDRange launches.

    from repro.serve import ServeConfig, ServeClient, serve_in_thread

    with serve_in_thread(config=ServeConfig(num_gpus=2)) as server:
        with ServeClient("127.0.0.1", server.port, "tenant-a") as c:
            job = c.submit(["float f(float x) { return 2.0f*x; }"],
                           xs)
            ys = c.result(job)
"""

import repro.skelcl  # noqa: F401 -- break the graph<->skelcl import cycle

from repro.serve.admission import AdmissionController
from repro.serve.batcher import Batcher
from repro.serve.client import ServeClient
from repro.serve.engine import ServeConfig, ServeEngine, StreamSession
from repro.serve.job import Job, JobStatus
from repro.serve.metrics import ServeStats, TenantStats, serve_table
from repro.serve.server import ServeServer, serve_in_thread
from repro.serve.session import Session, SessionRegistry

__all__ = [
    "AdmissionController", "Batcher", "Job", "JobStatus",
    "ServeClient", "ServeConfig", "ServeEngine", "ServeServer",
    "ServeStats", "Session", "SessionRegistry", "StreamSession",
    "TenantStats", "serve_in_thread", "serve_table",
]
