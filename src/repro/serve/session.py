"""Connection/session bookkeeping for the serve server.

One session = one client TCP connection.  The registry answers "who is
connected right now", attributes traffic to tenants, and records how
each session ended (clean EOF vs. dropped mid-frame) — the
``serve-smoke`` CI job asserts that a client vanishing mid-job leaves
the server healthy and is accounted as a dirty disconnect.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field


@dataclass
class Session:
    """One live (or finished) client connection."""

    id: int
    peer: str
    connected_s: float = field(default_factory=time.monotonic)
    #: tenants this connection has submitted or polled for
    tenants: set[str] = field(default_factory=set)
    frames: int = 0
    jobs_submitted: int = 0
    closed: bool = False
    clean: bool = True


class SessionRegistry:
    """Thread-safe registry of client sessions."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._sessions: dict[int, Session] = {}
        self.total = 0
        self.dirty_disconnects = 0

    def open(self, peer: str) -> Session:
        with self._lock:
            session = Session(id=next(self._ids), peer=peer)
            self._sessions[session.id] = session
            self.total += 1
            return session

    def close(self, session: Session, clean: bool = True) -> None:
        with self._lock:
            session.closed = True
            session.clean = clean
            if not clean:
                self.dirty_disconnects += 1
            self._sessions.pop(session.id, None)

    def note(self, session: Session, tenant: str | None = None,
             submitted: bool = False) -> None:
        with self._lock:
            session.frames += 1
            if tenant:
                session.tenants.add(tenant)
            if submitted:
                session.jobs_submitted += 1

    @property
    def active(self) -> int:
        with self._lock:
            return len(self._sessions)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "active": len(self._sessions),
                "total": self.total,
                "dirty_disconnects": self.dirty_disconnects,
                "sessions": [
                    {"id": s.id, "peer": s.peer,
                     "tenants": sorted(s.tenants),
                     "frames": s.frames,
                     "jobs_submitted": s.jobs_submitted,
                     "age_s": time.monotonic() - s.connected_s}
                    for s in self._sessions.values()],
            }
