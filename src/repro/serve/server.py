"""The asyncio front door: framed TCP sessions onto the serve engine.

The server speaks the cluster wire format (:mod:`repro.cluster.wire`)
with the serving opcodes: SUBMIT, POLL, RESULT, CANCEL, STATS, plus
PING for liveness.  Each client connection is one asyncio task; the
engine's own thread does the heavy lifting, so the event loop only
ever parses frames and touches lock-guarded queues — thousands of
idle sessions cost nothing.

Disconnect semantics: a clean EOF at a frame boundary ends the session
quietly; a connection dropped mid-frame is recorded as a dirty
disconnect.  Either way the tenant's queued jobs keep running — a
client may reconnect and fetch results by job id (ids are scoped to
the tenant, so only the owning tenant can address them).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import threading

import numpy as np

from repro.cluster import wire
from repro.errors import (AdmissionRejectedError, ServeError,
                          StreamError, UnknownJobError, WireFormatError)
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.job import JobStatus
from repro.serve.session import Session, SessionRegistry


class ServeServer:
    """Serves one :class:`ServeEngine` over localhost TCP."""

    def __init__(self, engine: ServeEngine, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self.sessions = SessionRegistry()
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> int:
        """Bind and start accepting; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- per-connection session --------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername")
        session = self.sessions.open(
            f"{peername[0]}:{peername[1]}" if peername else "?")
        clean = True
        try:
            while True:
                try:
                    op, seq, meta, payload = \
                        await wire.read_frame_async(reader)
                except wire.ConnectionClosedError:
                    break  # orderly goodbye at a frame boundary
                except (WireFormatError, asyncio.IncompleteReadError):
                    clean = False
                    break
                rop, rmeta, rpayload = self._dispatch(
                    session, op, meta, payload)
                writer.write(wire.encode_frame(rop, seq, rmeta,
                                               rpayload))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            clean = False
        finally:
            self.sessions.close(session, clean=clean)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # -- dispatch ----------------------------------------------------------------

    def _dispatch(self, session: Session, op: int, meta: dict,
                  payload: bytes) -> tuple[int, dict, bytes]:
        tenant = str(meta.get("tenant", ""))
        self.sessions.note(session, tenant or None,
                           submitted=op == wire.Op.SUBMIT)
        try:
            if op == wire.Op.SUBMIT:
                return self._handle_submit(tenant, meta, payload)
            if op == wire.Op.POLL:
                job = self.engine.get(tenant, str(meta.get("job", "")))
                return wire.Op.OK, job.describe(), b""
            if op == wire.Op.RESULT:
                return self._handle_result(tenant, meta)
            if op == wire.Op.CANCEL:
                cancelled = self.engine.cancel(
                    tenant, str(meta.get("job", "")))
                job = self.engine.get(tenant, str(meta.get("job", "")))
                return wire.Op.OK, {"cancelled": cancelled,
                                    "status": job.status.value}, b""
            if op == wire.Op.STATS:
                snapshot = self.engine.snapshot()
                snapshot["sessions"] = self.sessions.snapshot()
                return wire.Op.OK, snapshot, b""
            if op == wire.Op.PING:
                return wire.Op.OK, {
                    "pid": os.getpid(),
                    "queue_depth": self.engine.queue_depth(),
                    "sessions": self.sessions.active}, b""
            if op == wire.Op.STREAM_OPEN:
                return self._handle_stream_open(tenant, meta)
            if op == wire.Op.STREAM_PUSH:
                return self._handle_stream_push(tenant, meta, payload)
            if op == wire.Op.STREAM_CLOSE:
                jobs = self.engine.close_stream(
                    tenant, str(meta.get("stream", "")))
                return wire.Op.OK, {
                    "stream": str(meta.get("stream", "")),
                    "jobs": [job.id for job in jobs]}, b""
        except AdmissionRejectedError as exc:
            return wire.Op.BUSY, {
                "error": str(exc),
                "retry_after_s": exc.retry_after_s,
                "tenant": exc.tenant}, b""
        except (ServeError, StreamError, UnknownJobError, ValueError,
                TypeError) as exc:
            rmeta = {"error": str(exc), "kind": type(exc).__name__}
            code = getattr(exc, "code", "")
            if code:
                rmeta["code"] = code
            return wire.Op.ERROR, rmeta, b""
        return wire.Op.ERROR, {"error": f"unknown opcode {op}",
                               "kind": "protocol"}, b""

    def _handle_submit(self, tenant: str, meta: dict,
                       payload: bytes) -> tuple[int, dict, bytes]:
        sources = meta.get("sources")
        if not isinstance(sources, list) or not sources:
            raise ServeError("SUBMIT needs a non-empty sources list")
        dtype = np.dtype(str(meta.get("dtype", "float32")))
        array = np.frombuffer(payload, dtype=dtype).copy()
        deadline = meta.get("deadline_s")
        job = self.engine.submit(
            tenant, [str(s) for s in sources], array,
            deadline_s=None if deadline is None else float(deadline))
        return wire.Op.OK, {"job": job.id,
                            "status": job.status.value}, b""

    def _handle_stream_open(self, tenant: str,
                            meta: dict) -> tuple[int, dict, bytes]:
        sources = meta.get("sources")
        if not isinstance(sources, list) or not sources:
            raise ServeError(
                "STREAM_OPEN needs a non-empty sources list")
        window = meta.get("window")
        if not isinstance(window, dict) or "size" not in window:
            raise ServeError(
                "STREAM_OPEN needs a window spec with at least "
                "{'size': n}")
        session = self.engine.open_stream(
            tenant, [str(s) for s in sources], window)
        return wire.Op.OK, {"stream": session.id,
                            "window": session.spec.as_dict()}, b""

    def _handle_stream_push(self, tenant: str, meta: dict,
                            payload: bytes) -> tuple[int, dict, bytes]:
        dtype = np.dtype(str(meta.get("dtype", "float32")))
        chunk = np.frombuffer(payload, dtype=dtype).copy()
        seq = meta.get("seq")
        jobs = self.engine.push_stream(
            tenant, str(meta.get("stream", "")), chunk,
            seq=None if seq is None else int(seq))
        return wire.Op.OK, {
            "stream": str(meta.get("stream", "")),
            "jobs": [job.id for job in jobs],
            "windows": len(jobs)}, b""

    def _handle_result(self, tenant: str,
                       meta: dict) -> tuple[int, dict, bytes]:
        job = self.engine.get(tenant, str(meta.get("job", "")))
        if job.status is JobStatus.DONE:
            assert job.result is not None
            return wire.Op.RESULT, {
                "job": job.id, "status": job.status.value,
                "dtype": job.result.dtype.str,
                "batch_size": job.batch_size,
            }, job.result.tobytes()
        if job.status.terminal:  # failed / cancelled / expired
            return wire.Op.ERROR, {
                "error": job.error or f"job {job.id} "
                                      f"{job.status.value}",
                "kind": job.status.value, "job": job.id}, b""
        return wire.Op.OK, {"job": job.id,
                            "status": job.status.value}, b""


@contextlib.contextmanager
def serve_in_thread(engine: ServeEngine | None = None,
                    config: ServeConfig | None = None,
                    host: str = "127.0.0.1", port: int = 0):
    """Run a serve server (and its engine) on background threads.

    The test-suite/CLI/benchmark entry point::

        with serve_in_thread(config=ServeConfig()) as server:
            client = ServeClient("127.0.0.1", server.port, "tenant-a")

    On exit the event loop is stopped and, if the engine was created
    here, its scheduling thread too.
    """
    own_engine = engine is None
    if engine is None:
        engine = ServeEngine(config)
    engine.start()
    server = ServeServer(engine, host, port)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            # connection handlers for still-open clients are cancelled,
            # not leaked
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.close()

    thread = threading.Thread(target=run, name="serve-server",
                              daemon=True)
    thread.start()
    if not started.wait(timeout=10.0):
        raise ServeError("serve server failed to start within 10 s")
    try:
        yield server
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10.0)
        if own_engine:
            engine.stop()
