"""The unit of serving: one tenant's skeleton-pipeline job."""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

import numpy as np

from repro.graph.batching import pipeline_signature


class JobStatus(str, enum.Enum):
    """Lifecycle of a job inside the serve engine."""

    QUEUED = "queued"        # admitted, waiting in the tenant's queue
    RUNNING = "running"      # picked by a scheduling round
    DONE = "done"            # result available
    FAILED = "failed"        # execution raised; ``error`` holds why
    CANCELLED = "cancelled"  # tenant cancelled it while still queued
    EXPIRED = "expired"      # deadline passed before it was scheduled

    @property
    def terminal(self) -> bool:
        return self not in (JobStatus.QUEUED, JobStatus.RUNNING)


@dataclass
class Job:
    """One admitted pipeline job.

    ``sources`` is the ordered tuple of map-stage sources; together
    with the input dtype it determines the job's batching signature.
    ``deadline_s`` is an *absolute* ``time.monotonic()`` instant (or
    None for best-effort).
    """

    id: str
    tenant: str
    sources: tuple[str, ...]
    payload: np.ndarray
    deadline_s: float | None = None
    status: JobStatus = JobStatus.QUEUED
    submitted_s: float = field(default_factory=time.monotonic)
    started_s: float | None = None
    finished_s: float | None = None
    result: np.ndarray | None = None
    error: str = ""
    #: jobs that shared this job's launch (1 = ran alone)
    batch_size: int = 0
    #: "oneshot" (a submitted job) or "stream" (one window of a
    #: stream session) — stream windows ride the same queues, DRR
    #: rounds and micro-batches as one-shot jobs
    kind: str = "oneshot"
    #: owning stream session id (stream windows only)
    stream: str = ""
    #: window index within the stream (stream windows only)
    window: int = -1

    @property
    def signature(self) -> str:
        """Batching identity: SHA-256 of stage sources + dtype.

        Two jobs merge only when signatures match — kernel *names*
        never enter the hash, so same-named kernels with different
        bodies (different tenants' private kernels) can never collide.
        """
        return pipeline_signature(self.sources, self.payload.dtype)

    @property
    def items(self) -> int:
        return int(self.payload.shape[0])

    @property
    def latency_s(self) -> float | None:
        """Submit-to-terminal latency (None while in flight)."""
        if self.finished_s is None:
            return None
        return self.finished_s - self.submitted_s

    def expired(self, now: float | None = None) -> bool:
        if self.deadline_s is None:
            return False
        return (now if now is not None else time.monotonic()) \
            > self.deadline_s

    def describe(self) -> dict:
        """Wire-friendly snapshot (POLL replies, status reports)."""
        info = {
            "job": self.id,
            "tenant": self.tenant,
            "status": self.status.value,
            "items": self.items,
            "batch_size": self.batch_size,
            "error": self.error,
            "latency_ms": (None if self.latency_s is None
                           else self.latency_s * 1e3),
            "kind": self.kind,
        }
        if self.kind == "stream":
            info["stream"] = self.stream
            info["window"] = self.window
        return info
