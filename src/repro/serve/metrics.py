"""Serving metrics: queue depths, latency percentiles, batch counters.

Everything ``repro serve status`` / ``repro profile --serve`` prints
and the ``serve-smoke`` CI artifact records comes from here.  Latency
is wall-clock submit-to-done per job; percentiles are computed with
``numpy.percentile`` over the completed population.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TenantStats:
    """Counters for one tenant."""

    tenant: str
    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    expired: int = 0
    items: int = 0
    max_queue_depth: int = 0
    streams: int = 0
    stream_windows: int = 0
    latencies_s: list[float] = field(default_factory=list)

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q)
                     * 1e3)

    def as_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "expired": self.expired,
            "items": self.items,
            "max_queue_depth": self.max_queue_depth,
            "streams": self.streams,
            "stream_windows": self.stream_windows,
            "p50_ms": self.percentile_ms(50),
            "p95_ms": self.percentile_ms(95),
            "p99_ms": self.percentile_ms(99),
        }


@dataclass
class ServeStats:
    """Whole-server counters plus the per-tenant breakdown."""

    launches: int = 0          # NDRange pipeline launches performed
    batched_jobs: int = 0      # jobs that shared a launch with others
    plans_verified: int = 0    # batched plans the verifier approved
    fused_stages: int = 0
    busy_s: float = 0.0        # wall-clock spent executing
    rounds: int = 0            # scheduler rounds that picked work
    streams_opened: int = 0    # stream sessions ever opened
    stream_windows: int = 0    # stream windows admitted as jobs
    tenants: dict[str, TenantStats] = field(default_factory=dict)

    def tenant(self, name: str) -> TenantStats:
        stats = self.tenants.get(name)
        if stats is None:
            stats = TenantStats(tenant=name)
            self.tenants[name] = stats
        return stats

    @property
    def completed(self) -> int:
        return sum(t.completed for t in self.tenants.values())

    @property
    def mean_service_s(self) -> float:
        done = self.completed
        return self.busy_s / done if done else 0.0

    def all_latencies_s(self) -> list[float]:
        out: list[float] = []
        for t in self.tenants.values():
            out.extend(t.latencies_s)
        return out

    def percentile_ms(self, q: float) -> float:
        lat = self.all_latencies_s()
        if not lat:
            return 0.0
        return float(np.percentile(np.asarray(lat), q) * 1e3)

    def as_dict(self) -> dict:
        return {
            "launches": self.launches,
            "batched_jobs": self.batched_jobs,
            "plans_verified": self.plans_verified,
            "fused_stages": self.fused_stages,
            "busy_s": self.busy_s,
            "rounds": self.rounds,
            "streams_opened": self.streams_opened,
            "stream_windows": self.stream_windows,
            "completed": self.completed,
            "mean_service_ms": self.mean_service_s * 1e3,
            "p50_ms": self.percentile_ms(50),
            "p95_ms": self.percentile_ms(95),
            "p99_ms": self.percentile_ms(99),
            "tenants": {name: t.as_dict()
                        for name, t in sorted(self.tenants.items())},
        }


def serve_table(stats: ServeStats) -> str:
    """Per-tenant table for ``repro profile --serve`` (rendered by the
    shared :func:`repro.util.tables.format_table` helper)."""
    from repro.util.tables import format_table
    rows = []
    for name, t in sorted(stats.tenants.items()):
        rows.append([
            name, t.submitted, t.rejected, t.completed,
            t.failed + t.cancelled + t.expired, t.max_queue_depth,
            f"{t.percentile_ms(50):.2f}", f"{t.percentile_ms(95):.2f}",
            f"{t.percentile_ms(99):.2f}",
        ])
    return format_table(
        ["tenant", "submit", "reject", "done", "other", "max queue",
         "p50 ms", "p95 ms", "p99 ms"], rows,
        title="per-tenant serving metrics")
