"""Grouping jobs into launches, and the per-signature skeleton cache.

The batcher owns the mapping from job *signature* (source hash +
dtype, :func:`repro.graph.batching.pipeline_signature`) to compiled
skeleton stages.  Keying strictly by signature — never by kernel name
— is the tenant-isolation property: two tenants submitting a kernel
called ``f`` with different bodies get different signatures, different
cache entries, and can never be merged into one launch or served each
other's binaries.  Conversely, byte-identical pipelines from different
tenants share one entry, which is exactly what makes cross-tenant
micro-batching pay.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.graph.batching import BatchedRun, run_batched
from repro.serve.job import Job


class Batcher:
    """Groups compatible jobs and executes each group as one launch."""

    def __init__(self, max_batch_jobs: int = 32,
                 max_batch_items: int = 1 << 18) -> None:
        self.max_batch_jobs = max(int(max_batch_jobs), 1)
        self.max_batch_items = max(int(max_batch_items), 1)
        #: signature -> instantiated pipeline stages
        self._skeletons: dict[str, list] = {}

    # -- skeleton cache ----------------------------------------------------------

    def stages_for(self, job: Job) -> list:
        """The (cached) skeleton stages implementing *job*'s pipeline."""
        signature = job.signature
        stages = self._skeletons.get(signature)
        if stages is None:
            from repro.skelcl import Map
            stages = [Map(source) for source in job.sources]
            self._skeletons[signature] = stages
        return stages

    @property
    def cached_signatures(self) -> list[str]:
        return sorted(self._skeletons)

    # -- grouping ----------------------------------------------------------------

    def group(self, jobs: Sequence[Job]) -> list[list[Job]]:
        """Partition *jobs* into batchable groups.

        Jobs merge only when their signatures match; a group is split
        whenever it would exceed ``max_batch_jobs`` or
        ``max_batch_items``.  Submission order is preserved within
        each signature.
        """
        by_signature: dict[str, list[Job]] = {}
        order: list[str] = []
        for job in jobs:
            signature = job.signature
            if signature not in by_signature:
                by_signature[signature] = []
                order.append(signature)
            by_signature[signature].append(job)
        groups: list[list[Job]] = []
        for signature in order:
            current: list[Job] = []
            items = 0
            for job in by_signature[signature]:
                if current and (len(current) >= self.max_batch_jobs
                                or items + job.items
                                > self.max_batch_items):
                    groups.append(current)
                    current, items = [], 0
                current.append(job)
                items += job.items
            if current:
                groups.append(current)
        return groups

    # -- execution ---------------------------------------------------------------

    def execute(self, ctx, group: Sequence[Job], adaptive: bool = False,
                weight_store=None) -> BatchedRun:
        """Run one group as a single batched launch; fills each job's
        result/status/timestamps in place."""
        from repro.serve.job import JobStatus

        stages = self.stages_for(group[0])
        now = time.monotonic()
        for job in group:
            job.started_s = now
            job.status = JobStatus.RUNNING
        run = run_batched(ctx, stages,
                          [job.payload for job in group],
                          adaptive=adaptive, weight_store=weight_store)
        finished = time.monotonic()
        for job, output in zip(group, run.outputs):
            job.result = output
            job.status = JobStatus.DONE
            job.finished_s = finished
            job.batch_size = len(group)
        return run
