"""Admission control: bounded queues, reject-don't-buffer on overload.

A production service protects itself by refusing work it cannot hold:
each tenant gets a bounded queue (no single tenant can fill the
server), and a global bound caps total buffered work.  A rejected
submit carries a ``retry_after_s`` estimate derived from the backlog
ahead of the tenant and the observed mean service time, so clients can
back off intelligently instead of hammering the server.
"""

from __future__ import annotations

import random

from repro.errors import AdmissionRejectedError, ServeError

#: fallback service-time estimate before anything has completed
DEFAULT_SERVICE_ESTIMATE_S = 0.05

#: relative spread applied to retry_after_s hints: deterministic hints
#: synchronize every backed-off client onto the same retry instant,
#: and the resulting thundering herd re-rejects itself forever
RETRY_JITTER = 0.25


class AdmissionController:
    """Decides whether a submit is allowed to enter the queues."""

    def __init__(self, max_queue_jobs: int = 64,
                 max_total_jobs: int = 1024,
                 jitter: float = RETRY_JITTER,
                 seed: int | None = None) -> None:
        if max_queue_jobs <= 0 or max_total_jobs <= 0:
            raise ServeError(
                "admission bounds must be positive, got "
                f"per-tenant {max_queue_jobs}, total {max_total_jobs}")
        if not 0.0 <= jitter < 1.0:
            raise ServeError(
                f"retry jitter must be in [0, 1), got {jitter}")
        self.max_queue_jobs = max_queue_jobs
        self.max_total_jobs = max_total_jobs
        self.jitter = jitter
        self._rng = random.Random(seed)

    def check(self, tenant: str, tenant_depth: int, total_depth: int,
              mean_service_s: float = 0.0) -> None:
        """Raise :class:`AdmissionRejectedError` if the job must not
        be queued; return silently if it may.

        Args:
            tenant: submitting tenant (for the error message).
            tenant_depth: jobs the tenant already has queued.
            total_depth: jobs queued across all tenants.
            mean_service_s: observed mean seconds per completed job
                (0 → use a conservative default).
        """
        service = mean_service_s or DEFAULT_SERVICE_ESTIMATE_S
        if tenant_depth >= self.max_queue_jobs:
            raise AdmissionRejectedError(
                f"tenant {tenant!r} queue is full "
                f"({tenant_depth}/{self.max_queue_jobs} jobs)",
                retry_after_s=self.retry_after(tenant_depth, service),
                tenant=tenant)
        if total_depth >= self.max_total_jobs:
            raise AdmissionRejectedError(
                f"server is at capacity ({total_depth}/"
                f"{self.max_total_jobs} queued jobs)",
                retry_after_s=self.retry_after(total_depth, service),
                tenant=tenant)

    def retry_after(self, depth: int, mean_service_s: float) -> float:
        """When roughly half the backlog ahead should have drained,
        spread by bounded jitter so rejected clients desynchronize."""
        base = self.base_retry_after(depth, mean_service_s)
        spread = self._rng.uniform(-self.jitter, self.jitter)
        return round(base * (1.0 + spread), 4)

    @staticmethod
    def base_retry_after(depth: int, mean_service_s: float) -> float:
        """The jitter-free drain estimate the hint is centred on."""
        return round(max(depth, 1) * mean_service_s * 0.5, 4)
