"""The serve engine: queues, scheduling rounds, batched execution.

The engine is the synchronous heart of :mod:`repro.serve`.  It owns:

- the per-tenant bounded job queues (admission-controlled),
- the weighted deficit-round-robin scheduler deciding whose jobs the
  next round drains (:class:`repro.sched.fair.DeficitRoundRobin`),
- the micro-batcher merging same-signature jobs into single launches
  (:class:`repro.serve.batcher.Batcher`), and
- a **private** :class:`SkelCLContext` — the engine never touches the
  process-global default context, so a test or embedding application
  can keep using ``skelcl.init()`` independently.

The asyncio server (:mod:`repro.serve.server`) calls ``submit`` /
``get`` / ``cancel`` from the event-loop thread while a dedicated
engine thread loops :meth:`ServeEngine.run_once`; all shared state is
guarded by one condition variable, and execution itself is serialized
by a separate lock (skeleton evaluation is not reentrant).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.errors import (AdmissionRejectedError, ReproError, ServeError,
                          StreamError, UnknownJobError)
from repro.sched.fair import DeficitRoundRobin
from repro.serve.admission import (DEFAULT_SERVICE_ESTIMATE_S,
                                   AdmissionController)
from repro.serve.batcher import Batcher
from repro.serve.job import Job, JobStatus
from repro.serve.metrics import ServeStats
from repro.stream.window import WindowSpec, Windower


@dataclass
class ServeConfig:
    """Tunables for one serve engine."""

    num_gpus: int = 2
    gpu_spec: str = "tesla_c1060"
    #: merge same-signature jobs into one launch (False = serial
    #: job-at-a-time, the benchmark baseline)
    micro_batch: bool = True
    max_batch_jobs: int = 32
    max_batch_items: int = 1 << 18
    #: admission bounds
    max_queue_jobs: int = 64
    max_total_jobs: int = 1024
    #: DRR fairness
    quantum_items: int = 4096
    smoothing: float = 0.5
    #: cap on jobs drained per scheduling round (None = DRR decides)
    max_round_jobs: int | None = None
    #: forward adaptive device-split scheduling into the graph engine
    adaptive_split: bool = False
    #: per-stream bound on window jobs in flight (queued or running);
    #: pushes beyond it are refused with BUSY + retry_after, the
    #: streaming analogue of bounded admission
    stream_window_budget: int = 8


@dataclass
class StreamSession:
    """One tenant's open stream: a windower feeding window jobs.

    Windows become ordinary :class:`Job`s (``kind="stream"``) in the
    tenant's queue, so DRR fairness and same-signature micro-batching
    apply to streams and one-shot jobs uniformly — a stream is just a
    tenant that never stops submitting.
    """

    id: str
    tenant: str
    sources: tuple[str, ...]
    spec: WindowSpec
    windower: Windower
    job_ids: list[str] = field(default_factory=list)
    closed: bool = False

    def describe(self) -> dict:
        return {
            "stream": self.id,
            "tenant": self.tenant,
            "window": self.spec.as_dict(),
            "windows": len(self.job_ids),
            "items_in": self.windower.counters.items_in,
            "late_dropped": self.windower.counters.late_dropped,
            "late_reassigned": self.windower.counters.late_reassigned,
            "closed": self.closed,
        }


class ServeEngine:
    """Multi-tenant job queues + batched execution on private devices."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        self.admission = AdmissionController(
            max_queue_jobs=cfg.max_queue_jobs,
            max_total_jobs=cfg.max_total_jobs)
        self.batcher = Batcher(max_batch_jobs=cfg.max_batch_jobs,
                               max_batch_items=cfg.max_batch_items)
        self.drr = DeficitRoundRobin(quantum_items=cfg.quantum_items,
                                     smoothing=cfg.smoothing)
        self.stats = ServeStats()
        self._queues: dict[str, deque[Job]] = {}
        self._jobs: dict[tuple[str, str], Job] = {}
        self._streams: dict[tuple[str, str], StreamSession] = {}
        self._ids = itertools.count(1)
        self._stream_ids = itertools.count(1)
        self._cond = threading.Condition()
        self._exec_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._ctx = self._build_context()

    def _build_context(self):
        """A private SkelCL context on fresh simulated devices — the
        global default context is deliberately left alone."""
        from repro import ocl
        from repro.skelcl.context import SkelCLContext
        cfg = self.config
        system = ocl.System(num_gpus=cfg.num_gpus,
                            gpu_spec=ocl.CATALOG[cfg.gpu_spec],
                            name="serve")
        return SkelCLContext(
            [d for d in system.devices if d.device_type == "GPU"])

    # -- client-facing API -------------------------------------------------------

    def submit(self, tenant: str, sources, payload: np.ndarray,
               deadline_s: float | None = None) -> Job:
        """Admit one job (or raise :class:`AdmissionRejectedError`).

        ``deadline_s`` is relative seconds from now; a job still queued
        when it elapses is expired, never run.
        """
        if not tenant:
            raise ServeError("a job needs a tenant id")
        payload = np.ascontiguousarray(payload)
        if payload.ndim != 1:
            raise ServeError(
                f"serve jobs take 1-D vectors, got shape "
                f"{payload.shape}")
        if not sources:
            raise ServeError("a job needs at least one pipeline stage")
        with self._cond:
            queue = self._queues.setdefault(tenant, deque())
            total = sum(len(q) for q in self._queues.values())
            tstats = self.stats.tenant(tenant)
            try:
                self.admission.check(tenant, len(queue), total,
                                     self.stats.mean_service_s)
            except AdmissionRejectedError:
                tstats.rejected += 1
                raise
            job = Job(
                id=f"j{next(self._ids):06d}", tenant=tenant,
                sources=tuple(str(s) for s in sources), payload=payload,
                deadline_s=(None if deadline_s is None
                            else time.monotonic() + deadline_s))
            queue.append(job)
            self._jobs[(tenant, job.id)] = job
            self.drr.ensure(tenant)
            tstats.submitted += 1
            tstats.items += job.items
            tstats.max_queue_depth = max(tstats.max_queue_depth,
                                         len(queue))
            self._cond.notify_all()
            return job

    def get(self, tenant: str, job_id: str) -> Job:
        """Look up a tenant's job (tenant scoping is the lookup key —
        one tenant can never address another's jobs)."""
        with self._cond:
            job = self._jobs.get((tenant, job_id))
        if job is None:
            raise UnknownJobError(
                f"tenant {tenant!r} has no job {job_id!r}")
        return job

    def cancel(self, tenant: str, job_id: str) -> bool:
        """Cancel a still-queued job; returns False once it is running
        or already terminal."""
        with self._cond:
            job = self._jobs.get((tenant, job_id))
            if job is None:
                raise UnknownJobError(
                    f"tenant {tenant!r} has no job {job_id!r}")
            if job.status is not JobStatus.QUEUED:
                return False
            queue = self._queues.get(tenant)
            if queue is not None:
                try:
                    queue.remove(job)
                except ValueError:
                    pass
            job.status = JobStatus.CANCELLED
            job.finished_s = time.monotonic()
            self.stats.tenant(tenant).cancelled += 1
            return True

    def wait(self, tenant: str, job_id: str,
             timeout_s: float = 30.0) -> Job:
        """Block until the job reaches a terminal state (in-process
        embeddings; remote clients poll over the wire instead)."""
        deadline = time.monotonic() + timeout_s
        job = self.get(tenant, job_id)
        with self._cond:
            while not job.status.terminal:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServeError(
                        f"timed out waiting for job {job_id} "
                        f"(status {job.status.value})")
                self._cond.wait(timeout=min(remaining, 0.1))
        return job

    # -- stream sessions ---------------------------------------------------------

    def open_stream(self, tenant: str, sources,
                    window: dict | WindowSpec,
                    ) -> StreamSession:
        """Open a stream session: a windowed pipeline the tenant will
        push chunks into.  Each closed window is admitted as one
        ``kind="stream"`` job through the normal queues."""
        if not tenant:
            raise ServeError("a stream needs a tenant id")
        if not sources:
            raise ServeError(
                "a stream needs at least one pipeline stage")
        spec = window if isinstance(window, WindowSpec) else \
            WindowSpec(**window)
        with self._cond:
            session = StreamSession(
                id=f"s{next(self._stream_ids):04d}", tenant=tenant,
                sources=tuple(str(s) for s in sources), spec=spec,
                windower=Windower(spec))
            self._streams[(tenant, session.id)] = session
            self.drr.ensure(tenant)
            self.stats.streams_opened += 1
            tstats = self.stats.tenant(tenant)
            tstats.streams += 1
            return session

    def get_stream(self, tenant: str, stream_id: str) -> StreamSession:
        with self._cond:
            session = self._streams.get((tenant, stream_id))
        if session is None:
            raise UnknownJobError(
                f"tenant {tenant!r} has no stream {stream_id!r}")
        return session

    def push_stream(self, tenant: str, stream_id: str,
                    payload: np.ndarray,
                    seq: int | None = None) -> list[Job]:
        """Push one chunk into a stream; windows it closes are
        admitted as jobs (returned in window order).

        Raises :class:`AdmissionRejectedError` when the stream already
        has ``stream_window_budget`` window jobs in flight — the
        backpressure reply (BUSY + jittered retry hint) that keeps a
        fast producer from flooding the queues.
        """
        session = self.get_stream(tenant, stream_id)
        payload = np.ascontiguousarray(payload)
        if payload.ndim != 1:
            raise ServeError(
                f"stream chunks are 1-D vectors, got shape "
                f"{payload.shape}")
        with self._cond:
            if session.closed:
                raise StreamError(
                    f"stream {stream_id} is closed", code="STRM004")
            inflight = self._stream_inflight(session)
            if inflight >= self.config.stream_window_budget:
                tstats = self.stats.tenant(tenant)
                tstats.rejected += 1
                raise AdmissionRejectedError(
                    f"stream {stream_id} has {inflight} window job(s) "
                    f"in flight (budget "
                    f"{self.config.stream_window_budget}); poll "
                    "results before pushing more",
                    retry_after_s=self.admission.retry_after(
                        inflight, self.stats.mean_service_s
                        or DEFAULT_SERVICE_ESTIMATE_S),
                    tenant=tenant)
            windows = session.windower.push(payload, seq=seq)
            return [self._admit_window(session, w) for w in windows]

    def close_stream(self, tenant: str, stream_id: str) -> list[Job]:
        """End of stream: flush remaining windows (the final partial
        one included) into jobs and close the session."""
        session = self.get_stream(tenant, stream_id)
        with self._cond:
            if session.closed:
                return []
            session.closed = True
            windows = session.windower.flush()
            return [self._admit_window(session, w) for w in windows]

    def _stream_inflight(self, session: StreamSession) -> int:
        """Window jobs of *session* not yet terminal (caller holds
        the condition lock)."""
        count = 0
        for job_id in session.job_ids:
            job = self._jobs.get((session.tenant, job_id))
            if job is not None and not job.status.terminal:
                count += 1
        return count

    def _admit_window(self, session: StreamSession, window) -> Job:
        """Turn one closed window into a queued job (lock held).  The
        payload is copied out of the windower's ring — the ring
        recycles long before the scheduling round runs."""
        job = Job(
            id=f"j{next(self._ids):06d}", tenant=session.tenant,
            sources=session.sources,
            payload=np.array(window.data, copy=True),
            kind="stream", stream=session.id, window=window.index)
        queue = self._queues.setdefault(session.tenant, deque())
        queue.append(job)
        self._jobs[(session.tenant, job.id)] = job
        session.job_ids.append(job.id)
        self.stats.stream_windows += 1
        tstats = self.stats.tenant(session.tenant)
        tstats.submitted += 1
        tstats.items += job.items
        tstats.stream_windows += 1
        tstats.max_queue_depth = max(tstats.max_queue_depth,
                                     len(queue))
        self._cond.notify_all()
        return job

    def queue_depth(self, tenant: str | None = None) -> int:
        with self._cond:
            if tenant is not None:
                queue = self._queues.get(tenant)
                return len(queue) if queue else 0
            return sum(len(q) for q in self._queues.values())

    # -- scheduling + execution --------------------------------------------------

    def _take_round(self) -> list[Job]:
        """Expire stale jobs, run one DRR round, pop the picked jobs."""
        with self._cond:
            now = time.monotonic()
            for tenant, queue in self._queues.items():
                kept: deque[Job] = deque()
                for job in queue:
                    if job.expired(now):
                        job.status = JobStatus.EXPIRED
                        job.finished_s = now
                        job.error = ("deadline expired before the job "
                                     "was scheduled")
                        self.stats.tenant(tenant).expired += 1
                    else:
                        kept.append(job)
                self._queues[tenant] = kept
            backlog = {tenant: [job.items for job in queue]
                       for tenant, queue in self._queues.items()
                       if queue}
            if not backlog:
                return []
            picked = self.drr.pick_round(
                backlog, max_jobs=self.config.max_round_jobs)
            taken: list[Job] = []
            for tenant in sorted(picked, key=str):
                queue = self._queues[tenant]
                for _ in range(picked[tenant]):
                    job = queue.popleft()
                    job.status = JobStatus.RUNNING
                    taken.append(job)
            if taken:
                self.stats.rounds += 1
            return taken

    def run_once(self) -> int:
        """One scheduling round: pick, group, execute.  Returns jobs
        brought to a terminal state."""
        with self._exec_lock:
            taken = self._take_round()
            if not taken:
                return 0
            if self.config.micro_batch:
                groups = self.batcher.group(taken)
            else:
                groups = [[job] for job in taken]
            finished = 0
            for group in groups:
                finished += self._execute_group(group)
            return finished

    def _execute_group(self, group: list[Job]) -> int:
        started = time.monotonic()
        try:
            run = self.batcher.execute(
                self._ctx, group, adaptive=self.config.adaptive_split)
        except ReproError as exc:
            now = time.monotonic()
            with self._cond:
                for job in group:
                    job.status = JobStatus.FAILED
                    job.error = str(exc)
                    job.finished_s = now
                    self.stats.tenant(job.tenant).failed += 1
                self._cond.notify_all()
            return len(group)
        elapsed = time.monotonic() - started
        with self._cond:
            self.stats.launches += 1
            self.stats.busy_s += elapsed
            self.stats.fused_stages += run.fused_stages
            if len(group) > 1:
                self.stats.batched_jobs += len(group)
            if run.verification is not None \
                    and not run.verification.errors:
                self.stats.plans_verified += 1
            tenant_items: dict[str, int] = {}
            for job in group:
                tstats = self.stats.tenant(job.tenant)
                tstats.completed += 1
                if job.latency_s is not None:
                    tstats.latencies_s.append(job.latency_s)
                tenant_items[job.tenant] = (
                    tenant_items.get(job.tenant, 0) + job.items)
            for tenant, items in tenant_items.items():
                self.drr.observe(tenant, items, elapsed)
            self._cond.notify_all()
        return len(group)

    def drain(self, timeout_s: float = 60.0) -> int:
        """Run rounds until every queue is empty; returns jobs
        finished.  For tests and the synchronous CLI path."""
        deadline = time.monotonic() + timeout_s
        finished = 0
        while self.queue_depth() > 0:
            if time.monotonic() > deadline:
                raise ServeError(
                    f"drain timed out with {self.queue_depth()} "
                    "job(s) still queued")
            finished += self.run_once()
        return finished

    # -- background thread -------------------------------------------------------

    def start(self) -> None:
        """Run scheduling rounds on a dedicated daemon thread."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="serve-engine", daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            if self.run_once() == 0:
                with self._cond:
                    # short wait so deadlines expire promptly even
                    # with no submit traffic
                    self._cond.wait(timeout=0.02)

    def stop(self) -> None:
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    # -- reporting ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything ``repro serve status`` and STATS frames report."""
        with self._cond:
            queues = {tenant: len(queue)
                      for tenant, queue in sorted(self._queues.items())
                      if queue}
            return {
                "config": asdict(self.config),
                "queued": sum(queues.values()),
                "queues": queues,
                "signatures_cached": len(self.batcher.cached_signatures),
                "scheduler": self.drr.snapshot(),
                "streams": [session.describe()
                            for key, session in
                            sorted(self._streams.items())],
                "stats": self.stats.as_dict(),
            }
