"""Client for the serving layer: submit, poll, fetch, cancel.

Built on the cluster's :class:`WorkerConnection`, so it inherits the
per-request timeout, retry-with-same-seq, and single-reconnect
machinery — plus the new keepalive loop for long-lived sessions.  One
client speaks for one tenant; the tenant id travels in every frame
and the server scopes all job lookups by it.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cluster import wire
from repro.cluster.client import WorkerConnection
from repro.errors import AdmissionRejectedError, ServeError


class ServeClient:
    """One tenant's connection to a serve server."""

    def __init__(self, host: str, port: int, tenant: str,
                 timeout_s: float | None = None,
                 keepalive_s: float | None = None) -> None:
        if not tenant:
            raise ServeError("a serve client needs a tenant id")
        self.tenant = tenant
        self._conn = WorkerConnection(host, port, rank=0,
                                      timeout_s=timeout_s)
        if keepalive_s is not None:
            self._conn.start_keepalive(keepalive_s)

    # -- job lifecycle -----------------------------------------------------------

    def submit(self, sources, array: np.ndarray,
               deadline_s: float | None = None) -> str:
        """Submit one pipeline job; returns its job id.

        Raises :class:`AdmissionRejectedError` (with the server's
        ``retry_after_s`` estimate) when the tenant's queue or the
        server is full.
        """
        array = np.ascontiguousarray(array)
        meta = {"tenant": self.tenant,
                "sources": [str(s) for s in sources],
                "dtype": array.dtype.name}
        if deadline_s is not None:
            meta["deadline_s"] = float(deadline_s)
        op, rmeta, _ = self._conn.request_op(wire.Op.SUBMIT, meta,
                                             array.tobytes())
        if op == wire.Op.BUSY:
            raise AdmissionRejectedError(
                rmeta.get("error", "server busy"),
                retry_after_s=float(rmeta.get("retry_after_s", 0.0)),
                tenant=self.tenant)
        return str(rmeta["job"])

    def status(self, job_id: str) -> dict:
        """One POLL round-trip: the job's current description."""
        meta, _ = self._conn.request(
            wire.Op.POLL, {"tenant": self.tenant, "job": job_id})
        return meta

    def result(self, job_id: str, timeout_s: float = 30.0,
               poll_interval_s: float = 0.005) -> np.ndarray:
        """Poll until the job finishes; returns its output array.

        A job that failed, expired, or was cancelled surfaces as
        :class:`~repro.errors.RemoteExecutionError` whose ``kind`` is
        the terminal status.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            op, meta, payload = self._conn.request_op(
                wire.Op.RESULT, {"tenant": self.tenant, "job": job_id})
            if op == wire.Op.RESULT:
                return np.frombuffer(
                    payload, dtype=np.dtype(meta["dtype"])).copy()
            if time.monotonic() > deadline:
                raise ServeError(
                    f"timed out waiting for job {job_id} (status "
                    f"{meta.get('status', '?')})")
            time.sleep(poll_interval_s)

    def cancel(self, job_id: str) -> bool:
        meta, _ = self._conn.request(
            wire.Op.CANCEL, {"tenant": self.tenant, "job": job_id})
        return bool(meta.get("cancelled", False))

    # -- streaming ---------------------------------------------------------------

    def open_stream(self, sources, window: dict) -> str:
        """Open a stream session; returns its stream id.

        ``window`` is a :class:`~repro.stream.WindowSpec` as a dict —
        at least ``{"size": n}``, optionally ``step`` / ``lateness`` /
        ``policy``.
        """
        meta, _ = self._conn.request(
            wire.Op.STREAM_OPEN,
            {"tenant": self.tenant,
             "sources": [str(s) for s in sources],
             "window": dict(window)})
        return str(meta["stream"])

    def push_stream(self, stream_id: str, chunk: np.ndarray,
                    seq: int | None = None) -> list[str]:
        """Push one chunk; returns job ids of windows it closed.

        Raises :class:`AdmissionRejectedError` when the stream's
        window budget is exhausted (fetch some results, then retry
        after the hinted backoff).
        """
        chunk = np.ascontiguousarray(chunk)
        meta = {"tenant": self.tenant, "stream": stream_id,
                "dtype": chunk.dtype.name}
        if seq is not None:
            meta["seq"] = int(seq)
        op, rmeta, _ = self._conn.request_op(wire.Op.STREAM_PUSH, meta,
                                             chunk.tobytes())
        if op == wire.Op.BUSY:
            raise AdmissionRejectedError(
                rmeta.get("error", "stream window budget exhausted"),
                retry_after_s=float(rmeta.get("retry_after_s", 0.0)),
                tenant=self.tenant)
        return [str(j) for j in rmeta.get("jobs", [])]

    def close_stream(self, stream_id: str) -> list[str]:
        """End of stream: returns job ids of the flushed tail windows
        (the final partial window included)."""
        meta, _ = self._conn.request(
            wire.Op.STREAM_CLOSE,
            {"tenant": self.tenant, "stream": stream_id})
        return [str(j) for j in meta.get("jobs", [])]

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        """The server's full snapshot (queues, scheduler, metrics)."""
        meta, _ = self._conn.request(wire.Op.STATS,
                                     {"tenant": self.tenant})
        return meta

    def ping(self) -> dict:
        return self._conn.ping()

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self._conn.stop_keepalive()
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
