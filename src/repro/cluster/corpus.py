"""The skeleton corpus used to validate a cluster against local runs.

One deterministic batch of map / zip / reduce / scan executions over
block- and copy-distributed vectors.  Run it once on a
:class:`~repro.cluster.runtime.ClusterSystem` and once on a plain
local `ocl.System` with the same device count: the results must be
bitwise-identical (the distributed-determinism guarantee of
docs/distributed.md).  Used by ``repro cluster run``, the cluster
tests, and the CI ``cluster-smoke`` job.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SIZE = 4096
DEFAULT_SEED = 42


def run_skeleton_corpus(size: int = DEFAULT_SIZE,
                        seed: int = DEFAULT_SEED) -> dict[str, np.ndarray]:
    """Run the corpus on the *current* SkelCL context.

    Call ``skelcl.init(...)`` first — with cluster devices or local
    ones.  Returns result arrays keyed by operation name.
    """
    from repro import skelcl
    from repro.skelcl.distribution import Distribution

    rng = np.random.default_rng(seed)
    x = rng.random(size, dtype=np.float32)
    y = rng.random(size, dtype=np.float32)

    square = skelcl.Map("float f(float x) { return x * x + 1.0f; }")
    axpy = skelcl.Zip("float f(float x, float y) { return x + 2.0f * y; }")
    total = skelcl.Reduce("float f(float a, float b) { return a + b; }")
    prefix = skelcl.Scan("float f(float a, float b) { return a + b; }")

    results: dict[str, np.ndarray] = {}
    vx = skelcl.Vector(data=x.copy())
    vy = skelcl.Vector(data=y.copy())
    results["map"] = np.asarray(square(vx)).copy()
    results["zip"] = np.asarray(axpy(vx, vy)).copy()
    results["reduce"] = np.asarray(total(vx)).copy()
    results["scan"] = np.asarray(prefix(vx)).copy()
    vc = skelcl.Vector(data=x.copy())
    vc.set_distribution(Distribution.copy())
    results["map_copy"] = np.asarray(square(vc)).copy()
    return results


def reference_corpus(num_devices: int, size: int = DEFAULT_SIZE,
                     seed: int = DEFAULT_SEED) -> dict[str, np.ndarray]:
    """The corpus on a fresh single-process system of *num_devices* GPUs."""
    from repro import skelcl
    skelcl.init(num_gpus=num_devices)
    try:
        return run_skeleton_corpus(size, seed)
    finally:
        skelcl.terminate()


def corpus_mismatches(got: dict[str, np.ndarray],
                      expected: dict[str, np.ndarray]) -> list[str]:
    """Names of operations whose results are not bitwise-identical."""
    return [name for name in sorted(expected)
            if name not in got
            or not np.array_equal(got[name], expected[name])]
