"""The coordinator runtime: remote devices behind local interfaces.

A :class:`ClusterSystem` is an `ocl.System` whose devices are
:class:`RemoteDevice` adapters for devices hosted by worker processes.
It subclasses the dOpenCL simulation's ``ForwardedDevice``, so the
virtual-time cost model charges network uplink + node PCIe spans and a
per-command round trip *identically* to the in-process simulation —
what changes is only where the bytes physically live and execute.

Data model (the "mirror" protocol):

- every buffer keeps a local mirror (the ordinary `ocl.Buffer`
  storage); host-side writes update the mirror *and* ship the bytes to
  the owning worker;
- source-compiled kernels execute **only** on the worker; the written
  buffers' mirrors are then stale and marked ``remote``;
- reads (and native Python fast-path kernels, which cannot cross a
  process boundary) first re-sync the mirror from the worker.

Fault tolerance: every state-mutating command is appended to the
owning worker's redo journal before it is sent.  When a worker stops
responding, the journal is replayed onto a survivor — recreating its
buffers and re-running its (deterministic) kernels — the dead worker's
devices are re-routed there, and the computation continues.  Replay is
not charged to the virtual timeline: the simulated cluster is the
paper's fault-free one, recovery cost is wall-clock only.
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.cluster import wire
from repro.cluster.client import WorkerConnection
from repro.cluster.launch import WorkerProcess, launch_workers
from repro.cluster.stats import ClusterStats
from repro.dopencl.client import ForwardedDevice
from repro.dopencl.network import GIGABIT_ETHERNET, NetworkSpec
from repro.errors import ClusterError, WorkerDiedError
from repro.ocl.memory import Buffer
from repro.ocl.platform import Platform
from repro.ocl.queue import CommandQueue
from repro.ocl.specs import DeviceSpec
from repro.ocl.system import System


@dataclass
class JournalEntry:
    """One replayable mutation (redo-log record)."""

    op: int
    meta: dict
    payload: bytes = b""


@dataclass
class WorkerHandle:
    """Coordinator-side state for one worker process."""

    rank: int
    conn: WorkerConnection
    proc: WorkerProcess | None = None
    specs: list[DeviceSpec] = field(default_factory=list)
    alive: bool = True
    journal: list[JournalEntry] = field(default_factory=list)
    compiled: set[str] = field(default_factory=set)
    heartbeat_ok: bool = True
    last_heartbeat_s: float = 0.0

    @property
    def stats(self) -> ClusterStats:
        return self.conn.stats

    @property
    def num_devices(self) -> int:
        return len(self.specs)

    def request(self, op: int, meta: dict | None = None,
                payload: bytes = b"") -> tuple[dict, bytes]:
        if not self.alive:
            raise WorkerDiedError(
                f"worker {self.rank} is already marked dead",
                rank=self.rank)
        return self.conn.request(op, meta, payload)


class RemoteDevice(ForwardedDevice):
    """A worker-hosted device, presented through the local Device API.

    Inherits the dOpenCL cost model wholesale: bulk data is charged on
    the node uplink then the node's PCIe link, and every enqueue pays
    the network round trip.  ``route`` additionally records which live
    worker (and which device index on it) currently serves this device
    — re-pointed by the re-shard path when a worker dies.
    """

    #: ocl.create_queue dispatches on this
    queue_class: type | None = None  # set below, after ClusterQueue

    def __init__(self, system: "ClusterSystem", device_id: int,
                 spec: DeviceSpec, handle: WorkerHandle,
                 remote_index: int, network: NetworkSpec,
                 uplink) -> None:
        super().__init__(system, device_id, spec,
                         node_name=f"worker{handle.rank}",
                         network=network, node_uplink_resource=uplink)
        self.route: tuple[WorkerHandle, int] = (handle, remote_index)

    def __repr__(self) -> str:
        handle, ridx = self.route
        return (f"<RemoteDevice {self.id}: {self.name} @ "
                f"worker{handle.rank}[{ridx}]>")


class ClusterSystem(System):
    """An `ocl.System` backed by live worker processes."""

    def __init__(self, workers: Sequence[WorkerProcess | tuple[str, int]],
                 network: NetworkSpec = GIGABIT_ETHERNET,
                 name: str = "cluster",
                 timeout_s: float | None = None) -> None:
        super().__init__(num_gpus=0, name=name)
        if not workers:
            raise ClusterError("a cluster needs at least one worker")
        self.network = network
        self.handles: list[WorkerHandle] = []
        #: kernel-source registry: sha -> source (for replay compiles)
        self._sources: dict[str, str] = {}
        #: buffer key -> (owning handle, "synced" | "remote");
        #: "remote" means the worker holds fresher data than the mirror
        self._buffer_state: dict[int, tuple[WorkerHandle, str]] = {}
        self._key_counter = 0
        self._heartbeat_thread: threading.Thread | None = None
        self._heartbeat_stop = threading.Event()
        for rank, endpoint in enumerate(workers):
            if isinstance(endpoint, WorkerProcess):
                host, port, proc = endpoint.host, endpoint.port, endpoint
            else:
                host, port = endpoint
                proc = None
            conn = WorkerConnection(host, port, rank, timeout_s=timeout_s)
            handle = WorkerHandle(rank=rank, conn=conn, proc=proc)
            try:
                hello, _ = handle.request(wire.Op.HELLO)
            except OSError as exc:
                raise ClusterError(
                    f"cannot reach worker {rank} at {host}:{port}: "
                    f"{exc}") from exc
            handle.specs = [DeviceSpec(**d) for d in hello["devices"]]
            uplink = self.timeline.resource(f"net.worker{rank}")
            for remote_index, spec in enumerate(handle.specs):
                self.devices.append(RemoteDevice(
                    self, len(self.devices), spec, handle, remote_index,
                    network, uplink))
            self.handles.append(handle)

    # -- plumbing ----------------------------------------------------------------

    def platform(self) -> Platform:
        return Platform(self, name="repro cluster",
                        vendor="repro dOpenCL")

    def alive_handles(self) -> list[WorkerHandle]:
        return [h for h in self.handles if h.alive]

    def key_for(self, buf: Buffer) -> int:
        key = getattr(buf, "_cluster_key", None)
        if key is None:
            self._key_counter += 1
            key = self._key_counter
            buf._cluster_key = key
        return key

    def all_stats(self) -> list[ClusterStats]:
        return [h.stats for h in self.handles]

    def invalidate_remote(self, buf: Buffer) -> None:
        """Forget the worker-side copy (the mirror is now the truth)."""
        key = getattr(buf, "_cluster_key", None)
        if key is not None:
            self._buffer_state.pop(key, None)

    # -- source programs ---------------------------------------------------------

    def register_source(self, source: str) -> str:
        sha = hashlib.sha256(source.encode()).hexdigest()
        self._sources.setdefault(sha, source)
        return sha

    def ensure_compiled(self, handle: WorkerHandle, sha: str) -> None:
        if sha in handle.compiled:
            return
        handle.request(wire.Op.COMPILE, {"sha": sha},
                       self._sources[sha].encode())
        handle.compiled.add(sha)

    # -- mirror consistency ------------------------------------------------------

    def sync_mirror(self, buf: Buffer) -> None:
        """Fetch worker-side bytes into the local mirror if fresher.

        Physical repair only: the virtual-time D2H charge is made by
        whichever read command triggered the sync.
        """
        key = getattr(buf, "_cluster_key", None)
        if key is None:
            return
        while True:
            state = self._buffer_state.get(key)
            if state is None or state[1] != "remote":
                return
            handle = state[0]
            try:
                _, payload = handle.request(
                    wire.Op.READ,
                    {"buf": str(key), "offset": 0, "nbytes": buf.nbytes})
            except WorkerDiedError:
                self.on_worker_death(handle)
                continue  # ownership re-routed; retry on the survivor
            buf.write_bytes(np.frombuffer(payload, dtype=np.uint8))
            self._buffer_state[key] = (handle, "synced")
            return

    # -- failure handling --------------------------------------------------------

    def check_workers(self, timeout_s: float = 2.0) -> dict[int, bool]:
        """Heartbeat every worker once; returns rank -> responsive."""
        result: dict[int, bool] = {}
        for handle in self.handles:
            if not handle.alive:
                result[handle.rank] = False
                continue
            try:
                handle.conn.ping(timeout_s=timeout_s)
                handle.heartbeat_ok = True
                handle.last_heartbeat_s = time.monotonic()
                result[handle.rank] = True
            except (ClusterError, OSError):
                handle.heartbeat_ok = False
                result[handle.rank] = False
        return result

    def start_heartbeat(self, interval_s: float = 1.0) -> None:
        """Background liveness probing (records only; the re-shard
        decision is always taken on the request path, never from the
        heartbeat thread, to keep recovery single-threaded)."""
        if self._heartbeat_thread is not None:
            return
        self._heartbeat_stop.clear()

        def loop() -> None:
            while not self._heartbeat_stop.wait(interval_s):
                self.check_workers()

        self._heartbeat_thread = threading.Thread(target=loop, daemon=True)
        self._heartbeat_thread.start()

    def stop_heartbeat(self) -> None:
        if self._heartbeat_thread is None:
            return
        self._heartbeat_stop.set()
        self._heartbeat_thread.join(timeout=5.0)
        self._heartbeat_thread = None

    def on_worker_death(self, dead: WorkerHandle) -> None:
        """Graceful degradation: replay the dead worker's journal onto
        a survivor and re-route its devices there."""
        if not dead.alive:
            return
        dead.alive = False
        dead.conn.close()
        while True:
            survivors = self.alive_handles()
            if not survivors:
                raise ClusterError(
                    "all workers are dead; cannot re-shard "
                    f"(last casualty: worker {dead.rank})")
            target = survivors[dead.rank % len(survivors)]
            try:
                self._replay_journal(dead, target)
            except WorkerDiedError:
                target.alive = False
                target.conn.close()
                continue
            break
        target.stats.resharded = True
        # re-route the dead worker's devices
        for device in self.devices:
            if isinstance(device, RemoteDevice) \
                    and device.route[0] is dead:
                device.route = (target,
                                device.route[1] % target.num_devices)
        # transfer buffer ownership (contents recreated by the replay)
        for key, (owner, state) in list(self._buffer_state.items()):
            if owner is dead:
                self._buffer_state[key] = (target, state)
        target.journal.extend(dead.journal)
        dead.journal = []

    def _replay_journal(self, dead: WorkerHandle,
                        target: WorkerHandle) -> None:
        for entry in dead.journal:
            if entry.op == wire.Op.NDRANGE:
                self.ensure_compiled(target, entry.meta["program"])
                meta = dict(entry.meta)
                meta["device"] = (int(meta.get("device", 0))
                                  % target.num_devices)
                target.request(wire.Op.NDRANGE, meta)
            else:
                target.request(entry.op, entry.meta, entry.payload)

    # -- lifecycle ---------------------------------------------------------------

    def shutdown(self) -> None:
        """Orderly teardown: SHUTDOWN every live worker, reap processes."""
        self.stop_heartbeat()
        for handle in self.handles:
            if handle.alive:
                try:
                    handle.conn.request(wire.Op.SHUTDOWN, timeout_s=2.0)
                except (ClusterError, OSError):
                    pass
            handle.conn.close()
            handle.alive = False
        for handle in self.handles:
            if handle.proc is not None:
                handle.proc.terminate()

    def __repr__(self) -> str:
        alive = len(self.alive_handles())
        return (f"<ClusterSystem {len(self.devices)} device(s) on "
                f"{alive}/{len(self.handles)} worker(s)>")


class ClusterQueue(CommandQueue):
    """A command queue whose device lives in a worker process.

    Every override first lets the base class do the *virtual-time*
    charging and local-mirror bookkeeping (through the inherited
    ``ForwardedDevice`` transfer model — identical to the dOpenCL
    simulation), then performs the *physical* wire traffic.
    """

    device: RemoteDevice

    # -- wire plumbing -----------------------------------------------------------

    @property
    def _cluster(self) -> ClusterSystem:
        return self.system  # type: ignore[return-value]

    def _forward(self, op: int, make_meta, payload: bytes = b"",
                 journaled: bool = False) -> tuple[dict, bytes]:
        """Send a command to the device's current worker.

        ``make_meta(remote_index)`` builds the metadata against the
        current route, so a retry after a re-shard targets the right
        device on the survivor.  Journaled commands that fail with a
        dead worker are *not* re-sent: the journal replay performed by
        the re-shard already re-applied them.
        """
        while True:
            handle, remote_index = self.device.route
            meta = make_meta(remote_index)
            if journaled:
                handle.journal.append(
                    JournalEntry(op=op, meta=meta, payload=payload))
            try:
                return handle.request(op, meta, payload)
            except WorkerDiedError:
                self._cluster.on_worker_death(handle)
                if journaled:
                    return {}, b""

    # -- transfers ---------------------------------------------------------------

    def enqueue_write_buffer(self, buf, src, offset_bytes=0,
                             wait_for=None, *, alias=False,
                             zero_fill=False):
        system = self._cluster
        key = system.key_for(buf)
        nbytes = int(np.asarray(src).nbytes)
        partial = not (offset_bytes == 0 and nbytes == buf.nbytes)
        if partial:
            # a partial overwrite of worker-fresh data: complete the
            # mirror first so the full upload below is coherent
            system.sync_mirror(buf)
        event = super().enqueue_write_buffer(
            buf, src, offset_bytes, wait_for, alias=alias,
            zero_fill=zero_fill)
        if zero_fill:
            payload = bytes(nbytes)
        else:
            payload = bytes(buf.view_readonly(np.uint8, offset_bytes,
                                              nbytes))
        self._forward(
            wire.Op.WRITE,
            lambda _ridx: {"buf": str(key), "nbytes": buf.nbytes,
                           "offset": int(offset_bytes)},
            payload, journaled=True)
        self._cluster._buffer_state[key] = (self.device.route[0],
                                            "synced")
        return event

    def enqueue_read_buffer(self, buf, dst, offset_bytes=0,
                            wait_for=None):
        self._cluster.sync_mirror(buf)
        return super().enqueue_read_buffer(buf, dst, offset_bytes,
                                           wait_for)

    def enqueue_read_view(self, buf, dtype, count=None, offset_bytes=0,
                          wait_for=None):
        self._cluster.sync_mirror(buf)
        return super().enqueue_read_view(buf, dtype, count, offset_bytes,
                                         wait_for)

    def enqueue_copy_buffer(self, src, dst, src_offset=0, dst_offset=0,
                            nbytes=None, wait_for=None):
        self._cluster.sync_mirror(src)
        if not (dst_offset == 0
                and (nbytes is None or nbytes == dst.nbytes)):
            self._cluster.sync_mirror(dst)
        event = super().enqueue_copy_buffer(src, dst, src_offset,
                                            dst_offset, nbytes, wait_for)
        # the copy ran on the mirror; the worker copy (if any) is stale
        self._cluster.invalidate_remote(dst)
        return event

    # -- kernels -----------------------------------------------------------------

    def _sanitizer_sync(self, buf):
        """Sanitizer snapshots/checks must see worker-side bytes.

        ``sync_mirror`` is physical repair only (the virtual-time D2H
        charge belongs to whichever *read command* triggers a sync), so
        sanitizing leaves the modelled timeline untouched.
        """
        self._cluster.sync_mirror(buf)

    def _execute_kernel(self, kernel, bound, gsize, lsize, buffers):
        system = self._cluster
        if kernel.native:
            # native kernels are Python closures — not serializable.
            # Run them on the local mirrors (after re-syncing any
            # worker-fresh inputs); the worker-side copies of written
            # buffers become stale.
            for buf, _is_const in buffers:
                system.sync_mirror(buf)
            super()._execute_kernel(kernel, bound, gsize, lsize, buffers)
            for buf, is_const in buffers:
                if not is_const:
                    system.invalidate_remote(buf)
            return
        sha = system.register_source(kernel.program.source)
        self.ensure_remote_inputs(buffers)
        args_meta = self._wire_args(kernel)
        self._forward(
            wire.Op.NDRANGE,
            lambda ridx: {"program": sha, "kernel": kernel.name,
                          "device": ridx, "gsize": list(gsize),
                          "lsize": list(lsize), "args": args_meta},
            journaled=True)
        for buf, is_const in buffers:
            key = system.key_for(buf)
            if not is_const:
                self._cluster._buffer_state[key] = (
                    self.device.route[0], "remote")

    def ensure_remote_inputs(self, buffers) -> None:
        """Make every buffer argument available on the routed worker.

        Initialized mirrors are uploaded if the worker lacks (or has a
        stale copy of) them; uninitialized output-only buffers are
        created worker-side from the NDRange argument metadata instead.
        Physical traffic only — the virtual-time upload was already
        charged when the data first moved to this device.
        """
        system = self._cluster
        handle, _ = self.device.route
        for buf, _is_const in buffers:
            key = system.key_for(buf)
            state = system._buffer_state.get(key)
            if state is not None and state[0] is handle:
                continue  # already on the right worker
            if state is not None and state[1] == "remote":
                # fresher bytes live on a *different* worker: pull them
                # into the mirror before re-uploading
                system.sync_mirror(buf)
            if not buf.initialized:
                continue
            payload = bytes(buf.view_readonly(np.uint8))
            self._forward(
                wire.Op.WRITE,
                lambda _ridx, _key=key, _n=buf.nbytes: {
                    "buf": str(_key), "nbytes": _n, "offset": 0},
                payload, journaled=True)
            system._buffer_state[key] = (self.device.route[0], "synced")

    def _wire_args(self, kernel) -> list[dict]:
        system = self._cluster
        sha = system.register_source(kernel.program.source)
        handle, _ = self.device.route
        system.ensure_compiled(handle, sha)
        args_meta: list[dict] = []
        for param, arg in zip(kernel.params, kernel.bound_args()):
            if param.is_pointer:
                args_meta.append({"buf": str(system.key_for(arg)),
                                  "nbytes": arg.nbytes})
            else:
                value = arg.item() if isinstance(arg, np.generic) else arg
                dtype = (str(param.dtype) if param.dtype is not None
                         else str(np.min_scalar_type(value)))
                args_meta.append({"scalar": value, "dtype": dtype})
        return args_meta

    # -- synchronization ---------------------------------------------------------

    def finish(self) -> None:
        super().finish()
        self._forward(wire.Op.BARRIER, lambda _ridx: {})

    def __repr__(self) -> str:
        return f"<ClusterQueue on {self.device!r}>"


RemoteDevice.queue_class = ClusterQueue


@contextmanager
def local_cluster(num_workers: int = 2, gpus_per_worker: int = 1,
                  seed: int = 0, gpu_spec: str = "tesla_c1060",
                  network: NetworkSpec = GIGABIT_ETHERNET,
                  timeout_s: float | None = None,
                  verbose: bool = False
                  ) -> Iterator[ClusterSystem]:
    """Boot a localhost cluster, yield its system, tear it down."""
    procs = launch_workers(num_workers, gpus_per_worker, seed=seed,
                           gpu_spec=gpu_spec, verbose=verbose)
    system = None
    try:
        system = ClusterSystem(procs, network=network,
                               timeout_s=timeout_s)
        yield system
    finally:
        if system is not None:
            system.shutdown()
        for proc in procs:
            proc.terminate()
