"""`repro.cluster` — a real multi-process distributed runtime.

Where :mod:`repro.dopencl` *simulates* command forwarding in-process,
this package actually does it: worker processes each host a
`repro.ocl.System` and serve a length-prefixed binary protocol over
localhost TCP (:mod:`repro.cluster.wire`); a :class:`ClusterSystem`
presents their devices through the ordinary ``Device``/``Queue``
interfaces so SkelCL vectors and skeletons shard across processes
unchanged, while the virtual-time cost model keeps charging exactly
what the dOpenCL simulation charges.  See docs/distributed.md.

The runtime symbols are imported lazily: :mod:`repro.dopencl.protocol`
pulls framing constants from :mod:`repro.cluster.wire`, and an eager
import of the runtime here would close an import cycle back into
``repro.dopencl``.
"""

from repro.cluster.faults import ENV_VAR as FAULT_ENV_VAR, FaultPlan
from repro.cluster.stats import ClusterStats, stats_table
from repro.cluster.wire import COMMAND_HEADER_BYTES, FRAME_HEADER_BYTES, Op

__all__ = [
    "COMMAND_HEADER_BYTES", "FRAME_HEADER_BYTES", "Op",
    "ClusterStats", "stats_table", "FaultPlan", "FAULT_ENV_VAR",
    "ClusterSystem", "ClusterQueue", "RemoteDevice", "WorkerHandle",
    "WorkerConnection", "launch_workers", "local_cluster",
]

_LAZY = {
    "ClusterSystem": "repro.cluster.runtime",
    "ClusterQueue": "repro.cluster.runtime",
    "RemoteDevice": "repro.cluster.runtime",
    "WorkerHandle": "repro.cluster.runtime",
    "local_cluster": "repro.cluster.runtime",
    "WorkerConnection": "repro.cluster.client",
    "launch_workers": "repro.cluster.launch",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module 'repro.cluster' has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(module_name), name)
