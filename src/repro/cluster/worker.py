"""A cluster worker: one process hosting a real `repro.ocl.System`.

Run with ``python -m repro.cluster.worker --port 0 --rank 0 --gpus 1``
(or ``repro cluster serve``).  The worker binds a localhost TCP
socket, prints ``REPRO_CLUSTER_WORKER PORT=<port> RANK=<rank>`` on
stdout so a launcher can discover the ephemeral port, and then serves
framed commands: COMPILE, WRITE, READ, NDRANGE, FREE, BARRIER, PING,
SHUTDOWN.

Determinism: the worker seeds ``random`` and ``numpy.random`` from
``--seed`` (offset by its rank) at startup, and kernel execution goes
through the same compiler/engines as a single-process run, so a
distributed run is bitwise-identical to a local one (the launcher
propagates the coordinator's seed and ``REPRO_*`` environment).

Replies echo the request's sequence number, and a small per-connection
cache of recent replies lets a retried request (whose first reply was
lost) be answered without re-executing.
"""

from __future__ import annotations

import argparse
import os
import random
import socket
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import asdict

import numpy as np

from repro import ocl
from repro.cluster import wire
from repro.cluster.faults import FaultPlan
from repro.errors import ClusterError, ReproError

#: replies remembered per connection for retry deduplication
REPLY_CACHE_SIZE = 128


class Worker:
    """Serves one `ocl.System` over localhost TCP."""

    def __init__(self, rank: int, num_gpus: int = 1,
                 gpu_spec: str = "tesla_c1060", cpu_device: bool = False,
                 seed: int | None = None, verbose: bool = False) -> None:
        if gpu_spec not in ocl.CATALOG:
            raise ClusterError(
                f"unknown gpu spec {gpu_spec!r}; catalog: "
                f"{sorted(ocl.CATALOG)}")
        self.rank = rank
        self.verbose = verbose
        self._fault = FaultPlan.from_env()
        self._ndrange_count = 0
        if seed is not None:
            random.seed(seed + rank)
            np.random.seed((seed + rank) % 2 ** 32)
        self.system = ocl.System(num_gpus=num_gpus,
                                 gpu_spec=ocl.CATALOG[gpu_spec],
                                 cpu_device=cpu_device,
                                 name=f"worker{rank}")
        self.context = ocl.Context(self.system.devices)
        self.queues = [ocl.CommandQueue(self.context, d)
                       for d in self.system.devices]
        self._buffers: dict[str, ocl.Buffer] = {}
        self._programs: dict[str, ocl.Program] = {}
        self._kernels: dict[tuple[str, str], ocl.Kernel] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._commands_served = 0
        # commands accepted but not yet answered, across all client
        # connections — the "queue depth" a PING reports
        self._queued = 0
        self._queued_lock = threading.Lock()
        self._last_command_s = time.monotonic()

    # -- serving -----------------------------------------------------------------

    def serve(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind, announce the port on stdout, and serve until SHUTDOWN."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(8)
        listener.settimeout(0.2)
        bound_port = listener.getsockname()[1]
        print(f"REPRO_CLUSTER_WORKER PORT={bound_port} RANK={self.rank}",
              flush=True)
        self._log(f"serving on {host}:{bound_port}")
        try:
            while not self._stop.is_set():
                try:
                    conn, addr = listener.accept()
                except socket.timeout:
                    continue
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn, addr),
                    daemon=True)
                thread.start()
        finally:
            listener.close()
        self._log("shut down")
        return 0

    def _serve_connection(self, conn: socket.socket, addr) -> None:
        replies: OrderedDict[int, bytes] = OrderedDict()
        try:
            while not self._stop.is_set():
                try:
                    op, seq, meta, payload = wire.read_frame(conn.recv)
                except wire.ConnectionClosedError:
                    break
                cached = replies.get(seq)
                if cached is not None:
                    conn.sendall(cached)
                    continue
                with self._queued_lock:
                    self._queued += 1
                try:
                    raw = self._dispatch(op, seq, meta, payload)
                finally:
                    with self._queued_lock:
                        self._queued -= 1
                replies[seq] = raw
                while len(replies) > REPLY_CACHE_SIZE:
                    replies.popitem(last=False)
                conn.sendall(raw)
                if op == wire.Op.SHUTDOWN:
                    self._stop.set()
        except (OSError, wire.TruncatedFrameError):
            pass  # client went away mid-frame; nothing to answer
        finally:
            conn.close()

    def _dispatch(self, op: int, seq: int, meta: dict,
                  payload: bytes) -> bytes:
        with self._lock:
            self._commands_served += 1
            if op != wire.Op.PING:
                self._last_command_s = time.monotonic()
            try:
                rmeta, rpayload = self._handle(op, meta, payload)
            except ReproError as exc:
                self._log(f"error on {wire.Op(op).name}: {exc}")
                return wire.encode_frame(
                    wire.Op.ERROR, seq,
                    {"error": str(exc), "kind": type(exc).__name__})
            except Exception as exc:  # never kill the worker on a bad frame
                self._log(f"internal error on op {op}: {exc!r}")
                return wire.encode_frame(
                    wire.Op.ERROR, seq,
                    {"error": f"{type(exc).__name__}: {exc}",
                     "kind": "internal"})
            return wire.encode_frame(wire.Op.OK, seq, rmeta, rpayload)

    # -- command handlers --------------------------------------------------------

    def _handle(self, op: int, meta: dict,
                payload: bytes) -> tuple[dict, bytes]:
        if op == wire.Op.HELLO:
            return {"rank": self.rank, "pid": os.getpid(),
                    "devices": [asdict(d.spec)
                                for d in self.system.devices]}, b""
        if op == wire.Op.COMPILE:
            return self._handle_compile(meta, payload)
        if op == wire.Op.WRITE:
            return self._handle_write(meta, payload)
        if op == wire.Op.READ:
            return self._handle_read(meta)
        if op == wire.Op.NDRANGE:
            return self._handle_ndrange(meta)
        if op == wire.Op.FREE:
            buf = self._buffers.pop(str(meta["buf"]), None)
            if buf is not None:
                buf.release()
            return {}, b""
        if op == wire.Op.BARRIER:
            for queue in self.queues:
                queue.finish()
            return {}, b""
        if op == wire.Op.PING:
            with self._queued_lock:
                # the PING itself is in flight and counted; what the
                # client cares about is the backlog *behind* it
                depth = max(self._queued - 1, 0)
            return {"rank": self.rank, "pid": os.getpid(),
                    "commands": self._commands_served,
                    "buffers": len(self._buffers),
                    "programs": len(self._programs),
                    "queue_depth": depth,
                    "ndranges": self._ndrange_count,
                    "idle_s": time.monotonic() - self._last_command_s}, b""
        if op == wire.Op.SHUTDOWN:
            return {"rank": self.rank}, b""
        raise ClusterError(f"unknown opcode {op}")

    def _handle_compile(self, meta: dict,
                        payload: bytes) -> tuple[dict, bytes]:
        sha = str(meta["sha"])
        if sha not in self._programs:
            source = payload.decode()
            self._programs[sha] = ocl.Program(self.context, source).build()
        return {"kernels": self._programs[sha].kernel_names()}, b""

    def _buffer(self, key: str, nbytes: int | None = None) -> ocl.Buffer:
        buf = self._buffers.get(key)
        if buf is None:
            if nbytes is None:
                raise ClusterError(f"unknown buffer {key!r}")
            buf = ocl.Buffer(self.context, max(int(nbytes), 1))
            self._buffers[key] = buf
        return buf

    def _handle_write(self, meta: dict,
                      payload: bytes) -> tuple[dict, bytes]:
        buf = self._buffer(str(meta["buf"]), meta.get("nbytes"))
        offset = int(meta.get("offset", 0))
        buf.write_bytes(np.frombuffer(payload, dtype=np.uint8), offset)
        return {"written": len(payload)}, b""

    def _handle_read(self, meta: dict) -> tuple[dict, bytes]:
        buf = self._buffer(str(meta["buf"]))
        offset = int(meta.get("offset", 0))
        nbytes = int(meta.get("nbytes", buf.nbytes - offset))
        out = np.empty(nbytes, dtype=np.uint8)
        buf.read_bytes(out, offset)
        return {"nbytes": nbytes}, out.tobytes()

    def _handle_ndrange(self, meta: dict) -> tuple[dict, bytes]:
        self._ndrange_count += 1
        if (self._fault.kill_rank == self.rank
                and self._ndrange_count == self._fault.kill_after):
            # injected crash: die mid-run without a word, like a real
            # segfault or OOM kill would
            self._log(f"fault injection: killing worker {self.rank} on "
                      f"NDRange #{self._ndrange_count}")
            os._exit(17)
        sha = str(meta["program"])
        name = str(meta["kernel"])
        program = self._programs.get(sha)
        if program is None:
            raise ClusterError(
                f"NDRange for uncompiled program {sha[:12]}…")
        kernel = self._kernels.get((sha, name))
        if kernel is None:
            kernel = program.create_kernel(name)
            self._kernels[(sha, name)] = kernel
        args = []
        for spec in meta["args"]:
            if "buf" in spec:
                args.append(self._buffer(str(spec["buf"]),
                                         spec.get("nbytes")))
            else:
                args.append(np.dtype(spec["dtype"]).type(spec["scalar"]))
        kernel.set_args(*args)
        device = int(meta.get("device", 0)) % len(self.queues)
        gsize = tuple(int(g) for g in meta["gsize"])
        lsize = meta.get("lsize")
        if lsize is not None:
            lsize = tuple(int(l) for l in lsize)
        self.queues[device].enqueue_nd_range_kernel(kernel, gsize, lsize)
        return {"device": device}, b""

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[worker {self.rank}] {message}", file=sys.stderr,
                  flush=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-cluster-worker",
        description="Serve a simulated OpenCL system over localhost TCP.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral, announced on "
                             "stdout)")
    parser.add_argument("--rank", type=int, default=0)
    parser.add_argument("--gpus", type=int, default=1)
    parser.add_argument("--gpu-spec", default="tesla_c1060",
                        choices=sorted(ocl.CATALOG))
    parser.add_argument("--cpu-device", action="store_true")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    worker = Worker(rank=args.rank, num_gpus=args.gpus,
                    gpu_spec=args.gpu_spec, cpu_device=args.cpu_device,
                    seed=args.seed, verbose=args.verbose)
    return worker.serve(args.host, args.port)


if __name__ == "__main__":
    sys.exit(main())
