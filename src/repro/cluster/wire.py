"""The cluster wire format: length-prefixed binary frames.

One frame carries one command or one response:

    +-------+--------+-------+----------+-------------+------+---------+
    | magic | opcode |  seq  | meta_len | payload_len | meta | payload |
    |  u16  |  u16   |  u32  |   u32    |     u64     | JSON |  bytes  |
    +-------+--------+-------+----------+-------------+------+---------+

The header is a fixed big-endian struct; ``meta`` is UTF-8 JSON
(command parameters: buffer keys, offsets, kernel names, NDRange
sizes); ``payload`` is raw bytes (ndarray contents, kernel source) —
no pickle anywhere on the wire.  ``seq`` identifies a request so
retried commands can be deduplicated by the worker and stale responses
discarded by the client.

This module is the single source of truth for framing constants:
:mod:`repro.dopencl.protocol` charges its simulated per-command header
from :data:`COMMAND_HEADER_BYTES` defined *here*, so the accounting of
the in-process dOpenCL simulation can never drift from the real frame
sizes the cluster puts on the wire (``tests/cluster/test_wire.py``
pins the relationship).
"""

from __future__ import annotations

import json
import struct
from enum import IntEnum

from repro.errors import WireFormatError

#: frame magic — "CL" over a socket, and an instant corruption check
MAGIC = 0xC15C

#: the fixed frame header: magic, opcode, seq, meta_len, payload_len
HEADER = struct.Struct(">HHIIQ")

#: size of the fixed binary header actually sent per frame
FRAME_HEADER_BYTES = HEADER.size

#: modelled serialized size of one forwarded command's header *plus*
#: its JSON metadata (ids, offsets, argument metadata).  This is what
#: the dOpenCL simulation charges per command; real frames carry
#: FRAME_HEADER_BYTES of fixed header plus the actual metadata, which
#: this constant budgets as a first-order average.
COMMAND_HEADER_BYTES = 64

#: hard ceiling on metadata size — metadata is always small; anything
#: bigger is a corrupt or hostile length prefix
MAX_META_BYTES = 1 << 20

#: hard ceiling on payload size (1 GiB); rejects absurd length
#: prefixes before any allocation happens
MAX_PAYLOAD_BYTES = 1 << 30


class Op(IntEnum):
    """Wire opcodes (requests and responses share the numbering)."""

    HELLO = 1      # -> {rank, pid, devices: [DeviceSpec dicts]}
    OK = 2         # generic success response
    ERROR = 3      # response: {error, kind}
    COMPILE = 4    # payload = kernel source; meta = {sha}
    WRITE = 5      # payload = bytes; meta = {buf, nbytes, offset}
    READ = 6       # meta = {buf, offset, nbytes}; response payload = bytes
    NDRANGE = 7    # meta = {program, kernel, device, gsize, lsize, args}
    FREE = 8       # meta = {buf}
    BARRIER = 9    # drain the worker's queues
    PING = 10      # liveness + stats snapshot
    SHUTDOWN = 11  # orderly worker exit

    # -- serving layer (repro.serve; docs/serving.md) -----------------
    SUBMIT = 12    # payload = input bytes; meta = {tenant, sources,
                   #   dtype, deadline_s?} -> OK {job} | BUSY
    POLL = 13      # meta = {tenant, job} -> OK {job, status, ...}
    RESULT = 14    # meta = {tenant, job}; done -> RESULT + payload,
                   #   else OK {status} (keep polling)
    CANCEL = 15    # meta = {tenant, job} -> OK {cancelled, status}
    STATS = 16     # -> OK with the server's full stats snapshot
    BUSY = 17      # admission rejection: {retry_after_s, error}

    # -- streaming jobs (repro.stream via repro.serve) ----------------
    STREAM_OPEN = 18    # meta = {tenant, sources, window, dtype}
                        #   -> OK {stream}
    STREAM_PUSH = 19    # payload = chunk bytes; meta = {tenant,
                        #   stream, dtype, seq?} -> OK {jobs, windows}
                        #   | BUSY (window budget exhausted)
    STREAM_CLOSE = 20   # meta = {tenant, stream} -> OK {jobs} (the
                        #   flushed tail windows, partial included)


class TruncatedFrameError(WireFormatError):
    """The stream ended in the middle of a frame."""


class ConnectionClosedError(WireFormatError):
    """The stream ended cleanly at a frame boundary."""


def encode_frame(op: int, seq: int, meta: dict | None = None,
                 payload: bytes = b"") -> bytes:
    """Serialize one frame; validates sizes before building it."""
    meta_bytes = json.dumps(meta or {}, separators=(",", ":")).encode()
    if len(meta_bytes) > MAX_META_BYTES:
        raise WireFormatError(
            f"metadata of {len(meta_bytes)} bytes exceeds the "
            f"{MAX_META_BYTES}-byte limit")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise WireFormatError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte limit")
    header = HEADER.pack(MAGIC, int(op), seq & 0xFFFFFFFF,
                         len(meta_bytes), len(payload))
    return header + meta_bytes + payload


def frame_overhead_bytes(meta: dict | None = None) -> int:
    """Real per-frame overhead: fixed header + serialized metadata."""
    meta_bytes = json.dumps(meta or {}, separators=(",", ":")).encode()
    return FRAME_HEADER_BYTES + len(meta_bytes)


def decode_header(raw: bytes) -> tuple[int, int, int, int]:
    """Validate a fixed header; returns (op, seq, meta_len, payload_len)."""
    if len(raw) < FRAME_HEADER_BYTES:
        raise TruncatedFrameError(
            f"header truncated: {len(raw)} of {FRAME_HEADER_BYTES} bytes")
    try:
        magic, op, seq, meta_len, payload_len = HEADER.unpack(
            raw[:FRAME_HEADER_BYTES])
    except struct.error as exc:
        # a half-closed or corrupted stream must surface as a wire
        # error the retry/reconnect machinery understands, never as a
        # bare struct.error
        raise WireFormatError(f"undecodable frame header: {exc}") from exc
    if magic != MAGIC:
        raise WireFormatError(
            f"bad frame magic 0x{magic:04X} (expected 0x{MAGIC:04X})")
    if meta_len > MAX_META_BYTES:
        raise WireFormatError(
            f"corrupt length prefix: metadata of {meta_len} bytes "
            f"exceeds the {MAX_META_BYTES}-byte limit")
    if payload_len > MAX_PAYLOAD_BYTES:
        raise WireFormatError(
            f"corrupt length prefix: payload of {payload_len} bytes "
            f"exceeds the {MAX_PAYLOAD_BYTES}-byte limit")
    return op, seq, meta_len, payload_len


def read_frame(read) -> tuple[int, int, dict, bytes]:
    """Read one frame through ``read(n) -> bytes``.

    ``read`` must return exactly *n* bytes, or fewer only at end of
    stream.  Raises :class:`ConnectionClosedError` for a clean close at
    a frame boundary, :class:`TruncatedFrameError` mid-frame, and
    :class:`WireFormatError` for corrupt magic, length prefixes, or
    metadata.
    """
    header = _read_exact(read, FRAME_HEADER_BYTES, allow_empty=True)
    if not header:
        raise ConnectionClosedError("connection closed")
    if len(header) < FRAME_HEADER_BYTES:
        raise TruncatedFrameError(
            f"header truncated: {len(header)} of {FRAME_HEADER_BYTES} "
            "bytes")
    op, seq, meta_len, payload_len = decode_header(header)
    meta_bytes = _read_exact(read, meta_len)
    payload = _read_exact(read, payload_len)
    return op, seq, _parse_meta(meta_bytes), payload


def _parse_meta(meta_bytes: bytes) -> dict:
    if not meta_bytes:
        return {}
    try:
        meta = json.loads(meta_bytes.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"corrupt frame metadata: {exc}") from exc
    if not isinstance(meta, dict):
        raise WireFormatError(
            f"frame metadata must be a JSON object, got "
            f"{type(meta).__name__}")
    return meta


async def read_frame_async(reader) -> tuple[int, int, dict, bytes]:
    """Read one frame from an ``asyncio.StreamReader``.

    The async twin of :func:`read_frame`, used by the serving layer
    (:mod:`repro.serve.server`).  A clean close at a frame boundary
    raises :class:`ConnectionClosedError`; a stream that ends mid-frame
    raises :class:`TruncatedFrameError` — the same graceful-EOF
    contract as the synchronous reader, so session loops can tell an
    orderly client disconnect from a corrupted stream.
    """
    import asyncio

    try:
        header = await reader.readexactly(FRAME_HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionClosedError("connection closed") from exc
        raise TruncatedFrameError(
            f"header truncated: {len(exc.partial)} of "
            f"{FRAME_HEADER_BYTES} bytes") from exc
    op, seq, meta_len, payload_len = decode_header(header)
    try:
        meta_bytes = await reader.readexactly(meta_len)
        payload = await reader.readexactly(payload_len)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrameError(
            "stream ended mid-frame after "
            f"{len(exc.partial)} of {exc.expected} bytes") from exc
    return op, seq, _parse_meta(meta_bytes), payload


def decode_frame(raw: bytes) -> tuple[int, int, dict, bytes]:
    """Decode a complete frame held in memory (testing/fuzzing aid)."""
    pos = 0

    def read(n: int) -> bytes:
        nonlocal pos
        chunk = raw[pos:pos + n]
        pos += len(chunk)
        return chunk

    op, seq, meta, payload = read_frame(read)
    if pos != len(raw):
        raise WireFormatError(
            f"{len(raw) - pos} trailing bytes after frame")
    return op, seq, meta, payload


def _read_exact(read, n: int, allow_empty: bool = False) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = read(remaining)
        if not chunk:
            got = n - remaining
            if got == 0 and allow_empty:
                return b""
            raise TruncatedFrameError(
                f"stream ended after {got} of {n} bytes")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def sock_reader(sock):
    """A ``read(n)`` callable over a socket for :func:`read_frame`."""
    return sock.recv


def send_frame(sock, op: int, seq: int, meta: dict | None = None,
               payload: bytes = b"") -> int:
    """Encode and send one frame; returns bytes put on the wire."""
    raw = encode_frame(op, seq, meta, payload)
    sock.sendall(raw)
    return len(raw)
