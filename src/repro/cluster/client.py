"""Client side of a worker connection: framing, retries, liveness.

One :class:`WorkerConnection` owns the TCP socket to one worker
process.  Every request is a frame with a fresh sequence number; the
reply must echo it.  Lost or dropped replies hit the per-request
timeout and the request is resent with the *same* sequence number —
the worker deduplicates, so a retry never re-executes a command whose
first reply was merely lost.  A broken connection is re-established
once per request; if the worker is truly gone a
:class:`~repro.errors.WorkerDiedError` surfaces so the runtime can
re-shard onto survivors.
"""

from __future__ import annotations

import os
import random
import socket
import threading
import time

from repro.cluster import wire
from repro.cluster.faults import FaultPlan
from repro.cluster.stats import ClusterStats
from repro.errors import (RemoteExecutionError, ReproError,
                          WireFormatError, WorkerDiedError)

#: per-request reply timeout (seconds); override with
#: ``REPRO_CLUSTER_TIMEOUT``
DEFAULT_TIMEOUT_S = 10.0

#: resend attempts per request before declaring the worker dead;
#: override with ``REPRO_CLUSTER_RETRIES``
DEFAULT_RETRIES = 3

#: exponential backoff between retries: BACKOFF_BASE_S * 2**attempt
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 1.0

#: default idle interval before the keepalive loop pings (seconds)
DEFAULT_KEEPALIVE_S = 30.0


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, ""))
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


class WorkerConnection:
    """Reliable request/response channel to one worker process."""

    def __init__(self, host: str, port: int, rank: int,
                 timeout_s: float | None = None,
                 retries: int | None = None,
                 fault_plan: FaultPlan | None = None) -> None:
        self.host = host
        self.port = port
        self.rank = rank
        self.timeout_s = (timeout_s if timeout_s is not None
                          else _env_float("REPRO_CLUSTER_TIMEOUT",
                                          DEFAULT_TIMEOUT_S))
        self.retries = (retries if retries is not None
                        else _env_int("REPRO_CLUSTER_RETRIES",
                                      DEFAULT_RETRIES))
        self.stats = ClusterStats(rank=rank)
        self._fault = fault_plan or FaultPlan.from_env()
        # deterministic drop decisions: faulted runs stay reproducible
        self._drop_rng = random.Random(0xD209 + rank)
        self._sock: socket.socket | None = None
        self._seq = 0
        # requests are serialized: the keepalive thread and the owner
        # thread share one socket and one sequence-number stream
        self._lock = threading.RLock()
        self._last_activity = time.monotonic()
        self._keepalive_thread: threading.Thread | None = None
        self._keepalive_stop = threading.Event()

    # -- connection management ---------------------------------------------------

    def connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def _reconnect(self) -> None:
        self.close()
        self.stats.reconnects += 1
        self.connect()

    # -- requests ----------------------------------------------------------------

    def request(self, op: int, meta: dict | None = None,
                payload: bytes = b"",
                timeout_s: float | None = None) -> tuple[dict, bytes]:
        """Send one command and wait for its reply (retrying).

        Returns the reply's ``(meta, payload)``.  Raises
        :class:`RemoteExecutionError` if the worker replied with an
        ERROR frame, :class:`WorkerDiedError` once retries and one
        reconnect are exhausted.
        """
        _rop, rmeta, rpayload = self.request_op(op, meta, payload,
                                                timeout_s)
        return rmeta, rpayload

    def request_op(self, op: int, meta: dict | None = None,
                   payload: bytes = b"",
                   timeout_s: float | None = None
                   ) -> tuple[int, dict, bytes]:
        """Like :meth:`request`, but also returns the reply opcode.

        The serving layer distinguishes OK / RESULT / BUSY replies by
        opcode; the worker protocol only ever answers OK or ERROR, so
        :meth:`request` drops it.
        """
        with self._lock:
            return self._request_locked(op, meta, payload, timeout_s)

    def _request_locked(self, op: int, meta: dict | None,
                        payload: bytes,
                        timeout_s: float | None) -> tuple[int, dict, bytes]:
        try:
            self.connect()
        except OSError as exc:
            raise WorkerDiedError(
                f"worker {self.rank} at {self.host}:{self.port} is "
                f"unreachable ({exc})", rank=self.rank) from exc
        self._seq = (self._seq + 1) & 0xFFFFFFFF
        seq = self._seq
        timeout = timeout_s if timeout_s is not None else self.timeout_s
        raw = wire.encode_frame(op, seq, meta, payload)
        reconnected = False
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                self.stats.retries += 1
                time.sleep(min(BACKOFF_BASE_S * (2 ** (attempt - 1)),
                               BACKOFF_CAP_S))
            try:
                started = time.monotonic()
                assert self._sock is not None
                self._sock.sendall(raw)
                self.stats.frames_sent += 1
                self.stats.bytes_sent += len(raw)
                reply = self._recv_reply(seq, timeout)
            except socket.timeout as exc:
                self.stats.timeouts += 1
                last_error = exc
                continue
            except (OSError, WireFormatError) as exc:
                # a clean EOF (peer half-closed an idle connection) and
                # a corrupt frame both land here: re-establish the
                # connection once and resend under the same seq (the
                # worker's reply cache deduplicates)
                last_error = exc
                if reconnected:
                    break
                try:
                    self._reconnect()
                    reconnected = True
                    continue
                except OSError as reconnect_exc:
                    last_error = reconnect_exc
                    break
            if reply is None:  # injected drop: retry path
                continue
            rop, rmeta, rpayload = reply
            self.stats.record_rtt(time.monotonic() - started)
            self._last_activity = time.monotonic()
            if rop == wire.Op.ERROR:
                raise RemoteExecutionError(
                    f"worker {self.rank}: {rmeta.get('error', 'unknown')}",
                    kind=rmeta.get("kind", ""))
            return rop, rmeta, rpayload
        self.close()
        if isinstance(last_error, wire.ConnectionClosedError):
            raise WorkerDiedError(
                f"worker {self.rank} at {self.host}:{self.port} closed "
                "the connection", rank=self.rank)
        raise WorkerDiedError(
            f"worker {self.rank} at {self.host}:{self.port} stopped "
            f"responding ({last_error})", rank=self.rank)

    def _recv_reply(self, seq: int,
                    timeout: float) -> tuple[int, dict, bytes] | None:
        """Read frames until the one echoing *seq* arrives.

        Replies to earlier (timed-out, already-retried) requests may
        still be in flight; they are drained and discarded.  Returns
        ``None`` when the fault hook decides this reply was "lost".
        """
        assert self._sock is not None
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise socket.timeout("reply timed out")
            self._sock.settimeout(remaining)
            rop, rseq, rmeta, rpayload = wire.read_frame(self._sock.recv)
            self.stats.frames_received += 1
            self.stats.bytes_received += (
                wire.frame_overhead_bytes(rmeta) + len(rpayload))
            if rseq != seq:
                continue  # stale reply from a retried request
            if (self._fault.drop_probability > 0.0
                    and self._drop_rng.random()
                    < self._fault.drop_probability):
                self.stats.frames_dropped += 1
                return None
            return rop, rmeta, rpayload

    def ping(self, timeout_s: float | None = None) -> dict:
        """Liveness probe; returns the worker's stats snapshot.

        Also folds the worker's self-reported queue depth and this
        heartbeat's timestamp into :attr:`stats`, so `repro cluster
        status` can show per-worker backlog and heartbeat age.
        """
        meta, _ = self.request(wire.Op.PING, timeout_s=timeout_s)
        self.stats.pings += 1
        self.stats.queue_depth = int(meta.get("queue_depth", 0))
        self.stats.last_heartbeat_s = time.monotonic()
        return meta

    # -- keepalive ---------------------------------------------------------------

    def start_keepalive(self,
                        interval_s: float = DEFAULT_KEEPALIVE_S) -> None:
        """Ping the worker whenever the connection sits idle.

        Long-lived serve sessions can go quiet for minutes; NAT boxes
        and the worker's own idle accounting both benefit from a
        periodic heartbeat, and a dead peer is noticed between real
        requests instead of on the next one.  Idempotent; the loop is a
        daemon thread and shares the request lock, so it can never
        interleave with an in-flight request.
        """
        if (self._keepalive_thread is not None
                and self._keepalive_thread.is_alive()):
            return
        self._keepalive_stop.clear()
        interval = max(interval_s, 0.01)

        def loop() -> None:
            poll = min(interval / 4.0, 1.0)
            while not self._keepalive_stop.wait(poll):
                idle = time.monotonic() - self._last_activity
                if idle < interval:
                    continue
                try:
                    self.ping(timeout_s=self.timeout_s)
                except (ReproError, OSError):
                    # the next real request will retry/reconnect and
                    # report the failure with full context
                    pass

        thread = threading.Thread(
            target=loop, name=f"keepalive-w{self.rank}", daemon=True)
        self._keepalive_thread = thread
        thread.start()

    def stop_keepalive(self) -> None:
        """Stop the keepalive loop (no-op if never started)."""
        self._keepalive_stop.set()
        thread = self._keepalive_thread
        self._keepalive_thread = None
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)

    def __repr__(self) -> str:
        return (f"<WorkerConnection rank={self.rank} "
                f"{self.host}:{self.port}>")
