"""Spawning and wiring up local worker processes.

Workers are plain ``subprocess`` children running
``python -m repro.cluster.worker``; each binds an ephemeral localhost
port and announces it on stdout, which the launcher reads back.

Reproducibility guarantee: the coordinator's RNG seed and every
``REPRO_*`` environment variable are propagated to each worker at
spawn (each worker offsets the seed by its rank), and kernels execute
through the same compiler and engines as a single-process run — so a
distributed run is bitwise-identical to a local one, fault injection
included (see docs/distributed.md).
"""

from __future__ import annotations

import os
import select
import subprocess
import sys
import time
from dataclasses import dataclass, field

from repro.errors import ClusterError

#: how long to wait for a spawned worker to announce its port
SPAWN_TIMEOUT_S = 30.0

PORT_LINE_PREFIX = "REPRO_CLUSTER_WORKER "


@dataclass
class WorkerProcess:
    """A spawned local worker and how to reach it."""

    rank: int
    host: str
    port: int
    proc: subprocess.Popen = field(repr=False)

    def terminate(self, timeout_s: float = 5.0) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
        try:
            self.proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()


def worker_environment(seed: int,
                       extra_env: dict[str, str] | None = None
                       ) -> dict[str, str]:
    """The environment for a spawned worker.

    Starts from the coordinator's full environment, re-asserts every
    ``REPRO_*`` variable explicitly (the reproducibility contract is
    that workers see exactly the coordinator's repro configuration),
    makes the package importable, and records the seed.
    """
    env = dict(os.environ)
    for key, value in os.environ.items():
        if key.startswith("REPRO_"):
            env[key] = value
    src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (src_dir + os.pathsep + existing
                             if existing else src_dir)
    env["REPRO_CLUSTER_SEED"] = str(seed)
    if extra_env:
        env.update(extra_env)
    return env


def launch_workers(num_workers: int, gpus_per_worker: int = 1,
                   seed: int = 0, gpu_spec: str = "tesla_c1060",
                   cpu_device: bool = False, verbose: bool = False,
                   extra_env: dict[str, str] | None = None
                   ) -> list[WorkerProcess]:
    """Spawn *num_workers* local workers and wait for their ports."""
    if num_workers < 1:
        raise ClusterError("need at least one worker")
    env = worker_environment(seed, extra_env)
    workers: list[WorkerProcess] = []
    try:
        for rank in range(num_workers):
            cmd = [sys.executable, "-m", "repro.cluster.worker",
                   "--port", "0", "--rank", str(rank),
                   "--gpus", str(gpus_per_worker),
                   "--gpu-spec", gpu_spec,
                   "--seed", str(seed)]
            if cpu_device:
                cmd.append("--cpu-device")
            if verbose:
                cmd.append("--verbose")
            proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                                    text=True)
            port = _read_port_line(proc, rank)
            workers.append(WorkerProcess(rank=rank, host="127.0.0.1",
                                         port=port, proc=proc))
    except BaseException:
        for worker in workers:
            worker.terminate()
        raise
    return workers


def _read_port_line(proc: subprocess.Popen, rank: int) -> int:
    """Wait for the worker's port announcement on its stdout."""
    deadline = time.monotonic() + SPAWN_TIMEOUT_S
    stdout = proc.stdout
    assert stdout is not None
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise ClusterError(
                f"worker {rank} exited with code {proc.returncode} "
                "before announcing its port")
        readable, _, _ = select.select([stdout], [], [], 0.2)
        if not readable:
            continue
        line = stdout.readline()
        if not line:
            continue
        if line.startswith(PORT_LINE_PREFIX):
            fields = dict(part.split("=", 1)
                          for part in line[len(PORT_LINE_PREFIX):].split())
            return int(fields["PORT"])
    proc.terminate()
    raise ClusterError(
        f"worker {rank} did not announce a port within "
        f"{SPAWN_TIMEOUT_S:.0f}s")
