"""Per-node counters for the real distributed runtime.

Where :mod:`repro.dopencl.protocol` accounts *simulated* traffic on the
virtual timeline, :class:`ClusterStats` counts what actually crossed a
worker's TCP connection: frames, bytes, retries, timeouts, and
measured wall-clock round-trip times.  Surfaced by
``repro cluster run/status`` and ``repro profile --cluster``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass
class ClusterStats:
    """Wall-clock wire counters for one worker connection."""

    rank: int = -1
    frames_sent: int = 0
    frames_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    retries: int = 0
    timeouts: int = 0
    frames_dropped: int = 0  # injected by the drop_frame fault hook
    reconnects: int = 0
    rtt_total_s: float = 0.0
    rtt_max_s: float = 0.0
    rtt_count: int = 0
    resharded: bool = False
    pings: int = 0
    queue_depth: int = 0       # worker-reported backlog at last PING
    last_heartbeat_s: float = 0.0  # time.monotonic() of last PING reply

    def record_rtt(self, seconds: float) -> None:
        self.rtt_total_s += seconds
        self.rtt_count += 1
        if seconds > self.rtt_max_s:
            self.rtt_max_s = seconds

    @property
    def rtt_mean_s(self) -> float:
        return self.rtt_total_s / self.rtt_count if self.rtt_count else 0.0

    @property
    def heartbeat_age_s(self) -> float | None:
        """Seconds since the last successful PING (None if never)."""
        if not self.last_heartbeat_s:
            return None
        return time.monotonic() - self.last_heartbeat_s

    def as_dict(self) -> dict:
        age = self.heartbeat_age_s
        return {
            "rank": self.rank,
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "frames_dropped": self.frames_dropped,
            "reconnects": self.reconnects,
            "rtt_mean_ms": self.rtt_mean_s * 1e3,
            "rtt_max_ms": self.rtt_max_s * 1e3,
            "resharded": self.resharded,
            "pings": self.pings,
            "queue_depth": self.queue_depth,
            "heartbeat_age_s": age,
        }


def stats_table(all_stats: list[ClusterStats]) -> str:
    """Render one row per worker (``repro cluster run``/``status``)."""
    from repro.util.tables import format_table
    rows = []
    for s in sorted(all_stats, key=lambda s: s.rank):
        age = s.heartbeat_age_s
        rows.append([
            s.rank, s.frames_sent, s.frames_received,
            f"{s.bytes_sent / 1e6:.2f} MB", f"{s.bytes_received / 1e6:.2f} MB",
            s.retries, s.frames_dropped,
            f"{s.rtt_mean_s * 1e3:.3f} ms",
            s.queue_depth,
            "never" if age is None else f"{age:.1f} s",
            "yes" if s.resharded else "no",
        ])
    return format_table(
        ["rank", "frames tx", "frames rx", "bytes tx", "bytes rx",
         "retries", "dropped", "mean rtt", "queue", "hb age",
         "resharded"], rows)
