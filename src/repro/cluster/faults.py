"""Fault injection for cluster tests and the CI smoke job.

Faults are injected through the ``REPRO_CLUSTER_FAULT`` environment
variable, a comma-separated list of specs:

``kill_worker:<rank>[:<nth>]``
    The worker with the given rank calls ``os._exit`` immediately
    before replying to its *nth* NDRange command (default: 2nd), i.e.
    after it has already mutated state — the nastiest point to die.
    Spawned workers see the variable through normal env inheritance.

``drop_frame:<p>``
    The *client* pretends each response frame was lost with
    probability ``p``, forcing the timeout/retry path.  Drops come
    from a dedicated deterministically-seeded RNG so faulted runs are
    as reproducible as clean ones.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ClusterError

ENV_VAR = "REPRO_CLUSTER_FAULT"


@dataclass(frozen=True)
class FaultPlan:
    """Parsed fault-injection configuration."""

    kill_rank: int | None = None
    kill_after: int = 2  # die before replying to this NDRange (1-based)
    drop_probability: float = 0.0

    @property
    def active(self) -> bool:
        return self.kill_rank is not None or self.drop_probability > 0.0

    @classmethod
    def from_env(cls, env: dict | None = None) -> "FaultPlan":
        raw = (env if env is not None else os.environ).get(ENV_VAR, "")
        return cls.parse(raw)

    @classmethod
    def parse(cls, raw: str) -> "FaultPlan":
        kill_rank: int | None = None
        kill_after = 2
        drop_probability = 0.0
        for spec in filter(None, (s.strip() for s in raw.split(","))):
            parts = spec.split(":")
            try:
                if parts[0] == "kill_worker" and len(parts) in (2, 3):
                    kill_rank = int(parts[1])
                    if len(parts) == 3:
                        kill_after = int(parts[2])
                elif parts[0] == "drop_frame" and len(parts) == 2:
                    drop_probability = float(parts[1])
                    if not 0.0 <= drop_probability <= 1.0:
                        raise ValueError(drop_probability)
                else:
                    raise ValueError(spec)
            except ValueError:
                raise ClusterError(
                    f"bad {ENV_VAR} spec {spec!r}: expected "
                    "kill_worker:<rank>[:<nth>] or drop_frame:<p>"
                    ) from None
        return cls(kill_rank=kill_rank, kill_after=kill_after,
                   drop_probability=drop_probability)
