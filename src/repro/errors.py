"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError`, so callers can
catch errors from the whole stack with a single ``except`` clause while
still being able to distinguish compiler errors from runtime errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


# ---------------------------------------------------------------------------
# Mini OpenCL-C compiler (repro.clc)
# ---------------------------------------------------------------------------

class ClcError(ReproError):
    """Base class for errors from the mini OpenCL-C compiler."""

    def __init__(self, message: str, line: int | None = None,
                 col: int | None = None) -> None:
        self.line = line
        self.col = col
        if line is not None:
            message = f"{message} (at line {line}" + (
                f", col {col})" if col is not None else ")")
        super().__init__(message)


class LexError(ClcError):
    """Invalid character or malformed literal in kernel source."""


class ParseError(ClcError):
    """Kernel source does not conform to the supported C subset grammar."""


class TypeCheckError(ClcError):
    """Kernel source is grammatical but not well-typed."""


class InterpError(ClcError):
    """Runtime failure while executing a compiled kernel (e.g. an
    out-of-bounds access caught by the simulator's boundary checks)."""


# ---------------------------------------------------------------------------
# Simulated OpenCL runtime (repro.ocl)
# ---------------------------------------------------------------------------

class OclError(ReproError):
    """Base class for simulated-OpenCL runtime errors.

    Mirrors OpenCL's error-code style: each subclass names the CL error
    condition it stands in for.
    """


class DeviceNotFoundError(OclError):
    """No device matched the requested selection (CL_DEVICE_NOT_FOUND)."""


class OutOfResourcesError(OclError):
    """Device memory exhausted (CL_MEM_OBJECT_ALLOCATION_FAILURE)."""


class BuildProgramFailure(OclError):
    """Program source failed to compile (CL_BUILD_PROGRAM_FAILURE)."""

    def __init__(self, message: str, build_log: str = "") -> None:
        super().__init__(message)
        self.build_log = build_log


class InvalidKernelArgs(OclError):
    """Kernel launched with missing/ill-typed arguments
    (CL_INVALID_KERNEL_ARGS)."""


class InvalidCommand(OclError):
    """A command was enqueued with invalid parameters (e.g. transfer range
    outside a buffer: CL_INVALID_VALUE)."""


class ContextMismatchError(OclError):
    """Objects from different contexts were mixed (CL_INVALID_CONTEXT)."""


# ---------------------------------------------------------------------------
# Simulated CUDA runtime (repro.cuda)
# ---------------------------------------------------------------------------

class CudaError(ReproError):
    """Base class for simulated-CUDA runtime errors."""


# ---------------------------------------------------------------------------
# SkelCL library (repro.skelcl)
# ---------------------------------------------------------------------------

class SkelClError(ReproError):
    """Base class for SkelCL-level errors."""


class NotInitializedError(SkelClError):
    """SkelCL used before :func:`repro.skelcl.init` was called."""


class DistributionError(SkelClError):
    """Invalid distribution request or incompatible vector distributions."""


class SizeMismatchError(SkelClError):
    """Vectors of different sizes passed where equal sizes are required."""


class GraphScopeError(SkelClError):
    """A lazy graph handle was forced after its graph could no longer
    replay it: the ``deferred()`` scope exited and the captured values
    it would replay from were discarded (a retired stream-template
    graph, or a re-armed graph whose source vectors were cleared).

    ``handle`` names the node whose handle was forced; ``scope`` names
    the graph scope it was captured in.
    """

    def __init__(self, message: str, handle: str = "",
                 scope: str = "") -> None:
        super().__init__(message)
        self.handle = handle
        self.scope = scope


# ---------------------------------------------------------------------------
# dOpenCL (repro.dopencl)
# ---------------------------------------------------------------------------

class DOpenCLError(ReproError):
    """Base class for the simulated distributed-OpenCL layer."""


class NodeUnreachableError(DOpenCLError):
    """The simulated network has no route to the requested node."""


# ---------------------------------------------------------------------------
# Distributed runtime (repro.cluster)
# ---------------------------------------------------------------------------

class ClusterError(ReproError):
    """Base class for the multi-process distributed runtime."""


class WireFormatError(ClusterError):
    """A frame on the cluster wire is malformed (bad magic, corrupt
    length prefix, truncated stream, oversized payload)."""


class WorkerDiedError(ClusterError):
    """A worker process stopped responding and reconnection failed."""

    def __init__(self, message: str, rank: int | None = None) -> None:
        super().__init__(message)
        self.rank = rank


class RemoteExecutionError(ClusterError):
    """A worker reported a failure while executing a forwarded command."""

    def __init__(self, message: str, kind: str = "") -> None:
        super().__init__(message)
        self.kind = kind


# ---------------------------------------------------------------------------
# Scheduler (repro.sched)
# ---------------------------------------------------------------------------

class SchedulerError(ReproError):
    """Base class for scheduling failures."""


# ---------------------------------------------------------------------------
# Whole-pipeline analysis (repro.analysis)
# ---------------------------------------------------------------------------

class AnalysisError(ReproError):
    """Base class for the cross-skeleton effect/alias verifier."""


class PlanVerificationError(AnalysisError):
    """An optimized graph plan failed independent re-verification.

    Raised *instead of executing* the plan; ``report`` carries the
    structured diagnostics (:class:`repro.clc.analysis.AnalysisReport`)
    that prove the rejection.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class SanitizerError(AnalysisError):
    """The runtime sanitizer observed a buffer mutation outside the
    statically-declared effect region of the launched kernel
    (``REPRO_SANITIZE=1``)."""


# ---------------------------------------------------------------------------
# Serving layer (repro.serve)
# ---------------------------------------------------------------------------

class ServeError(ReproError):
    """Base class for the multi-tenant serving layer."""


class AdmissionRejectedError(ServeError):
    """The server refused a job: the tenant's queue (or the server) is
    full.  ``retry_after_s`` estimates when capacity will free up."""

    def __init__(self, message: str, retry_after_s: float = 0.0,
                 tenant: str = "") -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.tenant = tenant


class UnknownJobError(ServeError):
    """A poll/result/cancel referenced a job id the server does not
    hold for that tenant (wrong id, expired, or another tenant's)."""


# ---------------------------------------------------------------------------
# Streaming layer (repro.stream)
# ---------------------------------------------------------------------------

class StreamError(ReproError):
    """Base class for the windowed streaming layer.

    Structured like the analysis diagnostics: every raise carries a
    ``STRMxxx`` code so tests and clients can match on the condition
    instead of the message text (docs/streaming.md lists the codes).
    """

    def __init__(self, message: str, code: str = "STRM000") -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class StreamBackpressureError(StreamError):
    """The in-flight-window budget is exhausted: the producer must
    consume results (or back off for ``retry_after_s``) before pushing
    more elements."""

    def __init__(self, message: str,
                 retry_after_s: float = 0.0) -> None:
        super().__init__(message, code="STRM002")
        self.retry_after_s = retry_after_s
