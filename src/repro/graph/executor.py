"""Execution of an optimized plan on the virtual machine model.

Steps run in plan order — which is capture (program) order, so every
distribution change and side effect lands exactly when eager code would
have applied it.  Overlap in virtual time comes from the timeline
model itself: each device queue and transfer link is an independent
:class:`~repro.util.timeline.Resource`, so kernels of one branch run
concurrently with transfers of another wherever the data dependencies
(buffer ``ready_at`` chaining) allow it.

With ``adaptive=True`` the executor routes distribution-less map/zip
inputs through a per-kernel :class:`~repro.sched.AdaptiveScheduler`
whose weights persist in a :class:`~repro.sched.WeightStore` across
evaluations — the graph-aware extension of the sched layer's EMA
refinement.
"""

from __future__ import annotations

from repro.errors import SkelClError
from repro.graph import capture
from repro.graph.node import Node
from repro.graph.passes import Plan, PlanStep


def execute_plan(plan: Plan, ctx, adaptive: bool = False,
                 weight_store=None) -> None:
    """Run every step of *plan*, materializing node values in place."""
    scheduler_for = None
    if adaptive:
        from repro.sched import WeightStore
        store = weight_store if weight_store is not None else WeightStore()
        scheduler_for = lambda skel: store.scheduler_for(  # noqa: E731
            skel.user.source, ctx.devices)
    with capture.suspended():
        for step in plan.steps:
            _run_step(step, ctx, scheduler_for)
    for node, source in plan.aliases:
        # a later pass may have fused the source away; the aliased node
        # then stays pending and replays on demand instead
        if source.value is not None:
            node.value = source.value
            node.executed = True


def execute_node(node: Node) -> None:
    """Replay one captured node eagerly (recompute-on-demand path used
    by ``LazyVector.force`` for nodes the optimizer skipped).  All
    dependencies must already hold values."""
    step = PlanStep(node=node, kind=node.kind, skeleton=node.skeleton,
                    inputs=list(node.inputs), extras=node.extras,
                    out=node.out, dist=node.dist)
    with capture.suspended():
        _run_step(step, ctx=None, scheduler_for=None)


def _value_of(node: Node):
    if node.value is None:
        raise SkelClError(
            f"dependency {node.label} has no value — plan is not in "
            "dependency order")
    return node.value


def _run_step(step: PlanStep, ctx, scheduler_for) -> None:
    node = step.node
    extras = tuple(_value_of(e) if isinstance(e, Node) else e
                   for e in step.extras)

    if step.kind == "redistribute":
        vec = _value_of(step.inputs[0])
        vec.set_distribution(step.dist)
        result = vec
    elif step.kind in ("map", "zip"):
        inputs = [_value_of(n) for n in step.inputs]
        scheduler = (scheduler_for(step.skeleton)
                     if scheduler_for is not None else None)
        observe_input = None
        if scheduler is not None and inputs[0].distribution is None:
            inputs[0].set_distribution(scheduler.distribution())
            observe_input = inputs[0]
        before = len(ctx.system.timeline.spans) if ctx is not None else 0
        result = step.skeleton(*inputs, *extras, out=step.out)
        if observe_input is not None:
            _observe(scheduler, ctx, observe_input, before)
    elif step.kind in ("reduce", "map_reduce"):
        result = step.skeleton(_value_of(step.inputs[0]))
    elif step.kind in ("scan", "map_scan"):
        result = step.skeleton(_value_of(step.inputs[0]), out=step.out)
    elif step.kind == "map_overlap":
        result = step.skeleton(_value_of(step.inputs[0]), *extras,
                               out=step.out)
    elif step.kind == "overlap_chain":
        result = step.skeleton(_value_of(step.inputs[0]), out=step.out)
    else:  # pragma: no cover - exhaustive over executable kinds
        raise SkelClError(f"cannot execute node kind {step.kind!r}")

    node.executed = True
    if result is not None:
        node.value = result


def _observe(scheduler, ctx, input_vec, span_start: int) -> None:
    """Feed the kernel spans this step produced back into the
    scheduler's weights (per-device busy time vs. elements handled)."""
    new_spans = ctx.system.timeline.spans[span_start:]
    lengths, seconds = [], []
    for device, part in zip(ctx.devices, input_vec.parts):
        busy = sum(s.duration for s in new_spans
                   if s.resource == device.queue_resource.name
                   and s.label.startswith(("kernel:", "cuda:")))
        lengths.append(part.length)
        seconds.append(busy)
    scheduler.observe(lengths, seconds)
