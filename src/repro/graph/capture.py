"""Capture of skeleton calls into a lazy task graph.

Inside a ``with skelcl.deferred():`` scope, skeleton calls do not
execute — they record :class:`~repro.graph.node.Node`s on the active
:class:`Graph` and return :class:`LazyVector` handles.  On scope exit
(or an explicit :func:`evaluate`) the graph is optimized
(:mod:`repro.graph.passes`) and executed
(:mod:`repro.graph.executor`), materializing results bitwise-identical
to eager mode.

The skeletons themselves only call :func:`intercept` at the top of
``__call__`` (via :meth:`repro.skelcl.base.Skeleton.deferred_intercept`):
with an active graph it captures the call; without one it transparently
unwraps any LazyVector arguments by forcing them, so lazy handles flow
into later eager code unchanged.
"""

from __future__ import annotations

import itertools
import weakref
from contextlib import contextmanager
from typing import NamedTuple, Sequence

from repro.errors import GraphScopeError, SizeMismatchError, SkelClError
from repro.graph.node import Node
from repro.skelcl.context import SkelCLContext, get_context
from repro.skelcl.vector import Vector

#: innermost-active graph builders (nested ``deferred`` scopes nest)
_builders: list["Graph"] = []

_scope_seq = itertools.count(1)

#: when not None, plan verification collects (plan, report) pairs here
#: instead of rejecting unsound plans (``repro verify-plan`` audits)
_audit_reports: list | None = None


@contextmanager
def auditing_plans():
    """Audit mode: every evaluated plan is verified, but unsound plans
    execute anyway; yields the accumulating ``(plan, report)`` list."""
    global _audit_reports
    saved = _audit_reports
    _audit_reports = []
    try:
        yield _audit_reports
    finally:
        _audit_reports = saved


def _verify(plan):
    """Independently re-prove the optimized plan before execution.

    On by default; ``REPRO_VERIFY_PLAN=0`` opts out.  Unsound plans
    raise :class:`repro.errors.PlanVerificationError` instead of
    executing (except under :func:`auditing_plans`).
    """
    import os
    if os.environ.get("REPRO_VERIFY_PLAN", "1") in ("0", ""):
        return None
    from repro.analysis import verifier
    if _audit_reports is not None:
        report = verifier.verify_plan(plan)
        _audit_reports.append((plan, report))
        return report
    return verifier.verify_or_raise(plan)


def current_graph() -> "Graph | None":
    """The graph currently capturing skeleton calls, if any."""
    return _builders[-1] if _builders else None


@contextmanager
def suspended():
    """Temporarily disable capture (the executor replays skeleton calls
    through their ordinary ``__call__``, which must not re-capture even
    when evaluation was triggered from inside a deferred scope)."""
    saved = _builders[:]
    _builders.clear()
    try:
        yield
    finally:
        _builders[:] = saved


class LazyVector:
    """Handle to the not-yet-computed result of a deferred call.

    Size and dtype are known statically (inferred at capture time);
    everything else forces evaluation: once the scope has been
    evaluated the handle delegates to the materialized
    :class:`~repro.skelcl.Vector`, and a handle whose node was
    optimized away (fused through, or pruned as dead) transparently
    recomputes its value from the captured graph on first access.
    """

    def __init__(self, graph: "Graph", node: Node) -> None:
        self._graph = graph
        self._node = node
        node.handle_ref = weakref.ref(self)

    # -- static metadata (no forcing) ------------------------------------------

    @property
    def node(self) -> Node:
        return self._node

    @property
    def graph(self) -> "Graph":
        return self._graph

    @property
    def size(self) -> int:
        return int(self._node.out_size or 0)

    def __len__(self) -> int:
        return self.size

    @property
    def dtype(self):
        return self._node.out_dtype

    # -- forcing ----------------------------------------------------------------

    def force(self) -> Vector:
        """The materialized Vector, computing it if necessary."""
        return self._graph.ensure_value(self._node)

    def to_numpy(self):
        return self.force().to_numpy()

    def __getitem__(self, index):
        return self.force()[index]

    def __iter__(self):
        return iter(self.force())

    @property
    def distribution(self):
        return self.force().distribution

    def set_distribution(self, dist) -> None:
        """Change distribution; recorded lazily while capturing.

        Inside the scope this appends a ``redistribute`` node and
        re-points the handle at it, so later uses of this handle see
        the new layout; afterwards it acts eagerly on the value.
        """
        if current_graph() is self._graph and not self._node.executed:
            old = self._node
            self._node = self._graph.add_redistribute(old, dist)
            self._node.handle_ref = weakref.ref(self)
            if old.handle_ref is not None and old.handle_ref() is self:
                old.handle_ref = None  # the handle moved on
            return
        self.force().set_distribution(dist)

    setDistribution = set_distribution

    def __getattr__(self, name):
        # anything else (host_view, parts, clone, ...) acts on the value
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.force(), name)

    def __repr__(self) -> str:
        state = ("materialized" if self._node.value is not None
                 else "pending")
        return (f"<LazyVector size={self.size} dtype={self.dtype} "
                f"node=#{self._node.id} {state}>")


class InterceptResult(NamedTuple):
    """What :func:`intercept` decided about one skeleton call."""

    captured: bool
    #: the LazyVector result (None for void calls) when captured
    value: object
    #: unwrapped eager arguments when not captured
    inputs: tuple
    extras: tuple
    out: object


def intercept(skeleton, kind: str, inputs: Sequence, extras: Sequence,
              out=None) -> InterceptResult:
    """Route a skeleton call into the active graph, or unwrap lazies.

    Called first thing by every skeleton ``__call__``.  Returns either
    ``captured=True`` with the LazyVector standing for the result, or
    ``captured=False`` with inputs/extras/out ready for eager use
    (LazyVector arguments forced to their Vectors).
    """
    graph = current_graph()
    if graph is not None:
        value = graph.record_call(skeleton, kind, inputs, extras, out)
        return InterceptResult(True, value, (), (), None)
    return InterceptResult(
        False, None,
        tuple(_unwrap(v) for v in inputs),
        tuple(_unwrap(v) for v in extras),
        _unwrap(out))


def _unwrap(value):
    return value.force() if isinstance(value, LazyVector) else value


class Graph:
    """A captured task graph plus its evaluation state."""

    def __init__(self, context: SkelCLContext | None = None,
                 scope_name: str | None = None) -> None:
        self._explicit_ctx = context
        self._ctx: SkelCLContext | None = context
        #: human-readable name of the capture scope, used by
        #: :class:`~repro.errors.GraphScopeError` to say *where* a
        #: stale handle came from
        self.scope_name = scope_name or f"deferred#{next(_scope_seq)}"
        #: why replay-on-demand is no longer possible (None = alive)
        self.retired: str | None = None
        self.nodes: list[Node] = []
        self._sources: dict[int, Node] = {}
        #: pass statistics of the most recent optimized evaluation
        self.last_stats: dict[str, int] = {}
        #: the most recent optimized plan (for dumps/debugging)
        self.last_plan = None
        #: AnalysisReport of the most recent plan verification
        self.last_verification = None

    # -- context ----------------------------------------------------------------

    @property
    def ctx(self) -> SkelCLContext:
        if self._ctx is None:
            self._ctx = get_context(self._explicit_ctx)
        return self._ctx

    def _adopt_context(self, ctx: SkelCLContext) -> None:
        if self._ctx is None:
            self._ctx = ctx

    # -- node construction -------------------------------------------------------

    def _new_node(self, **kw) -> Node:
        node = Node(len(self.nodes), **kw)
        self.nodes.append(node)
        return node

    def source(self, vector: Vector) -> Node:
        """The (cached) source node wrapping a concrete Vector."""
        node = self._sources.get(id(vector))
        if node is None:
            node = self._new_node(kind="source", out_size=vector.size,
                                  out_dtype=vector.dtype)
            node.value = vector
            node.executed = True
            self._sources[id(vector)] = node
            self._adopt_context(vector.ctx)
        return node

    def add_redistribute(self, input_node: Node, dist) -> Node:
        return self._new_node(kind="redistribute", inputs=[input_node],
                              dist=dist, out_size=input_node.out_size,
                              out_dtype=input_node.out_dtype)

    def _as_node(self, value) -> Node:
        """Graph node standing for one vector-valued argument."""
        if isinstance(value, LazyVector):
            if value.graph is self:
                return value.node
            # a handle from another graph: force it there, then treat
            # the materialized vector as a plain source
            return self.source(value.force())
        if isinstance(value, Vector):
            return self.source(value)
        raise SkelClError(
            f"deferred skeleton input must be a Vector, got "
            f"{type(value).__name__}")

    # -- capture -----------------------------------------------------------------

    def record_call(self, skeleton, kind: str, inputs: Sequence,
                    extras: Sequence, out) -> "LazyVector | None":
        """Append the node for one skeleton call; returns its handle."""
        input_nodes = [self._as_node(v) for v in inputs]
        self._validate(skeleton, kind, input_nodes)
        if isinstance(out, LazyVector):
            raise SkelClError(
                "deferred calls cannot write into a lazy out= vector; "
                "pass a concrete Vector or drop out=")
        # lazy extras become node references; concrete values stay raw
        extra_nodes = tuple(
            self._as_node(e) if isinstance(e, LazyVector) else e
            for e in extras)
        if kind == "reduce":
            out_size = 1
        else:
            out_size = input_nodes[0].out_size
        out_dtype = getattr(skeleton, "out_dtype", None)
        if kind in ("reduce", "scan"):
            out_dtype = skeleton.elem_dtype
        node = self._new_node(kind=kind, skeleton=skeleton,
                              inputs=input_nodes, extras=extra_nodes,
                              out=out, out_size=out_size,
                              out_dtype=out_dtype)
        if kind in ("map", "zip") and skeleton.out_dtype is None:
            return None  # void call: effect node, no handle
        return LazyVector(self, node)

    def _validate(self, skeleton, kind: str,
                  input_nodes: list[Node]) -> None:
        """Static checks that can fail at capture time (good errors at
        the call site); everything else is validated on execution."""
        if kind == "zip":
            lhs, rhs = input_nodes
            if lhs.out_size != rhs.out_size:
                raise SizeMismatchError(
                    f"vector sizes differ: {lhs.out_size} vs "
                    f"{rhs.out_size}")
            expected = (skeleton.lhs_dtype, skeleton.rhs_dtype)
            actual = (lhs.out_dtype, rhs.out_dtype)
            if expected != actual:
                raise SkelClError(
                    f"zip({skeleton.user.name}): input dtypes {actual} "
                    f"do not match parameter types {expected}")
            return
        (node,) = input_nodes
        if kind == "map" and node.out_dtype != skeleton.in_dtype:
            raise SkelClError(
                f"map({skeleton.user.name}): input dtype "
                f"{node.out_dtype} does not match parameter type "
                f"{skeleton.in_dtype}")
        if kind == "map_overlap":
            if node.out_size == 0:
                raise SkelClError("cannot map_overlap an empty vector")
            if node.out_dtype != skeleton.elem_dtype:
                raise SkelClError(
                    f"map_overlap({skeleton.user.name}): input dtype "
                    f"{node.out_dtype} does not match window element "
                    f"type {skeleton.elem_dtype}")
        if kind in ("reduce", "scan"):
            if node.out_size == 0:
                raise SkelClError(f"cannot {kind} an empty vector")
            if node.out_dtype != skeleton.elem_dtype:
                raise SkelClError(
                    f"{kind}({skeleton.user.name}): input dtype "
                    f"{node.out_dtype} does not match operator type "
                    f"{skeleton.elem_dtype}")

    # -- consumers / roots ---------------------------------------------------------

    def consumers(self) -> dict[int, list[Node]]:
        """node id -> nodes that consume it (inputs or lazy extras)."""
        used: dict[int, list[Node]] = {n.id: [] for n in self.nodes}
        for node in self.nodes:
            for dep in node.deps():
                used[dep.id].append(node)
        return used

    def default_roots(self) -> list[Node]:
        """What an unqualified evaluation must produce: side-effecting
        nodes, plus every terminal result the user can still observe
        (its LazyVector handle is alive).  Dead terminals — handles
        already garbage-collected — are left to the pruning pass."""
        consumed = self.consumers()
        roots = []
        for node in self.nodes:
            if node.kind == "source":
                continue
            if node.effect:
                roots.append(node)
            elif not consumed[node.id] and node.handle_alive:
                roots.append(node)
        return roots

    # -- evaluation ----------------------------------------------------------------

    def evaluate(self, *targets, optimize: bool = True,
                 adaptive: bool = False, weight_store=None,
                 rewrite: bool | None = None) -> dict[str, int]:
        """Optimize and execute the graph.

        Args:
            targets: LazyVectors (or Nodes) to materialize; defaults to
                every observable terminal plus all effect nodes.
            optimize: run the optimization passes (fusion,
                dead-intermediate elimination, redistribution elision);
                False replays the captured calls as-is.
            adaptive: split work with graph-aware adaptive weights
                (see :mod:`repro.sched`); results are then only
                bitwise-reproducible for maps/zips, not reductions.
            weight_store: a :class:`repro.sched.WeightStore` carrying
                learned device weights across evaluations.
            rewrite: run the cost-model-driven rewrite optimizer
                (:mod:`repro.graph.rewrite`) after the peephole passes;
                defaults to the ``REPRO_GRAPH_REWRITE`` environment
                knob (on unless set to ``0``).

        Returns the pass/execution statistics (also kept on
        ``last_stats``).
        """
        import os
        from repro.graph import executor, passes
        if targets:
            roots = [t.node if isinstance(t, LazyVector) else t
                     for t in targets]
        else:
            roots = self.default_roots()
        plan = passes.build_plan(self, roots)
        if optimize:
            passes.elide_redistributions(plan)
            passes.fuse_map_chains(plan)
            if rewrite is None:
                rewrite = os.environ.get(
                    "REPRO_GRAPH_REWRITE", "1") not in ("0", "")
            if rewrite and not adaptive:
                from repro.graph import rewrite as rewrite_pass
                plan = rewrite_pass.optimize_plan(plan, self.ctx)
        self.last_verification = _verify(plan)
        executor.execute_plan(plan, self.ctx, adaptive=adaptive,
                              weight_store=weight_store)
        self.last_plan = plan
        self.last_stats = dict(plan.stats)
        return self.last_stats

    def retire(self, reason: str) -> None:
        """Declare replay-on-demand impossible from here on.

        The stream template engine re-arms a captured graph between
        windows (clearing node values, re-pointing the source vector
        at the next window); any handle that escaped the capture scope
        would replay against whichever window happens to be loaded.
        Retiring the graph turns that silent wrong-answer into a
        structured :class:`~repro.errors.GraphScopeError`.
        """
        self.retired = reason

    def ensure_value(self, node: Node, _for: Node | None = None) -> Vector:
        """Force one node, replaying captured calls for any ancestor
        that evaluation skipped (pruned or fused through).

        Raises :class:`~repro.errors.GraphScopeError` when the replay
        is no longer possible: the graph was retired, or it reaches a
        source whose captured value was discarded (a re-armed graph
        after its ``deferred()``/capture scope exited).
        """
        target = _for if _for is not None else node
        if self.retired is not None:
            raise GraphScopeError(
                f"cannot force handle {target.label} (node "
                f"#{target.id}): its capture scope "
                f"{self.scope_name!r} was retired ({self.retired})",
                handle=target.label, scope=self.scope_name)
        if node.value is not None:
            return node.value
        if node.executed:
            raise SkelClError(
                f"{node.label} produced no value (void skeleton call)")
        if node.kind == "source":
            # a source without a value cannot be recomputed: the
            # concrete Vector it captured is gone (cleared by a
            # re-arm after the scope exited)
            raise GraphScopeError(
                f"cannot force handle {target.label} (node "
                f"#{target.id}): source {node.label} (node #{node.id}) "
                f"of scope {self.scope_name!r} no longer holds its "
                "captured vector, so the call chain cannot be "
                "replayed after the scope exited",
                handle=target.label, scope=self.scope_name)
        from repro.graph import executor
        for dep in node.deps():
            self.ensure_value(dep, _for=target)
        executor.execute_node(node)
        if node.value is None:
            raise SkelClError(
                f"{node.label} produced no value (void skeleton call)")
        return node.value


@contextmanager
def capturing(graph: "Graph"):
    """Capture skeleton calls onto *graph* without evaluating on exit.

    The building block under :func:`deferred` for callers that manage
    evaluation themselves — the stream template builder captures a
    pipeline once, evaluates it explicitly, then re-executes the
    cached plan per window.
    """
    _builders.append(graph)
    try:
        yield graph
    finally:
        popped = _builders.pop()
        assert popped is graph


@contextmanager
def deferred(context: SkelCLContext | None = None,
             optimize: bool = True, adaptive: bool = False,
             weight_store=None, rewrite: bool | None = None):
    """Scope in which skeleton calls build a task graph lazily.

    On clean exit the graph is optimized and executed; results are
    bitwise-identical to eager execution.  The graph is yielded for
    introspection (``g.last_stats``, ``g.nodes``) and for explicit
    mid-scope :meth:`Graph.evaluate` calls.

    Example::

        with skelcl.deferred():
            y = m1(x)
            z = m2(y)          # fused with m1 into one kernel
        print(z.to_numpy())
    """
    graph = Graph(context)
    _builders.append(graph)
    try:
        yield graph
    finally:
        popped = _builders.pop()
        assert popped is graph
    # evaluate only on clean exit — an exception propagates as-is
    graph.evaluate(optimize=optimize, adaptive=adaptive,
                   weight_store=weight_store, rewrite=rewrite)


def evaluate(*lazies: LazyVector, optimize: bool = True,
             adaptive: bool = False, weight_store=None) -> None:
    """Materialize specific LazyVectors (optimizing their sub-DAGs)."""
    by_graph: dict[int, tuple[Graph, list[LazyVector]]] = {}
    for lazy in lazies:
        if not isinstance(lazy, LazyVector):
            raise SkelClError(
                f"evaluate() takes LazyVectors, got "
                f"{type(lazy).__name__}")
        entry = by_graph.setdefault(id(lazy.graph), (lazy.graph, []))
        entry[1].append(lazy)
    for graph, handles in by_graph.values():
        graph.evaluate(*handles, optimize=optimize, adaptive=adaptive,
                       weight_store=weight_store)
