"""Lazy task-graph execution engine (extension; see docs/graph.md).

The paper's API executes every skeleton call eagerly.  This package
adds a fourth execution layer (after eager, dOpenCL, and CUDA): inside
a ``with skelcl.deferred():`` scope, skeleton calls record DAG nodes
and return :class:`LazyVector` handles; on scope exit the graph is
optimized — map/zip chain fusion, dead-intermediate elimination,
redistribution and host-roundtrip elision, and a cost-model-driven
rewrite-rule planner (:mod:`repro.graph.rewrite`) — and executed on
the virtual timeline, producing results bitwise-identical to eager
mode.

    import repro.skelcl as skelcl

    with skelcl.deferred():
        y = scale(x)       # recorded, not executed
        z = offset(y)      # fused with `scale` into one kernel
    print(z.to_numpy())    # materialized on scope exit
"""

from repro.graph.batching import (BatchedRun, merge_inputs,
                                  pipeline_signature, run_batched,
                                  split_outputs)
from repro.graph.capture import (Graph, LazyVector, capturing,
                                 current_graph, deferred, evaluate)
from repro.graph.dot import graph_to_dot
from repro.graph.node import Node
from repro.graph.passes import (Plan, PlanStep, build_plan,
                                elide_redistributions, fuse_map_chains)
from repro.graph.rewrite import RULES, RULE_CODES, optimize_plan

__all__ = [
    "BatchedRun", "Graph", "LazyVector", "Node", "Plan", "PlanStep",
    "RULES", "RULE_CODES", "build_plan", "capturing", "current_graph",
    "deferred",
    "elide_redistributions", "evaluate", "fuse_map_chains",
    "graph_to_dot", "merge_inputs", "optimize_plan",
    "pipeline_signature", "run_batched", "split_outputs",
]
