"""Optimization passes over a captured task graph.

:func:`build_plan` lowers the reachable part of a graph into a
:class:`Plan` — an executable, topologically-ordered list of
:class:`PlanStep`\\ s — pruning dead intermediates on the way (nodes no
root needs whose handles the user has dropped).  The passes then
rewrite the plan in place:

- :func:`elide_redistributions` collapses chains of consecutive
  redistributes (the deferred equivalent of a host round-trip:
  ``block -> single -> block`` never has to move data at all) and drops
  redistributes that re-state the layout their input already has;
- :func:`fuse_map_chains` merges linear map/zip chains into single
  fused kernels via :func:`repro.skelcl.fusion.fuse_chain`, halving
  (or better) the intermediate memory traffic.

Passes only rewrite *plan steps*; the captured graph itself stays
untouched, so a :class:`~repro.graph.capture.LazyVector` whose node was
fused through or pruned can still replay its original call chain on
demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SkelClError
from repro.graph.node import Node
from repro.skelcl.fusion import fuse_chain, fusion_blocker


@dataclass
class PlanStep:
    """One executable unit of a plan.

    Initially a step replays exactly one captured node; fusion replaces
    a run of steps with a single step whose ``skeleton`` is the fused
    composition and whose ``node`` is the chain's last node (the only
    one whose value the rest of the plan needs).
    """

    node: Node
    kind: str
    skeleton: object = None
    inputs: list = field(default_factory=list)
    extras: tuple = ()
    out: object = None
    dist: object = None
    #: the original nodes merged into this step (fusion), head first
    fused_from: tuple = ()
    #: rewrite-rule names applied to this step, in application order
    rules: tuple = ()
    #: graph nodes this step computes through rewriting (dataflow
    #: order, the step's own node last) — the rewrite analogue of
    #: ``fused_from``
    rewritten_from: tuple = ()

    @property
    def label(self) -> str:
        if self.rules:
            members = (self.rewritten_from or self.fused_from
                       or (self.node,))
            names = "+".join(
                n.skeleton.user.name if n.skeleton is not None
                else n.label for n in members)
            return f"rewritten[{names}|{','.join(self.rules)}]"
        if self.fused_from:
            names = "+".join(n.skeleton.user.name for n in self.fused_from)
            return f"fused[{names}]"
        return self.node.label

    def copy(self) -> "PlanStep":
        return PlanStep(node=self.node, kind=self.kind,
                        skeleton=self.skeleton, inputs=list(self.inputs),
                        extras=self.extras, out=self.out, dist=self.dist,
                        fused_from=self.fused_from, rules=self.rules,
                        rewritten_from=self.rewritten_from)


class Plan:
    """An optimized, executable lowering of (part of) a graph."""

    def __init__(self, graph, roots: list[Node],
                 steps: list[PlanStep]) -> None:
        self.graph = graph
        self.roots = roots
        self.root_ids = {n.id for n in roots}
        self.steps = steps
        #: (node, source) pairs: node's value equals source's value
        #: (recorded when a demanded no-op redistribute is elided)
        self.aliases: list[tuple[Node, Node]] = []
        self.stats: dict[str, int] = {
            "nodes": len(graph.nodes),
            "steps": len(steps),
            "pruned": 0,
            "redistributions_elided": 0,
            "fused_chains": 0,
            "fused_stages": 0,
            "rewrites_applied": 0,
        }
        #: (node label, consumer label, reason) triples recorded when a
        #: growing fusion chain was stopped by an incompatibility
        self.fusion_blockers: list[tuple[str, str, str]] = []
        #: rule names applied by the rewrite optimizer, in order
        self.rewrite_trace: tuple[str, ...] = ()
        #: cost-model makespan of this plan / of the unrewritten plan
        self.predicted_makespan_s: float | None = None
        self.baseline_predicted_s: float | None = None

    def clone(self) -> "Plan":
        """Deep-copy the plan's step list (Nodes stay shared — they are
        the immutable graph; steps are the mutable rewrite substrate)."""
        twin = Plan(self.graph, self.roots, [s.copy() for s in self.steps])
        twin.aliases = list(self.aliases)
        twin.stats = dict(self.stats)
        twin.fusion_blockers = list(self.fusion_blockers)
        twin.rewrite_trace = self.rewrite_trace
        twin.predicted_makespan_s = self.predicted_makespan_s
        twin.baseline_predicted_s = self.baseline_predicted_s
        return twin

    def consumers(self) -> dict[int, list[PlanStep]]:
        """node id -> plan steps that read its value."""
        used: dict[int, list[PlanStep]] = {}
        for step in self.steps:
            for dep in step.inputs:
                used.setdefault(dep.id, []).append(step)
            for extra in step.extras:
                if isinstance(extra, Node):
                    used.setdefault(extra.id, []).append(step)
        return used

    def _resync_stats(self) -> None:
        self.stats["steps"] = len(self.steps)


def build_plan(graph, roots: list[Node]) -> Plan:
    """Lower the sub-DAG reachable from *roots* into an initial plan.

    Nodes that already hold a value (sources, and anything a previous
    evaluation materialized) terminate the traversal.  Captured nodes
    *not* reachable from any root are dead intermediates: they are
    pruned here and never execute.
    """
    reachable: set[int] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node.id in reachable:
            continue
        reachable.add(node.id)
        if node.value is not None:
            continue  # already materialized: acts as a source
        stack.extend(node.deps())

    steps = []
    pruned = 0
    for node in graph.nodes:
        if node.value is not None or node.kind == "source":
            continue
        if node.id not in reachable:
            if not node.executed:
                pruned += 1
            continue
        steps.append(PlanStep(
            node=node, kind=node.kind, skeleton=node.skeleton,
            inputs=list(node.inputs), extras=node.extras, out=node.out,
            dist=node.dist))
    plan = Plan(graph, roots, steps)
    plan.stats["pruned"] = pruned
    plan._resync_stats()
    return plan


# ---------------------------------------------------------------------------
# redistribution elision
# ---------------------------------------------------------------------------

def _same_distribution(a, b) -> bool:
    """Layout-and-semantics equality: applying *b* on top of *a* is a
    no-op.  ``same_layout`` respects subclass layouts (weighted block);
    the combine function additionally matters for copy distributions
    because it decides how divergent copies merge later."""
    if a is None or b is None:
        return False
    return a.same_layout(b) and a.combine is b.combine


def _infer_distributions(plan: Plan) -> dict[int, object]:
    """Best-effort produced distribution of every plan node (None when
    unknown), mirroring each skeleton's eager resolution rules."""
    from repro.skelcl.distribution import Distribution

    dist: dict[int, object] = {}
    for node in plan.graph.nodes:
        if node.value is not None:
            dist[node.id] = node.value.distribution

    block = Distribution.block()
    for step in plan.steps:
        if step.kind == "redistribute":
            produced = step.dist
        elif step.kind == "map":
            produced = dist.get(step.inputs[0].id) or block
        elif step.kind == "zip":
            ld = dist.get(step.inputs[0].id)
            rd = dist.get(step.inputs[1].id)
            if ld is None and rd is None:
                produced = block
            elif ld is None:
                produced = rd
            elif rd is None:
                produced = ld
            else:
                produced = ld if ld.same_layout(rd) else block
        elif step.kind in ("reduce", "map_reduce"):
            produced = Distribution.single(0)
        elif step.kind in ("scan", "map_scan", "map_overlap",
                           "overlap_chain"):
            produced = block
        else:  # pragma: no cover - exhaustive over KINDS
            produced = None
        dist[step.node.id] = produced
    return dist


def elide_redistributions(plan: Plan) -> None:
    """Remove provably redundant redistribute steps (in place).

    Two rules:

    1. *chain collapse* — in ``redistribute(d1) -> redistribute(d2)``
       the intermediate layout is never observed when the first node
       has no other consumer, is not a root, and its handle is dead;
       the second step consumes the original input directly.  Eagerly
       this chain would move data twice (possibly through the host);
       deferred it moves once or not at all.
    2. *no-op elision* — a redistribute whose target equals the layout
       its input already has (same layout, same combine) does nothing.
    """
    # rule 1: collapse chains, innermost first
    changed = True
    while changed:
        changed = False
        consumers = plan.consumers()
        for step in plan.steps:
            if step.kind != "redistribute":
                continue
            inner = step.inputs[0]
            if inner.kind != "redistribute":
                continue
            inner_step = next((s for s in plan.steps if s.node is inner),
                              None)
            if inner_step is None:
                continue
            if inner.id in plan.root_ids or inner.handle_alive:
                continue
            if len(consumers.get(inner.id, ())) != 1:
                continue
            step.inputs[0] = inner_step.inputs[0]
            plan.steps.remove(inner_step)
            plan.stats["redistributions_elided"] += 1
            changed = True
            break

    # rule 2: drop no-ops
    dist = _infer_distributions(plan)
    for step in list(plan.steps):
        if step.kind != "redistribute":
            continue
        if _same_distribution(dist.get(step.inputs[0].id), step.dist):
            _forward_step(plan, step, step.inputs[0])
            plan.stats["redistributions_elided"] += 1
    plan._resync_stats()


def _forward_step(plan: Plan, step: PlanStep, replacement: Node) -> None:
    """Drop *step*, making every consumer read *replacement* instead."""
    plan.steps.remove(step)
    for other in plan.steps:
        other.inputs = [replacement if dep is step.node else dep
                        for dep in other.inputs]
        if any(extra is step.node for extra in other.extras):
            other.extras = tuple(
                replacement if extra is step.node else extra
                for extra in other.extras)
    # a root/live handle still needs this node's value: alias it to the
    # replacement at execution time (a no-op redistribute returns its
    # input vector unchanged, so the values are one and the same)
    if step.node.id in plan.root_ids or step.node.handle_alive:
        plan.aliases.append((step.node, replacement))


# ---------------------------------------------------------------------------
# map-chain fusion
# ---------------------------------------------------------------------------

#: fused skeletons cached across evaluations so re-running the same
#: deferred pipeline reuses one generated source (and therefore hits the
#: context's program cache instead of paying a rebuild every time)
_FUSED_CACHE: dict[tuple, object] = {}


def _cache_key(steps: list[PlanStep]) -> tuple:
    return tuple(
        (type(s.skeleton).__name__, s.skeleton.user.source,
         s.skeleton._ops_override, s.skeleton._bytes_override,
         s.skeleton.scale_factor)
        for s in steps)


def _fused_skeleton(chain: list[PlanStep]):
    key = _cache_key(chain)
    fused = _FUSED_CACHE.get(key)
    if fused is None:
        fused = fuse_chain([s.skeleton for s in chain])
        _FUSED_CACHE[key] = fused
    return fused


def _chain_head_ok(step: PlanStep) -> bool:
    return (step.kind in ("map", "zip")
            and step.skeleton is not None
            and getattr(step.skeleton, "native_fn", None) is None)


def _fusable_link(plan: Plan, step: PlanStep,
                  consumer: PlanStep) -> str | None:
    """May *step*'s result be folded into *consumer* (its only reader)?
    Returns ``None`` when fusable, else a human-readable reason.

    The intermediate must not be demanded by the plan itself: not a
    root, no explicit ``out=`` vector to fill.  A live LazyVector
    handle does NOT block fusion — the handle replays the original
    (unfused) node on access, which is cheap exactly because fusion
    means nobody else needs that value.
    """
    if consumer.kind != "map":
        return f"consumer is {consumer.kind}, not a unary map"
    if consumer.skeleton is None:
        return "consumer has no skeleton"
    if getattr(consumer.skeleton, "native_fn", None) is not None:
        return "consumer uses a native kernel"
    if consumer.inputs[0] is not step.node:
        return "value feeds the consumer only through a secondary edge"
    if any(extra is step.node for extra in consumer.extras):
        return "value is also read as an additional argument"
    if step.node.id in plan.root_ids:
        return "intermediate is demanded (evaluation root)"
    if step.out is not None:
        return "intermediate fills an explicit out= vector"
    return None


def fuse_map_chains(plan: Plan) -> None:
    """Merge maximal linear map/zip chains into fused kernels (in place).

    Chains grow greedily while :func:`fusion_blocker` stays silent, so
    an incompatible boundary (dtype mismatch, duplicate helper names,
    differing scale factors) splits a chain instead of failing it.
    """
    consumers = plan.consumers()
    in_chain: set[int] = set()
    chains: list[list[PlanStep]] = []
    for step in plan.steps:
        if step.node.id in in_chain or not _chain_head_ok(step):
            continue
        chain = [step]
        while True:
            last = chain[-1]
            readers = consumers.get(last.node.id, ())
            if len(readers) != 1:
                break
            nxt = readers[0]
            reason = _fusable_link(plan, last, nxt)
            if reason is None:
                reason = fusion_blocker(
                    [s.skeleton for s in chain] + [nxt.skeleton])
            if reason is not None:
                plan.fusion_blockers.append(
                    (last.label, nxt.label, reason))
                break
            chain.append(nxt)
        if len(chain) > 1:
            chains.append(chain)
            in_chain.update(s.node.id for s in chain)

    for chain in chains:
        try:
            fused = _fused_skeleton(chain)
        except SkelClError:  # pragma: no cover - blocker pre-screens
            continue
        head, last = chain[0], chain[-1]
        last.kind = head.kind
        last.skeleton = fused
        last.inputs = list(head.inputs)
        last.extras = tuple(extra for s in chain for extra in s.extras)
        last.fused_from = tuple(s.node for s in chain)
        for interior in chain[:-1]:
            plan.steps.remove(interior)
        plan.stats["fused_chains"] += 1
        plan.stats["fused_stages"] += len(chain)
    plan._resync_stats()
