"""Cost-model-driven plan rewriting (the query-planner layer).

The peephole passes in :mod:`repro.graph.passes` only fuse linear
map/zip chains and elide redundant redistributions.  This module goes
after the rest of the skeleton algebra — the systematic rewrite-rule
direction of the Lift line of work, but with the virtual-timeline cost
model as the fitness function instead of auto-tuning:

- every rule is a declarative (pattern, guard, apply) triple over plan
  steps; *pattern* matches structure, *guard* proves soundness
  preconditions (consulting effect summaries where writes matter), and
  *apply* produces a rewritten clone of the plan;
- a beam search (width ``REPRO_GRAPH_BEAM``, deterministic
  tie-breaking) explores rule applications, prices every candidate via
  :func:`repro.sched.perf_model.predict_plan`, and keeps the cheapest;
- the winning plan carries full provenance (``PlanStep.rules`` /
  ``rewritten_from``, ``Plan.rewrite_trace``) and is re-proven by the
  plan verifier (PLAN006-009) before anything executes.

Disable with ``REPRO_GRAPH_REWRITE=0`` (the plan is then exactly what
the peephole passes produced).
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import SkelClError
from repro.graph.passes import Plan, PlanStep, _infer_distributions
from repro.skelcl.fusion import (FusedMapReduce, FusedMapScan,
                                 FusedOverlapChain, SplitReduce,
                                 compose_overlap_map, fuse_zip_of_maps,
                                 fusion_blocker)
from repro.skelcl.map_overlap import MapOverlap
from repro.skelcl.map_skeleton import Map
from repro.skelcl.reduce_skeleton import Reduce
from repro.skelcl.scan_skeleton import Scan
from repro.skelcl.zip_skeleton import Zip

#: default beam width; override with REPRO_GRAPH_BEAM
DEFAULT_BEAM_WIDTH = 4

#: maximum rule applications along one search path
MAX_DEPTH = 8


# ---------------------------------------------------------------------------
# shared predicates
# ---------------------------------------------------------------------------

def _untagged(step: PlanStep) -> bool:
    """Rules compose through the search, not by stacking on one step."""
    return not step.rules and not step.fused_from


def _producer(plan: Plan, node) -> PlanStep | None:
    for step in plan.steps:
        if step.node is node:
            return step
    return None


def _sole_consumer(plan: Plan, node, step: PlanStep) -> bool:
    readers = plan.consumers().get(node.id, ())
    return len(readers) == 1 and readers[0] is step


def _writes_extras(skel) -> bool:
    """Effect-summary check: does the kernel write through any
    additional-argument pointer?  Rules that reorder or merge steps
    must not move such writes."""
    for param in skel.extra_params:
        access = skel.user.summary.param_access.get(param.name)
        if access is not None and access.written:
            return True
    return False


def _disjoint_names(a, b) -> str | None:
    seen = {f.name for f in a.user.unit.functions}
    for func in b.user.unit.functions:
        if func.name in seen:
            return f"both sides define {func.name!r}"
    return None


def _demanded(plan: Plan, step: PlanStep) -> bool:
    """The intermediate's value is observable outside the rewrite."""
    return step.node.id in plan.root_ids or step.out is not None


# ---------------------------------------------------------------------------
# the rules
# ---------------------------------------------------------------------------

class Rule:
    """One declarative rewrite: (pattern, guard, apply).

    ``pattern(plan, i)`` returns a match payload (or None) for the step
    at index *i* by structure alone; ``guard(plan, match)`` returns a
    rejection reason (or None) proving the soundness preconditions;
    ``apply(plan, match)`` mutates a *clone* of the plan.  Keeping the
    three separable lets the soundness tests corrupt a guard and watch
    the verifier catch the unsound plan downstream.
    """

    name: str = "?"
    code: str = "?"  # the verifier diagnostic that re-proves this rule

    def pattern(self, plan: Plan, i: int):
        raise NotImplementedError

    def guard(self, plan: Plan, match) -> str | None:
        raise NotImplementedError

    def candidates(self, plan: Plan, ctx):
        for i in range(len(plan.steps)):
            match = self.pattern(plan, i)
            if match is None:
                continue
            if self.guard(plan, match) is not None:
                continue
            yield match

    def apply(self, plan: Plan, match) -> None:
        raise NotImplementedError


class _ComposeRule(Rule):
    """Shared shape: a producer step folded into its sole consumer."""

    producer_kinds: tuple = ()
    consumer_kinds: tuple = ()

    def pattern(self, plan: Plan, i: int):
        step = plan.steps[i]
        if step.kind not in self.consumer_kinds or not _untagged(step):
            return None
        if not step.inputs:
            return None
        prod = _producer(plan, step.inputs[0])
        if prod is None or prod.kind not in self.producer_kinds \
                or not _untagged(prod):
            return None
        return (plan.steps.index(prod), i)

    def _common_guard(self, plan: Plan, prod: PlanStep,
                      cons: PlanStep) -> str | None:
        if not _sole_consumer(plan, prod.node, cons):
            return "intermediate has other consumers"
        if _demanded(plan, prod):
            return "intermediate is demanded (root or out=)"
        return None


class MapReduceRule(_ComposeRule):
    """map ∘ reduce → one fused local-reduction pass per device."""

    name = "map_reduce"
    code = "PLAN006"
    producer_kinds = ("map",)
    consumer_kinds = ("reduce",)

    def guard(self, plan: Plan, match) -> str | None:
        prod, cons = plan.steps[match[0]], plan.steps[match[1]]
        reason = self._common_guard(plan, prod, cons)
        if reason:
            return reason
        m, r = prod.skeleton, cons.skeleton
        if type(r) is not Reduce:
            return "consumer is not a plain Reduce"
        if not isinstance(m, Map) or getattr(m, "native_fn", None):
            return "producer is not a source-level unary map"
        if prod.extras:
            return "map stage has additional arguments"
        if m.scale_factor != 1.0:
            return "map stage has a scale factor"
        if m.out_dtype is None or m.out_dtype != r.elem_dtype:
            return "dtype mismatch between map output and operator"
        if m.user.elementwise is None or r.user.elementwise is None:
            return "no vectorized form for the fused local pass"
        dist = _infer_distributions(plan).get(prod.inputs[0].id)
        if dist is not None and dist.kind not in ("block", "copy",
                                                  "single"):
            return "unsupported input distribution"
        return None

    def apply(self, plan: Plan, match) -> None:
        prod, cons = plan.steps[match[0]], plan.steps[match[1]]
        cons.skeleton = FusedMapReduce(prod.skeleton, cons.skeleton)
        cons.kind = "map_reduce"
        cons.inputs = list(prod.inputs)
        cons.rules = cons.rules + (self.name,)
        cons.rewritten_from = (prod.node, cons.node)
        plan.steps.remove(prod)


class MapScanRule(_ComposeRule):
    """map ∘ scan → the map folded into the local scan pass."""

    name = "map_scan"
    code = "PLAN006"
    producer_kinds = ("map",)
    consumer_kinds = ("scan",)

    def guard(self, plan: Plan, match) -> str | None:
        prod, cons = plan.steps[match[0]], plan.steps[match[1]]
        reason = self._common_guard(plan, prod, cons)
        if reason:
            return reason
        m, s = prod.skeleton, cons.skeleton
        if type(s) is not Scan:
            return "consumer is not a plain Scan"
        if s.exclusive:
            return "exclusive scan shifts its input host-side"
        if not isinstance(m, Map) or getattr(m, "native_fn", None):
            return "producer is not a source-level unary map"
        if prod.extras:
            return "map stage has additional arguments"
        if m.scale_factor != 1.0:
            return "map stage has a scale factor"
        if m.out_dtype is None or m.out_dtype != s.elem_dtype:
            return "dtype mismatch between map output and operator"
        if m.user.elementwise is None or s.user.elementwise is None:
            return "no vectorized form for the fused local pass"
        return None

    def apply(self, plan: Plan, match) -> None:
        prod, cons = plan.steps[match[0]], plan.steps[match[1]]
        cons.skeleton = FusedMapScan(prod.skeleton, cons.skeleton)
        cons.kind = "map_scan"
        cons.inputs = list(prod.inputs)
        cons.rules = cons.rules + (self.name,)
        cons.rewritten_from = (prod.node, cons.node)
        plan.steps.remove(prod)


class OverlapMapRule(_ComposeRule):
    """map_overlap ∘ map → one stencil computing ``g(f(window))``.

    Sound in this direction only: *g* post-processes stencil outputs,
    so the neutral padding *f* sees at the vector edges is unchanged.
    """

    name = "overlap_map"
    code = "PLAN007"
    producer_kinds = ("map_overlap",)
    consumer_kinds = ("map",)

    def guard(self, plan: Plan, match) -> str | None:
        prod, cons = plan.steps[match[0]], plan.steps[match[1]]
        reason = self._common_guard(plan, prod, cons)
        if reason:
            return reason
        ov, m = prod.skeleton, cons.skeleton
        if type(ov) is not MapOverlap:
            return "producer is not a plain MapOverlap"
        if not isinstance(m, Map) or getattr(m, "native_fn", None):
            return "consumer is not a source-level unary map"
        if prod.extras or cons.extras:
            return "additional arguments block stencil composition"
        if m.scale_factor != 1.0:
            return "map stage has a scale factor"
        if m.out_dtype is None or ov.out_dtype != m.in_dtype:
            return "dtype mismatch between stencil output and map input"
        clash = _disjoint_names(ov, m)
        if clash:
            return clash
        return None

    def apply(self, plan: Plan, match) -> None:
        prod, cons = plan.steps[match[0]], plan.steps[match[1]]
        composed = compose_overlap_map(prod.skeleton, cons.skeleton)
        cons.skeleton = composed
        cons.kind = "map_overlap"
        cons.inputs = list(prod.inputs)
        cons.rules = cons.rules + (self.name,)
        cons.rewritten_from = (prod.node, cons.node)
        plan.steps.remove(prod)


class OverlapChainRule(_ComposeRule):
    """stencil ∘ stencil → one halo-merged pass (no host round trip)."""

    name = "overlap_chain"
    code = "PLAN007"
    producer_kinds = ("map_overlap",)
    consumer_kinds = ("map_overlap",)

    def guard(self, plan: Plan, match) -> str | None:
        prod, cons = plan.steps[match[0]], plan.steps[match[1]]
        reason = self._common_guard(plan, prod, cons)
        if reason:
            return reason
        o1, o2 = prod.skeleton, cons.skeleton
        if type(o1) is not MapOverlap or type(o2) is not MapOverlap:
            return "both stages must be plain MapOverlap skeletons"
        if prod.extras or cons.extras:
            return "additional arguments block stencil composition"
        if o1.out_dtype != o2.elem_dtype:
            return "dtype mismatch between the chained stencils"
        return None

    def apply(self, plan: Plan, match) -> None:
        prod, cons = plan.steps[match[0]], plan.steps[match[1]]
        cons.skeleton = FusedOverlapChain(prod.skeleton, cons.skeleton)
        cons.kind = "overlap_chain"
        cons.inputs = list(prod.inputs)
        cons.rules = cons.rules + (self.name,)
        cons.rewritten_from = (prod.node, cons.node)
        plan.steps.remove(prod)


class ZipOfMapsRule(Rule):
    """zip(z)(map(f)(x), y) → zip(z∘f)(x, y): commuting the map into
    the zip exposes one launch and halves the intermediate traffic.
    May apply once per operand."""

    name = "zip_of_maps"
    code = "PLAN006"

    def pattern(self, plan: Plan, i: int):
        step = plan.steps[i]
        if step.kind != "zip" or step.fused_from:
            return None
        if any(r != self.name for r in step.rules):
            return None
        for operand in (0, 1):
            prod = _producer(plan, step.inputs[operand])
            if prod is not None and prod.kind == "map" \
                    and _untagged(prod):
                return (plan.steps.index(prod), i, operand)
        return None

    def guard(self, plan: Plan, match) -> str | None:
        prod, cons = plan.steps[match[0]], plan.steps[match[1]]
        operand = match[2]
        if not _sole_consumer(plan, prod.node, cons):
            return "intermediate has other consumers"
        if _demanded(plan, prod):
            return "intermediate is demanded (root or out=)"
        m, z = prod.skeleton, cons.skeleton
        if not isinstance(z, Zip) or getattr(z, "native_fn", None):
            return "consumer is not a source-level zip"
        if not isinstance(m, Map) or getattr(m, "native_fn", None):
            return "producer is not a source-level unary map"
        if prod.extras:
            return "map stage has additional arguments"
        if _writes_extras(z):
            return "zip writes through an additional argument"
        if m.scale_factor != z.scale_factor:
            return "stages have different scale factors"
        if m.out_dtype is None \
                or m.out_dtype != z.user.element_dtype(operand):
            return "dtype mismatch between map output and zip operand"
        clash = _disjoint_names(m, z)
        if clash:
            return clash
        return None

    def apply(self, plan: Plan, match) -> None:
        prod, cons = plan.steps[match[0]], plan.steps[match[1]]
        operand = match[2]
        cons.skeleton = fuse_zip_of_maps(cons.skeleton, prod.skeleton,
                                         operand)
        cons.inputs[operand] = prod.inputs[0]
        cons.rules = cons.rules + (self.name,)
        prior = cons.rewritten_from or (cons.node,)
        cons.rewritten_from = (prod.node,) + prior
        plan.steps.remove(prod)


class _PushRule(Rule):
    """Shared guards for moving a redistribute across a unary map.

    Element-wise values don't depend on layout, so the *values* are
    untouched; the guards make sure no *layout* anyone can observe
    changes: the vector whose final distribution differs must be a
    plan-internal intermediate (produced here, not a root, handle
    dead), and no pointer extras whose distribution-safety depends on
    the layout may be attached.
    """

    def _layout_guard(self, plan: Plan, map_step: PlanStep,
                      redist_step: PlanStep, shifted) -> str | None:
        m = map_step.skeleton
        if m is None or not isinstance(m, Map):
            return "only unary maps commute with redistribution"
        if map_step.extras:
            return "map has additional arguments (layout-sensitive)"
        if m.out_dtype is None:
            return "void map works by side effect"
        if redist_step.dist is None or redist_step.dist.kind == "copy":
            return "copy distributions carry combine semantics"
        prod = _producer(plan, shifted)
        if prod is None:
            return "shifted vector is not produced by this plan"
        if shifted.id in plan.root_ids or shifted.handle_alive:
            return "shifted vector's layout is observable"
        dist = _infer_distributions(plan).get(shifted.id)
        if dist is not None and dist.kind not in ("block", "single"):
            return "shifted vector's layout is not block/single"
        return None


class RedistributeSinkRule(_PushRule):
    """redistribute → map becomes map → redistribute: the conversion
    happens on the (post-map) intermediate and the kernel runs on the
    cheaper pre-conversion layout."""

    name = "redistribute_sink"
    code = "PLAN008"

    def pattern(self, plan: Plan, i: int):
        step = plan.steps[i]
        # peephole-fused map chains are still element-wise, so they
        # commute too (fused_from allowed, prior rewrites not)
        if step.kind != "map" or step.rules:
            return None
        prod = _producer(plan, step.inputs[0])
        if prod is None or prod.kind != "redistribute" \
                or not _untagged(prod):
            return None
        return (plan.steps.index(prod), i)

    def guard(self, plan: Plan, match) -> str | None:
        redist, map_step = plan.steps[match[0]], plan.steps[match[1]]
        if not _sole_consumer(plan, redist.node, map_step):
            return "redistributed value has other consumers"
        if redist.node.id in plan.root_ids or redist.node.handle_alive:
            return "redistributed value is demanded"
        return self._layout_guard(plan, map_step, redist,
                                  redist.inputs[0])

    def apply(self, plan: Plan, match) -> None:
        redist, map_step = plan.steps[match[0]], plan.steps[match[1]]
        map_step.inputs[0] = redist.inputs[0]
        map_step.rules = map_step.rules + (self.name,)
        redist.inputs = [map_step.node]
        redist.rules = redist.rules + (self.name,)
        plan.steps.remove(redist)
        plan.steps.insert(plan.steps.index(map_step) + 1, redist)


class RedistributeHoistRule(_PushRule):
    """map → redistribute becomes redistribute → map: the kernel runs
    on the post-conversion layout (e.g. block-parallel instead of
    single-device)."""

    name = "redistribute_hoist"
    code = "PLAN008"

    def pattern(self, plan: Plan, i: int):
        step = plan.steps[i]
        if step.kind != "redistribute" or not _untagged(step):
            return None
        prod = _producer(plan, step.inputs[0])
        if prod is None or prod.kind != "map" or prod.rules:
            return None
        return (plan.steps.index(prod), i)

    def guard(self, plan: Plan, match) -> str | None:
        map_step, redist = plan.steps[match[0]], plan.steps[match[1]]
        if not _sole_consumer(plan, map_step.node, redist):
            return "map value has other consumers"
        if map_step.node.id in plan.root_ids or map_step.out is not None:
            return "map value is demanded"
        if map_step.node.handle_alive:
            return "map value's layout is observable via its handle"
        if redist.node.id in plan.root_ids or redist.node.handle_alive:
            # hoisted, the redistribute node would hold pre-map data
            return "redistributed value is demanded"
        return self._layout_guard(plan, map_step, redist,
                                  map_step.inputs[0])

    def apply(self, plan: Plan, match) -> None:
        map_step, redist = plan.steps[match[0]], plan.steps[match[1]]
        source = map_step.inputs[0]
        redist.inputs = [source]
        redist.rules = redist.rules + (self.name,)
        map_step.inputs[0] = redist.node
        map_step.rules = map_step.rules + (self.name,)
        # the hoisted map's node now carries the final (redistributed)
        # value: rewire everything that read the redistribute node
        for other in plan.steps:
            if other is redist or other is map_step:
                continue
            other.inputs = [map_step.node if dep is redist.node else dep
                            for dep in other.inputs]
            if any(extra is redist.node for extra in other.extras):
                other.extras = tuple(
                    map_step.node if extra is redist.node else extra
                    for extra in other.extras)
        idx = plan.steps.index(map_step)
        plan.steps.remove(redist)
        plan.steps.insert(idx, redist)


class ReduceSplitRule(Rule):
    """Reduce on a single-device vector → spread block-wise first, then
    the per-device partial-combine tree.  Exact element types only —
    re-chunking is an associative regrouping, value-preserving for
    integers/bools but not for floats."""

    name = "reduce_split"
    code = "PLAN009"

    def pattern(self, plan: Plan, i: int):
        step = plan.steps[i]
        if step.kind != "reduce" or not _untagged(step):
            return None
        if type(step.skeleton) is not Reduce:
            return None
        return (i,)

    def guard(self, plan: Plan, match) -> str | None:
        step = plan.steps[match[0]]
        dt = step.skeleton.elem_dtype
        if not (np.issubdtype(dt, np.integer) or dt == np.bool_):
            return "re-chunking is only bitwise for exact dtypes"
        node = step.inputs[0]
        dist = _infer_distributions(plan).get(node.id)
        if dist is None or dist.kind != "single":
            return "input is not single-device"
        return None

    def candidates(self, plan: Plan, ctx):
        if ctx.num_devices < 2:
            return
        yield from super().candidates(plan, ctx)

    def apply(self, plan: Plan, match) -> None:
        step = plan.steps[match[0]]
        step.skeleton = SplitReduce(step.skeleton)
        step.rules = step.rules + (self.name,)


RULES: tuple[Rule, ...] = (
    MapReduceRule(),
    MapScanRule(),
    OverlapChainRule(),
    OverlapMapRule(),
    ZipOfMapsRule(),
    RedistributeSinkRule(),
    RedistributeHoistRule(),
    ReduceSplitRule(),
)

#: rule name -> verifier diagnostic code that re-proves it
RULE_CODES = {rule.name: rule.code for rule in RULES}


# ---------------------------------------------------------------------------
# beam search
# ---------------------------------------------------------------------------

def _signature(plan: Plan) -> tuple:
    return tuple(
        (s.kind, s.node.id, tuple(n.id for n in s.inputs), s.rules,
         tuple(n.id for n in s.rewritten_from))
        for s in plan.steps)


def _cost(plan: Plan, ctx) -> float:
    from repro.sched.perf_model import predict_plan
    return predict_plan(plan, ctx).makespan_s


def optimize_plan(plan: Plan, ctx) -> Plan:
    """Beam-search rule applications; return the cheapest proven shape.

    Deterministic: candidates are ordered by (predicted makespan, rule
    trace), so ties break toward the lexicographically first trace.
    """
    if not plan.steps:
        return plan
    width = int(os.environ.get("REPRO_GRAPH_BEAM",
                               str(DEFAULT_BEAM_WIDTH)) or 0)
    if width < 1:
        return plan

    base_cost = _cost(plan, ctx)
    plan.predicted_makespan_s = base_cost
    plan.baseline_predicted_s = base_cost

    seen = {_signature(plan)}
    best = (base_cost, (), plan)
    frontier = [best]
    for _depth in range(MAX_DEPTH):
        nxt = []
        for cost, trace, cand in frontier:
            for rule in RULES:
                for match in rule.candidates(cand, ctx):
                    twin = cand.clone()
                    try:
                        rule.apply(twin, match)
                    except SkelClError:
                        continue
                    sig = _signature(twin)
                    if sig in seen:
                        continue
                    seen.add(sig)
                    twin._resync_stats()
                    new_trace = trace + (rule.name,)
                    nxt.append((_cost(twin, ctx), new_trace, twin))
        if not nxt:
            break
        nxt.sort(key=lambda item: (item[0], item[1]))
        frontier = nxt[:width]
        if frontier[0][:2] < best[:2]:
            best = frontier[0]

    cost, trace, winner = best
    if winner is plan:
        return plan
    winner.rewrite_trace = trace
    winner.stats["rewrites_applied"] = len(trace)
    winner.predicted_makespan_s = cost
    winner.baseline_predicted_s = base_cost
    winner._resync_stats()
    return winner
