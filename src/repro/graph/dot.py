"""Graphviz DOT rendering of captured task graphs.

``repro graph dump --dot`` uses this to visualize what the optimizer
did: nodes fused into one kernel share a filled cluster-colored box,
nodes absorbed by a rewrite rule are green with the rule name in the
label, pruned dead intermediates are grayed out, and dashed edges mark
additional-argument (non-element) data flow.
"""

from __future__ import annotations

from repro.graph.node import Node


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def graph_to_dot(graph, plan=None) -> str:
    """Render *graph* (optionally annotated with *plan*) as DOT."""
    fused_of: dict[int, int] = {}
    rewritten_of: dict[int, tuple[int, str]] = {}
    executable: set[int] = set()
    if plan is not None:
        for step in plan.steps:
            executable.add(step.node.id)
            for member in step.fused_from:
                fused_of[member.id] = step.node.id
                executable.add(member.id)
            if step.rules:
                rules = ",".join(step.rules)
                for member in step.rewritten_from:
                    rewritten_of[member.id] = (step.node.id, rules)
                    executable.add(member.id)
                rewritten_of.setdefault(step.node.id,
                                        (step.node.id, rules))
        for node, source in plan.aliases:
            executable.add(node.id)

    lines = ["digraph skelcl {", "  rankdir=TB;",
             '  node [shape=box, fontname="monospace", fontsize=10];']
    for node in graph.nodes:
        attrs = [f'label="#{node.id} {_escape(node.label)}"']
        if node.kind == "source" and node.window is not None:
            # stream-window sources render distinctly so template
            # plans are inspectable like batch plans: a cylinder with
            # the window parameters in the label and tooltip
            win = node.window
            params = ", ".join(f"{k}={win[k]}" for k in sorted(win))
            attrs[0] = (f'label="#{node.id} {_escape(node.label)}'
                        f'\\nwindow({win.get("size", "?")}'
                        f'/{win.get("step", "?")})"')
            attrs.append("shape=cylinder")
            attrs.append("style=filled")
            attrs.append('fillcolor="lightyellow"')
            attrs.append(f'tooltip="stream window: {_escape(params)}"')
        elif node.kind == "source":
            attrs.append("shape=ellipse")
        if plan is not None:
            if node.id in rewritten_of:
                target, rules = rewritten_of[node.id]
                attrs[0] = (f'label="#{node.id} {_escape(node.label)}'
                            f'\\n[{_escape(rules)}]"')
                attrs.append("style=filled")
                attrs.append('fillcolor="palegreen"')
                if target != node.id:
                    attrs.append(
                        f'tooltip="rewritten into #{target}"')
                else:
                    attrs.append(f'tooltip="rewritten: {rules}"')
            elif node.id in fused_of:
                attrs.append("style=filled")
                attrs.append('fillcolor="lightblue"')
                attrs.append(
                    f'tooltip="fused into #{fused_of[node.id]}"')
            elif node.kind != "source" and node.id not in executable \
                    and node.value is None:
                attrs.append("style=dashed")
                attrs.append('color="gray"')
                attrs.append('tooltip="pruned/elided"')
            if node.id in plan.root_ids:
                attrs.append("penwidth=2")
        lines.append(f"  n{node.id} [{', '.join(attrs)}];")
    for node in graph.nodes:
        for dep in node.inputs:
            lines.append(f"  n{dep.id} -> n{node.id};")
        for extra in node.extras:
            if isinstance(extra, Node):
                lines.append(
                    f"  n{extra.id} -> n{node.id} [style=dashed];")
    lines.append("}")
    return "\n".join(lines) + "\n"
