"""DAG nodes of the deferred execution graph.

Every skeleton call captured inside a :func:`repro.graph.deferred`
scope becomes one :class:`Node`; concrete :class:`~repro.skelcl.Vector`
inputs enter the graph through ``source`` nodes, and
``LazyVector.set_distribution`` records ``redistribute`` nodes.  Nodes
are append-only and created in data-dependency order, so the graph's
node list is already a topological order.
"""

from __future__ import annotations

import weakref
from typing import Iterator, Optional

#: node kinds a graph may hold
KINDS = ("source", "map", "zip", "reduce", "scan", "map_overlap",
         "redistribute")


class Node:
    """One vertex of a captured task graph."""

    __slots__ = ("id", "kind", "skeleton", "inputs", "extras", "dist",
                 "out", "out_size", "out_dtype", "value", "executed",
                 "handle_ref", "window", "__weakref__")

    def __init__(self, node_id: int, kind: str, skeleton=None,
                 inputs: list["Node"] | None = None,
                 extras: tuple = (), dist=None, out=None,
                 out_size: int | None = None, out_dtype=None) -> None:
        assert kind in KINDS, kind
        self.id = node_id
        self.kind = kind
        #: the eager skeleton object replayed when this node executes
        self.skeleton = skeleton
        self.inputs: list[Node] = list(inputs or [])
        #: raw additional arguments; lazy ones are Node references
        self.extras = extras
        #: target distribution (redistribute nodes)
        self.dist = dist
        #: explicit ``out=`` vector recorded at capture time
        self.out = out
        self.out_size = out_size
        self.out_dtype = out_dtype
        #: materialized result (a Vector), set by execution
        self.value = None
        #: True once the node ran (void nodes produce no value)
        self.executed = False
        #: weak reference to the user-facing LazyVector handle
        self.handle_ref: Optional[weakref.ref] = None
        #: stream-window parameters for source nodes fed by
        #: :mod:`repro.stream` (``{"size", "step", "policy", ...}``);
        #: None for ordinary batch nodes
        self.window: dict | None = None

    # -- structure ---------------------------------------------------------

    def deps(self) -> Iterator["Node"]:
        """Every node this one depends on (inputs + lazy extras)."""
        yield from self.inputs
        for extra in self.extras:
            if isinstance(extra, Node):
                yield extra

    @property
    def effect(self) -> bool:
        """True for nodes that must run even without a consumer: void
        skeleton calls working purely through additional-argument
        writes (the OSEM step-1 form)."""
        return (self.kind in ("map", "zip") and self.skeleton is not None
                and self.skeleton.out_dtype is None)

    @property
    def handle_alive(self) -> bool:
        """True while the user still holds this node's LazyVector."""
        return (self.handle_ref is not None
                and self.handle_ref() is not None)

    # -- display -----------------------------------------------------------

    @property
    def label(self) -> str:
        if self.kind == "source":
            if self.window is not None:
                return f"window[{self.out_size}]"
            return f"source[{self.out_size}]"
        if self.kind == "redistribute":
            return f"redistribute({self.dist!r})"
        name = self.skeleton.user.name if self.skeleton is not None else "?"
        return f"{self.kind}({name})"

    def __repr__(self) -> str:
        state = ("value" if self.value is not None
                 else "executed" if self.executed else "pending")
        return f"<Node #{self.id} {self.label} {state}>"
