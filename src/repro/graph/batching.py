"""Cross-job micro-batching: merge isomorphic pipelines into one plan.

The serving layer (:mod:`repro.serve`) receives many small independent
jobs that run the *same* skeleton pipeline over different inputs.
Launching each alone wastes the devices (tiny NDRanges, per-launch
overhead); this module concatenates the inputs of isomorphic jobs into
one vector, runs the pipeline **once** through the deferred graph
engine (fusion + plan verification included), and splits the output
back per job.

Correctness argument (docs/serving.md): every batchable stage is an
elementwise map, so output element *i* depends only on input element
*i* — concatenation and slicing commute with the computation no matter
how the scheduler splits the batched vector across devices.  The
deferred engine is bitwise-identical to eager execution (PR 2), and
the plan verifier (PR 6) re-proves the fused batched plan before it
runs; ``BatchedRun.verification`` carries that report.

Isomorphism is decided by :func:`pipeline_signature` — a SHA-256 over
the *source text* of every stage plus the input dtype.  Keying by
source hash (never by kernel name) is what keeps tenants isolated:
two tenants submitting kernels that share a name but differ in body
hash differently and are never merged.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import SkelClError


def pipeline_signature(sources: Sequence[str], dtype) -> str:
    """Identity of a pipeline: SHA-256 over stage sources + dtype.

    Jobs may only be merged when their signatures are equal.  The
    kernel *name* deliberately contributes nothing beyond being part
    of the source text itself — identical names with different bodies
    produce different signatures (tenant isolation), and identical
    bodies submitted by different tenants produce the same one
    (cross-tenant batching).
    """
    digest = hashlib.sha256()
    digest.update(np.dtype(dtype).str.encode())
    for source in sources:
        digest.update(b"\x00stage\x00")
        digest.update(source.encode())
    return digest.hexdigest()


@dataclass
class BatchedRun:
    """Result of one batched evaluation."""

    #: per-job output arrays, in submission order
    outputs: list[np.ndarray]
    #: optimizer statistics of the batched plan (``graph.last_stats``)
    plan_stats: dict = field(default_factory=dict)
    #: the plan verifier's AnalysisReport (None only when verification
    #: is disabled via ``REPRO_VERIFY_PLAN=0``)
    verification: object = None
    #: number of pipeline stages fused into single kernels
    fused_stages: int = 0
    #: jobs merged into this launch
    jobs: int = 0
    #: total elements across the batch
    items: int = 0


def merge_inputs(arrays: Sequence[np.ndarray]) -> tuple[np.ndarray,
                                                        list[int]]:
    """Concatenate job inputs; returns (batched array, per-job sizes).

    Raises :class:`SkelClError` on dtype or dimensionality mismatch —
    callers group by :func:`pipeline_signature` first, so a mismatch
    here is a batcher bug, not user error.
    """
    if not arrays:
        raise SkelClError("cannot batch zero jobs")
    first = arrays[0]
    for arr in arrays[1:]:
        if arr.dtype != first.dtype:
            raise SkelClError(
                f"batched jobs disagree on dtype: {arr.dtype} vs "
                f"{first.dtype}")
        if arr.ndim != 1 or first.ndim != 1:
            raise SkelClError("only 1-D vector jobs can be batched")
    sizes = [int(a.shape[0]) for a in arrays]
    return np.concatenate(list(arrays)), sizes


def split_outputs(batched: np.ndarray,
                  sizes: Sequence[int]) -> list[np.ndarray]:
    """Slice a batched output back into per-job arrays (copies, so a
    tenant's result never aliases another tenant's memory)."""
    if int(batched.shape[0]) != sum(sizes):
        raise SkelClError(
            f"batched output has {batched.shape[0]} elements, jobs "
            f"claim {sum(sizes)}")
    outputs = []
    offset = 0
    for size in sizes:
        outputs.append(batched[offset:offset + size].copy())
        offset += size
    return outputs


def run_batched(ctx, skeletons: Sequence, arrays: Sequence[np.ndarray],
                adaptive: bool = False,
                weight_store=None) -> BatchedRun:
    """Run one pipeline over the concatenation of many job inputs.

    Args:
        ctx: the :class:`SkelCLContext` to execute on (the serve
            engine owns a private one; the global default is never
            touched).
        skeletons: the pipeline's stages, applied in order.  Each must
            be a unary skeleton (Map) — the elementwise property is
            what makes batching sound.
        arrays: one 1-D input per job, all the same dtype.
        adaptive: forwarders to the deferred engine's adaptive
            scheduling.
        weight_store: persistent per-kernel weights
            (:class:`repro.sched.WeightStore`).

    Returns:
        :class:`BatchedRun` with per-job outputs in input order.
    """
    from repro.graph.capture import deferred
    from repro.skelcl.vector import Vector

    batched_in, sizes = merge_inputs(arrays)
    with deferred(context=ctx, adaptive=adaptive,
                  weight_store=weight_store) as graph:
        vec = Vector(batched_in, context=ctx)
        for skeleton in skeletons:
            vec = skeleton(vec)
    out = vec.to_numpy()
    stats = dict(graph.last_stats)
    return BatchedRun(outputs=split_outputs(out, sizes),
                      plan_stats=stats,
                      verification=graph.last_verification,
                      fused_stages=int(stats.get("fused_stages", 0)),
                      jobs=len(arrays),
                      items=int(batched_in.shape[0]))
