"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``devices`` — show the simulated platform's devices;
- ``saxpy`` — run the paper's Listing 1 end to end;
- ``mandelbrot`` — render the set (text, or a PGM image file);
- ``osem`` — run a reconstruction with any of the four
  implementations and report image-quality metrics plus the
  virtual-time phase breakdown;
- ``fig4b`` — regenerate the paper's headline runtime comparison;
- ``lint`` — run the kernel static analysis over a dialect source
  file and print diagnostics (text or JSON); ``--engine-report``
  instead prints which execution engine (batch or per-item) each
  kernel gets and every blocker behind a per-item fallback;
- ``cache stats`` / ``cache clear`` — inspect or empty the on-disk
  kernel compile cache;
- ``graph dump`` — run a map pipeline through the deferred execution
  engine, report optimizer statistics and the eager-vs-deferred
  makespans, optionally writing the DAG (``--dot``) or the virtual
  timeline (``--trace``, chrome://tracing format);
- ``profile`` — run a workload and print per-resource utilization and
  the phase breakdown, optionally exporting a Chrome trace.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_devices(args) -> int:
    from repro import ocl
    system = ocl.System(num_gpus=args.gpus, cpu_device=args.cpu)
    platform = ocl.Platform(system)
    print(f"{platform.name} ({platform.vendor})")
    for device in platform.get_devices():
        spec = device.spec
        print(f"  [{device.id}] {spec.name} ({spec.device_type}): "
              f"{spec.compute_units} CUs @ {spec.clock_mhz:.0f} MHz, "
              f"{spec.global_mem_bytes // 1024 ** 2} MiB, "
              f"link {spec.link_bandwidth_gbs} GB/s")
    return 0


def _cmd_saxpy(args) -> int:
    from repro import skelcl
    skelcl.init(num_gpus=args.gpus)
    saxpy = skelcl.Zip(
        "float func(float x, float y, float a) { return a*x+y; }")
    rng = np.random.default_rng(0)
    x = rng.random(args.size).astype(np.float32)
    y = rng.random(args.size).astype(np.float32)
    result = saxpy(skelcl.Vector(x), skelcl.Vector(y), args.alpha)
    out = result.to_numpy()
    error = np.abs(out - (np.float32(args.alpha) * x + y)).max()
    ctx = skelcl.get_context()
    print(f"saxpy over {args.size} elements on {args.gpus} GPU(s): "
          f"max |error| = {error}, virtual time = "
          f"{ctx.system.timeline.now() * 1e3:.3f} ms")
    return 0 if error < 1e-5 else 1


def _cmd_mandelbrot(args) -> int:
    from repro import skelcl
    from repro.apps import mandelbrot as mb
    view = mb.View(width=args.width, height=args.height,
                   max_iter=args.max_iter)
    ctx = skelcl.init(num_gpus=args.gpus)
    image = mb.mandelbrot_skelcl(ctx, view)
    if args.output:
        _write_pgm(args.output, image, view.max_iter)
        print(f"wrote {args.output} ({args.width}x{args.height})")
    else:
        shades = " .:-=+*#%@"
        for row in image:
            line = "".join(
                shades[min(int(v / view.max_iter * (len(shades) - 1)),
                           len(shades) - 1)] for v in row)
            print(line)
    return 0


def _write_pgm(path: str, image: np.ndarray, max_value: int) -> None:
    scaled = (image.astype(np.float64) / max_value * 255).astype(np.uint8)
    with open(path, "wb") as fh:
        fh.write(f"P5\n{image.shape[1]} {image.shape[0]}\n255\n"
                 .encode())
        fh.write(scaled.tobytes())


def _cmd_osem(args) -> int:
    from repro import ocl, skelcl
    from repro.apps import osem
    from repro.apps.osem import cuda_impl, opencl_impl
    from repro.apps.osem.metrics import contrast_recovery, rmse

    geometry = osem.ScannerGeometry(args.grid, args.grid, args.grid)
    activity = osem.cylinder_phantom(geometry, hot_spheres=2,
                                     seed=args.seed)
    events = osem.generate_events(geometry, activity, args.events,
                                  seed=args.seed + 1)
    subsets = osem.split_subsets(events, args.subsets)
    print(f"{args.impl} OSEM: grid {geometry.shape}, "
          f"{args.events} events, {args.subsets} subsets, "
          f"{args.iterations} iteration(s), {args.gpus} GPU(s)")

    if args.impl == "reference":
        volume = osem.osem_reconstruct(geometry, subsets,
                                       num_iterations=args.iterations)
        timeline = None
    elif args.impl == "skelcl":
        ctx = skelcl.init(num_gpus=args.gpus)
        impl = osem.SkelCLOsem(ctx, geometry)
        volume = impl.reconstruct(subsets,
                                  num_iterations=args.iterations)
        timeline = ctx.system.timeline
    elif args.impl == "opencl":
        system = ocl.System(num_gpus=args.gpus)
        volume = opencl_impl.reconstruct(
            system, geometry, subsets, num_iterations=args.iterations)
        timeline = system.timeline
    else:  # cuda
        system = ocl.System(num_gpus=args.gpus)
        volume = cuda_impl.reconstruct(
            system, geometry, subsets, num_iterations=args.iterations)
        timeline = system.timeline

    print(f"RMSE vs phantom:    {rmse(volume, activity):.4f}")
    print(f"contrast recovery:  "
          f"{contrast_recovery(volume, activity):.4f}")
    if timeline is not None:
        print(f"virtual time total: {timeline.now():.4f} s")
        from repro.util.profiling import breakdown_report
        print(breakdown_report(timeline))
    return 0


def _cmd_fig4b(args) -> int:
    from repro import ocl, skelcl
    from repro.apps import osem
    from repro.apps.osem import cuda_impl, opencl_impl
    from repro.cuda import CudaRuntime
    from repro.util.tables import format_table

    geometry = osem.ScannerGeometry.paper()
    activity = osem.cylinder_phantom(geometry, hot_spheres=3, seed=42)
    events = osem.generate_events(geometry, activity, args.events_sim,
                                  seed=7)
    scale = args.events_real / args.events_sim
    f0 = np.ones(geometry.image_size)
    rows = []
    for impl in ("SkelCL", "OpenCL", "CUDA"):
        for n in (1, 2, 4):
            if impl == "SkelCL":
                ctx = skelcl.init(num_gpus=n)
                runner = osem.SkelCLOsem(ctx, geometry,
                                         scale_factor=scale)
                f = skelcl.Vector(f0.astype(np.float32), context=ctx)
                runner.run_subset(events, f)
                t0 = ctx.system.host_now()
                runner.run_subset(events, f)
                t = ctx.system.host_now() - t0
            elif impl == "OpenCL":
                system = ocl.System(num_gpus=n)
                opencl_impl.run_subset(system, geometry, events, f0,
                                       scale_factor=scale)
                t0 = system.host_now()
                opencl_impl.run_subset(system, geometry, events, f0,
                                       scale_factor=scale)
                t = system.host_now() - t0
            else:
                system = ocl.System(num_gpus=n)
                runtime = CudaRuntime(system)
                cuda_impl.run_subset(system, geometry, events, f0,
                                     scale_factor=scale,
                                     runtime=runtime)
                t0 = system.host_now()
                cuda_impl.run_subset(system, geometry, events, f0,
                                     scale_factor=scale,
                                     runtime=runtime)
                t = system.host_now() - t0
            rows.append([impl, n, f"{t:.3f}"])
    print(format_table(["implementation", "GPUs", "runtime [virt. s]"],
                       rows,
                       title="Figure 4b — one subset iteration"))
    return 0


def _lint_inputs(raw_paths) -> tuple[list, list]:
    """Resolve lint arguments: files stay files, directories are
    recursed for ``*.cl`` sources."""
    import pathlib

    files: list = []
    missing: list = []
    for raw in raw_paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.cl")))
        elif path.exists():
            files.append(path)
        else:
            missing.append(raw)
    return files, missing


def _cmd_lint(args) -> int:
    from repro import errors
    from repro.clc.analysis import (CHECKS, SCHEMA_VERSION,
                                    analyze_source)

    if args.list_checks:
        for check_id, (severity, summary) in CHECKS.items():
            print(f"{check_id}  {str(severity):<7}  {summary}")
        return 0
    if args.graph is not None:
        return _run_plan_audit(args.graph or None, args.json)
    if not args.paths:
        print("lint: a file or directory to analyze is required",
              file=sys.stderr)
        return 2
    files, missing = _lint_inputs(args.paths)
    for raw in missing:
        print(f"lint: {raw}: no such file or directory",
              file=sys.stderr)
    if not files and not missing:
        print("lint: no .cl files found", file=sys.stderr)
        return 2
    if args.engine_report:
        return _engine_report(args, files, bool(missing))

    results: list[tuple[str, object, str | None]] = []
    for path in files:
        try:
            report = analyze_source(path.read_text())
            results.append((str(path), report, None))
        except (errors.ClcError, OSError) as exc:
            results.append((str(path), None, str(exc)))

    failed = bool(missing) or any(err for _, _, err in results)
    errors_found = any(report is not None and report.has_errors
                       for _, report, _ in results)
    if args.json:
        import json
        docs = []
        for filename, report, err in results:
            if err is not None:
                docs.append({"file": filename, "error": err})
            else:
                docs.append(report.to_dict(filename))
        if len(args.paths) == 1 and len(docs) == 1 \
                and not _is_dir(args.paths[0]):
            print(json.dumps(docs[0], indent=2))
        else:
            print(json.dumps({
                "schema_version": SCHEMA_VERSION,
                "files": docs,
                "summary": {
                    "files": len(docs),
                    "errors": sum(d.get("summary", {}).get("errors", 0)
                                  for d in docs),
                    "warnings": sum(
                        d.get("summary", {}).get("warnings", 0)
                        for d in docs),
                    "failed": sum(1 for d in docs if "error" in d)
                              + len(missing),
                }}, indent=2))
    else:
        for filename, report, err in results:
            if err is not None:
                print(f"{filename}: {err}", file=sys.stderr)
            else:
                print(report.format_text(filename))
    if failed:
        return 2
    return 1 if errors_found else 0


def _is_dir(raw: str) -> bool:
    import pathlib
    return pathlib.Path(raw).is_dir()


def _engine_report(args, files, had_missing: bool) -> int:
    """Which execution engine each kernel gets, and why — per tier.

    The JSON document stays schema-v1 compatible: every kernel keeps
    its original ``engine`` / ``blockers`` keys (the batch-vs-per-item
    verdict) and gains a ``tiers`` mapping with one blocker list per
    execution tier plus the auto-selection verdict for this machine.
    """
    from repro import errors
    from repro.clc import native, parse, typecheck
    from repro.clc.analysis import engine_report_tiers

    toolchain = native.find_toolchain()
    toolchain_blockers = native.toolchain_blockers()
    toolchain_doc = {
        "available": toolchain is not None and not toolchain_blockers,
        "cc": toolchain.cc if toolchain else None,
        "id": toolchain.id if toolchain else None,
        "blockers": toolchain_blockers,
    }

    def auto_engine(tiers: dict) -> str:
        if not tiers["native"] and toolchain_doc["available"]:
            return "native"
        if not tiers["batch"]:
            return "batch"
        return "per-item"

    rc = 2 if had_missing else 0
    json_docs = []
    for path in files:
        filename = str(path)
        try:
            unit = parse(path.read_text())
            typecheck(unit)
            report = engine_report_tiers(unit)
        except (errors.ClcError, OSError) as exc:
            if args.json:
                json_docs.append({"file": filename, "error": str(exc)})
            else:
                print(f"{filename}: {exc}", file=sys.stderr)
            rc = 2
            continue
        if args.json:
            json_docs.append(
                {"file": filename,
                 "native_toolchain": toolchain_doc,
                 "kernels": {
                     name: {"engine": ("batch" if not tiers["batch"]
                                       else "per-item"),
                            "blockers": tiers["batch"],
                            "selected": auto_engine(tiers),
                            "tiers": tiers}
                     for name, tiers in report.items()}})
            continue
        if not report:
            print(f"{filename}: no kernels")
            continue
        for name, tiers in report.items():
            prefix = f"{filename}: " if len(files) > 1 else ""
            print(f"{prefix}{name}: {auto_engine(tiers)}")
            for tier in ("native", "batch"):
                blockers = tiers[tier]
                if not blockers:
                    print(f"  {tier}: ok")
                else:
                    print(f"  {tier}: blocked")
                    for blocker in blockers:
                        print(f"    - {blocker}")
            for blocker in toolchain_blockers:
                print(f"  toolchain: {blocker}")
    if args.json:
        import json
        print(json.dumps(json_docs[0] if len(json_docs) == 1
                         else json_docs, indent=2))
    return rc


def _run_plan_audit(script: str | None, json_output: bool,
                    size: int = 1 << 16, stages: int = 4,
                    gpus: int = 2) -> int:
    """Verify every graph plan a script (or the built-in pipeline)
    evaluates; report instead of rejecting (audit mode)."""
    import json

    import repro.skelcl  # noqa: F401 -- break the graph<->skelcl import cycle
    from repro.analysis import check_context_aliasing, sanitizer
    from repro.clc.analysis import SCHEMA_VERSION
    from repro.graph.capture import auditing_plans

    with auditing_plans() as audits:
        if script:
            import runpy
            runpy.run_path(script, run_name="__main__")
        else:
            from repro import skelcl
            rng = np.random.default_rng(0)
            xs = rng.random(size).astype(np.float32)
            pipeline = _pipeline_stages(stages)
            skelcl.init(num_gpus=gpus)
            with skelcl.deferred():
                vec = skelcl.Vector(xs)
                for stage in pipeline:
                    vec = stage(vec)
            vec.to_numpy()

    alias_report = None
    try:
        from repro import skelcl
        ctx = skelcl.get_context()
    except Exception:
        ctx = None
    if ctx is not None:
        alias_report = check_context_aliasing(ctx.context)

    labelled = [(f"plan[{i}]", plan, report)
                for i, (plan, report) in enumerate(audits)]
    errors_found = sum(len(r.errors) for _, _, r in labelled)
    if json_output:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "plans": [dict(report.to_dict(label),
                           steps=len(plan.steps),
                           rewrites=list(
                               getattr(plan, "rewrite_trace", ())),
                           fusion_blockers=[
                               {"producer": producer,
                                "consumer": consumer,
                                "reason": reason}
                               for producer, consumer, reason
                               in getattr(plan, "fusion_blockers", [])])
                      for label, plan, report in labelled],
            "summary": {
                "plans": len(labelled),
                "errors": errors_found,
                "warnings": sum(len(r.warnings)
                                for _, _, r in labelled),
            },
        }
        if alias_report is not None:
            payload["aliasing"] = alias_report.to_dict("<context>")
        if sanitizer.sanitize_enabled():
            payload["sanitizer"] = dict(sanitizer.STATS)
        print(json.dumps(payload, indent=2))
    else:
        for label, plan, report in labelled:
            print(f"{label}: {len(plan.steps)} step(s) — "
                  f"{len(report.errors)} error(s), "
                  f"{len(report.warnings)} warning(s), "
                  f"{len(report.notes)} note(s)")
            for diag in report.sorted():
                print(f"  {diag.format(label)}")
            trace = getattr(plan, "rewrite_trace", ())
            if trace:
                print(f"  rewrites applied: {' -> '.join(trace)}")
            for producer, consumer, reason in getattr(
                    plan, "fusion_blockers", []):
                print(f"  fusion blocked: {producer} -> {consumer}: "
                      f"{reason}")
        if alias_report is not None and alias_report.diagnostics:
            for diag in alias_report.sorted():
                print(f"  {diag.format('<context>')}")
        if sanitizer.sanitize_enabled():
            stats = sanitizer.STATS
            print(f"sanitizer: {stats['launches']} launch(es), "
                  f"{stats['buffers_checked']} buffer(s) checked, "
                  f"{stats['violations']} violation(s)")
        print(f"verified {len(labelled)} plan(s): "
              f"{errors_found} error(s)")
    return 1 if errors_found else 0


def _cmd_verify_plan(args) -> int:
    return _run_plan_audit(args.script, args.json, size=args.size,
                           stages=args.stages, gpus=args.gpus)


def _cmd_cache(args) -> int:
    from repro.clc import cache

    if args.cache_command == "stats":
        info = cache.stats()
        print(f"cache dir:       {info['dir']}")
        print(f"enabled:         {info['enabled']}")
        print(f"dialect version: {info['dialect_version']}")
        for tier, tinfo in info["tiers"].items():
            print(f"{tier + ':':16s} {tinfo['entries']} entries, "
                  f"{tinfo['bytes']} bytes "
                  f"({tinfo['hits']} hits / {tinfo['misses']} misses "
                  "this process)")
        return 0
    if getattr(args, "stale", False):
        from repro.clc import native
        toolchain = native.find_toolchain()
        removed = cache.evict_stale_native(
            toolchain.id if toolchain else None)
        print(f"evicted {removed} stale native artifact"
              f"{'' if removed == 1 else 's'}")
        return 0
    removed = cache.clear(getattr(args, "tier", None))
    print(f"removed {removed} cache entr"
          f"{'y' if removed == 1 else 'ies'}")
    return 0


def _pipeline_stages(count: int):
    """*count* chainable unary maps with distinct function names."""
    from repro import skelcl
    ops = ["return x * 2.0f;", "return x + 3.0f;",
           "return x * x;", "return x - 1.0f;"]
    return [skelcl.Map(f"float stage{i}(float x) "
                       f"{{ {ops[i % len(ops)]} }}")
            for i in range(count)]


def _run_pipeline_eager(stages, xs, gpus: int):
    from repro import skelcl
    ctx = skelcl.init(num_gpus=gpus)
    vec = skelcl.Vector(xs)
    for stage in stages:
        vec = stage(vec)
    return vec.to_numpy(), ctx.system.timeline.now(), ctx


def _cmd_graph_dump(args) -> int:
    from repro import skelcl
    from repro.graph import graph_to_dot
    from repro.util.trace import export_chrome_trace

    rng = np.random.default_rng(0)
    xs = rng.random(args.size).astype(np.float32)
    stages = _pipeline_stages(args.stages)

    eager_out, eager_makespan, _ = _run_pipeline_eager(
        stages, xs, args.gpus)

    ctx = skelcl.init(num_gpus=args.gpus)
    with skelcl.deferred(optimize=not args.no_optimize) as graph:
        vec = skelcl.Vector(xs, context=ctx)
        for stage in stages:
            vec = stage(vec)
    deferred_makespan = ctx.system.timeline.now()
    identical = np.array_equal(eager_out, vec.to_numpy())

    print(f"{args.stages}-stage map pipeline over {args.size} elements "
          f"on {args.gpus} GPU(s)")
    stats = graph.last_stats
    print(f"graph: {stats['nodes']} node(s), {stats['steps']} step(s) "
          f"after optimization")
    print(f"  fused chains:             {stats['fused_chains']} "
          f"({stats['fused_stages']} stages)")
    print(f"  dead intermediates:       {stats['pruned']}")
    print(f"  redistributions elided:   "
          f"{stats['redistributions_elided']}")
    print(f"eager    makespan: {eager_makespan * 1e3:9.3f} ms")
    print(f"deferred makespan: {deferred_makespan * 1e3:9.3f} ms")
    if eager_makespan > 0:
        saved = 1.0 - deferred_makespan / eager_makespan
        print(f"saved:             {saved:9.1%}")
    print(f"results bitwise-identical to eager: {identical}")

    if args.dot:
        dot = graph_to_dot(graph, graph.last_plan)
        if args.dot == "-":
            print(dot, end="")
        else:
            with open(args.dot, "w") as fh:
                fh.write(dot)
            print(f"wrote {args.dot}")
    if args.trace:
        export_chrome_trace(ctx.system.timeline, args.trace)
        print(f"wrote {args.trace} (open in chrome://tracing)")
    return 0 if identical else 1


def _cmd_graph_plan(args) -> int:
    """Run a mixed pipeline through the rewrite planner and report the
    chosen plan: rule trace, predicted vs. actual makespan, verifier
    verdict."""
    from repro import skelcl

    rng = np.random.default_rng(0)
    xs = rng.random(args.size).astype(np.float32)

    stencil = skelcl.MapOverlap(
        "float blur(__global const float* w) "
        "{ return 0.25f*w[0] + 0.5f*w[1] + 0.25f*w[2]; }",
        radius=1, neutral=0.0)
    scale = skelcl.Map("float scale(float x) { return 2.0f * x; }")
    total = skelcl.Reduce("float add(float a, float b) "
                          "{ return a + b; }")

    def evaluate(rewrite: bool):
        skelcl.init(num_gpus=args.gpus)
        ctx = skelcl.get_context()
        # warm-up: compile programs so the measured pass is steady-state
        with skelcl.deferred(rewrite=rewrite):
            r = total(scale(stencil(skelcl.Vector(xs))))
        r.to_numpy()
        t0 = ctx.system.timeline.now()
        with skelcl.deferred(rewrite=rewrite) as graph:
            r = total(scale(stencil(skelcl.Vector(xs))))
        value = r.to_numpy()
        return graph, ctx.system.timeline.now() - t0, value

    graph, actual, value = evaluate(rewrite=not args.no_rewrite)
    plan = graph.last_plan
    report = graph.last_verification

    print(f"map_overlap -> map -> reduce over {args.size} elements on "
          f"{args.gpus} GPU(s)")
    print(f"plan: {len(plan.steps)} step(s), "
          f"{plan.stats['rewrites_applied']} rewrite(s) applied")
    for step in plan.steps:
        print(f"  {step.label}")
    if args.explain:
        print("rule trace: "
              + (" -> ".join(plan.rewrite_trace) or "(no rewrites)"))
        if plan.baseline_predicted_s is not None:
            print(f"predicted makespan (before rewriting): "
                  f"{plan.baseline_predicted_s * 1e3:9.3f} ms")
        if plan.predicted_makespan_s is not None:
            print(f"predicted makespan (chosen plan):      "
                  f"{plan.predicted_makespan_s * 1e3:9.3f} ms")
        print(f"actual makespan (virtual timeline):    "
              f"{actual * 1e3:9.3f} ms")
        if plan.predicted_makespan_s:
            err = abs(actual - plan.predicted_makespan_s) \
                / plan.predicted_makespan_s
            print(f"prediction error:                      "
                  f"{err:9.1%}")
        if plan.fusion_blockers:
            print("fusion blockers:")
            for producer, consumer, reason in plan.fusion_blockers:
                print(f"  {producer} -> {consumer}: {reason}")
    if report is not None:
        print(f"verifier: {len(report.errors)} error(s), "
              f"{len(report.warnings)} warning(s)")
    else:
        print("verifier: not run (REPRO_VERIFY_PLAN disabled)")

    _, baseline_actual, baseline_value = evaluate(rewrite=False)
    identical = np.array_equal(
        np.asarray(value).view(np.uint8),
        np.asarray(baseline_value).view(np.uint8))
    print(f"without rewriting: {baseline_actual * 1e3:9.3f} ms "
          f"(speedup {baseline_actual / actual:.2f}x)" if actual
          else "without rewriting: n/a")
    print(f"results bitwise-identical with rewriting off: {identical}")
    return 0 if identical and (report is None
                               or not report.has_errors) else 1


def _memory_report(ctx) -> str | None:
    """Charged-vs-performed transfer report (``profile --memory``).

    Returns ``None`` when the workload recorded no transfers at all,
    so the caller can exit non-zero instead of printing empty tables.
    """
    from repro import ocl
    from repro.util.tables import format_table

    s = ctx.context.memory_stats.snapshot()
    has_rows = any(row["uploads"] or row["downloads"]
                   for row in ctx.vector_stats())
    if not has_rows and not s["bytes_charged"] and not s["bytes_moved"]:
        return None
    engine = "lazy (zero-copy)" if ocl.lazy_memory_enabled() else "eager"
    lines = [
        f"memory engine: {engine}",
        f"bytes charged: {s['bytes_charged']:>15,}  "
        f"(H2D {s['bytes_charged_h2d']:,} / D2H {s['bytes_charged_d2h']:,}"
        f" / D2D {s['bytes_charged_d2d']:,})",
        f"bytes moved:   {s['bytes_moved']:>15,}  (physically copied)",
        f"copies elided: uploads {s['uploads_elided']}, downloads "
        f"{s['downloads_elided']}, alias adoptions {s['alias_adoptions']}, "
        f"zero fills {s['zero_fills']}",
        f"copy-on-write: {s['cow_copies']} materializations "
        f"({s['cow_bytes']:,} bytes)",
        "",
    ]
    table_rows = []
    for row in ctx.vector_stats():
        if not (row["uploads"] or row["downloads"]):
            continue
        table_rows.append([
            row["vector"], row["size"], row["dtype"],
            row["distribution"], row["uploads"], row["downloads"],
            row["uploads_elided"] + row["downloads_elided"],
            f"{row['bytes_charged']:,}", f"{row['bytes_moved']:,}"])
    lines.append(format_table(
        ["vector", "size", "dtype", "dist", "up", "down", "elided",
         "charged B", "moved B"], table_rows))
    return "\n".join(lines)


def _no_data(report: str) -> int:
    """Uniform non-zero exit for profile reports with nothing to show."""
    print(f"profile: no data for the {report} report — nothing was "
          "recorded by this workload", file=sys.stderr)
    return 1


def _serve_profile(args) -> int:
    """``repro profile --serve``: synthetic multi-tenant load through a
    real server, reporting queue depths and latency percentiles."""
    import json
    import threading
    import time

    from repro.serve import (ServeClient, ServeConfig, serve_in_thread,
                             serve_table)

    sources = ["float scale2(float x) { return x * 2.0f; }",
               "float plus3(float x) { return x + 3.0f; }"]
    config = ServeConfig(num_gpus=args.gpus,
                         micro_batch=not args.no_batch)
    rng = np.random.default_rng(0)
    inputs = {f"tenant-{t:02d}": [
        rng.random(args.job_items).astype(np.float32)
        for _ in range(args.jobs_per_tenant)]
        for t in range(args.tenants)}
    errors: list[str] = []
    started = time.monotonic()
    with serve_in_thread(config=config) as server:
        def run_tenant(tenant: str) -> None:
            try:
                with ServeClient("127.0.0.1", server.port,
                                 tenant) as client:
                    ids = [client.submit(sources, arr)
                           for arr in inputs[tenant]]
                    for job_id in ids:
                        client.result(job_id, timeout_s=60.0)
            except Exception as exc:  # surfaced after the join below
                errors.append(f"{tenant}: {exc}")

        threads = [threading.Thread(target=run_tenant, args=(t,))
                   for t in inputs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        elapsed = time.monotonic() - started
        stats = server.engine.stats
        snapshot = server.engine.snapshot()
        snapshot["sessions"] = server.sessions.snapshot()
    for error in errors:
        print(f"profile: tenant failed: {error}", file=sys.stderr)
    total_jobs = args.tenants * args.jobs_per_tenant
    print(f"serve: {args.tenants} tenant(s) x {args.jobs_per_tenant} "
          f"job(s) x {args.job_items} items, micro-batching "
          f"{'on' if config.micro_batch else 'off'}")
    print(f"  wall time:      {elapsed:.3f} s "
          f"({total_jobs / elapsed:.1f} jobs/s)")
    print(f"  launches:       {stats.launches} "
          f"({stats.batched_jobs} job(s) shared a launch)")
    print(f"  plans verified: {stats.plans_verified}")
    print(f"  p50/p95/p99:    {stats.percentile_ms(50):.2f} / "
          f"{stats.percentile_ms(95):.2f} / "
          f"{stats.percentile_ms(99):.2f} ms")
    print(serve_table(stats))
    if args.report:
        snapshot["wall_s"] = elapsed
        snapshot["jobs_per_s"] = total_jobs / elapsed
        with open(args.report, "w") as fh:
            json.dump(snapshot, fh, indent=2)
        print(f"wrote {args.report}")
    if errors:
        return 1
    return 0 if stats.completed == total_jobs else 1


def _stream_context(gpus: int):
    """A private context for streaming runs (the global default
    context stays untouched, as the serve engine does)."""
    from repro import ocl
    from repro.skelcl.context import SkelCLContext
    system = ocl.System(num_gpus=gpus, name="stream")
    return SkelCLContext(
        [d for d in system.devices if d.device_type == "GPU"])


def _stream_profile(args) -> int:
    """``repro profile --stream``: sustained throughput and window
    latency of the template-cached streaming path vs. the naive
    re-plan-every-window eager baseline."""
    import json
    import time

    from repro import skelcl  # imported first: breaks the
    from repro.stream import StreamPipeline, WindowSpec  # graph cycle

    stages = _pipeline_stages(args.stream_stages)
    rng = np.random.default_rng(0)
    data = rng.random(args.window_items * args.windows) \
        .astype(np.float32)
    chunk = max(1, args.window_items // 2)
    chunks = [data[i:i + chunk] for i in range(0, data.size, chunk)]

    pipe = StreamPipeline(stages, WindowSpec(size=args.window_items),
                          ctx=_stream_context(args.gpus))
    started = time.monotonic()
    stream_results = list(pipe.run(chunks))
    stream_wall = time.monotonic() - started

    # naive baseline: a fresh eager pipeline per window
    eager_ctx = skelcl.init(num_gpus=args.gpus)
    started = time.monotonic()
    eager_results = []
    for w in range(args.windows):
        window = data[w * args.window_items:(w + 1) * args.window_items]
        vec = skelcl.Vector(window, context=eager_ctx)
        for stage in stages:
            vec = stage(vec)
        eager_results.append(vec.to_numpy())
    eager_wall = time.monotonic() - started

    identical = all(
        np.array_equal(r.data, eager_results[r.index])
        for r in stream_results)
    stats = pipe.stats
    speedup = eager_wall / stream_wall if stream_wall > 0 else 0.0
    items_per_s = data.size / stream_wall if stream_wall > 0 else 0.0
    print(f"stream: {args.windows} window(s) x {args.window_items} "
          f"items through {args.stream_stages} stage(s) on "
          f"{args.gpus} GPU(s)")
    print(f"  streaming wall:    {stream_wall:.3f} s "
          f"({items_per_s:.0f} items/s sustained)")
    print(f"  per-window eager:  {eager_wall:.3f} s "
          f"(speedup {speedup:.2f}x)")
    print(f"  plans planned:     {stats.plans_planned} "
          f"(template hits {stats.template_hits}, "
          f"verified {stats.plans_verified})")
    print(f"  p50/p99 window:    {stats.percentile_ms(50):.2f} / "
          f"{stats.percentile_ms(99):.2f} ms")
    print(f"  results bitwise-identical to eager: {identical}")
    predicted = pipe.predicted_cost()
    if predicted is not None:
        print(f"  predicted window latency: "
              f"{predicted.window_latency_s * 1e3:.3f} ms "
              f"({predicted.sustained_items_per_s:.0f} items/s model)")
    if args.report:
        snapshot = pipe.snapshot()
        snapshot.update({
            "stream_wall_s": stream_wall,
            "eager_wall_s": eager_wall,
            "speedup": speedup,
            "sustained_items_per_s": items_per_s,
            "bitwise_identical": identical,
        })
        with open(args.report, "w") as fh:
            json.dump(snapshot, fh, indent=2)
        print(f"wrote {args.report}")
    return 0 if identical and stats.plans_planned == 1 else 1


def _cmd_profile(args) -> int:
    from contextlib import ExitStack

    from repro import skelcl
    from repro.util.profiling import breakdown_report, utilization_report
    from repro.util.trace import export_chrome_trace

    if args.serve:
        return _serve_profile(args)
    if args.stream:
        return _stream_profile(args)

    rng = np.random.default_rng(0)
    with ExitStack() as stack:
        cluster = None
        if args.cluster:
            if args.workload == "osem":
                print("profile: --cluster supports the pipeline and "
                      "saxpy workloads", file=sys.stderr)
                return 2
            from repro.cluster.runtime import local_cluster
            cluster = stack.enter_context(
                local_cluster(num_workers=args.workers))
            gpus = [d for d in cluster.devices
                    if d.device_type == "GPU"]
            skelcl.init(devices=gpus)
        code = _run_profile_workload(args, rng,
                                     cluster_devices=cluster is not None)
        if code:
            return code
        ctx = skelcl.get_context()
        timeline = ctx.system.timeline
        if not timeline.spans:
            return _no_data("utilization")
        print(f"{args.workload} over {args.size} elements on "
              f"{len(ctx.devices)} device(s): virtual makespan "
              f"{timeline.now() * 1e3:.3f} ms")
        print(utilization_report(timeline))
        print(breakdown_report(timeline))
        calibration = getattr(args, "_graph_calibration", None)
        if getattr(args, "graph", False):
            code = _report_graph_calibration(calibration)
            if code:
                return code
        if args.memory:
            report = _memory_report(ctx)
            if report is None:
                return _no_data("memory")
            print(report)
        if args.cluster:
            from repro.cluster.stats import stats_table
            stats = cluster.all_stats()
            if not any(s.frames_sent for s in stats):
                return _no_data("cluster")
            print(stats_table(stats))
        if args.trace:
            export_chrome_trace(timeline, args.trace)
            print(f"wrote {args.trace} (open in chrome://tracing)")
    return 0


def _report_graph_calibration(calibration) -> int:
    """Print predicted-vs-actual plan makespan; warn on drift > 25%."""
    if calibration is None:
        print("graph calibration: only the pipeline workload runs "
              "through the deferred planner", file=sys.stderr)
        return 2
    plan, actual = calibration
    predicted = plan.predicted_makespan_s
    if predicted is None:
        print("graph calibration: no prediction recorded (rewrite "
              "optimizer disabled via REPRO_GRAPH_REWRITE=0?)",
              file=sys.stderr)
        return 0
    print(f"plan cost model: predicted {predicted * 1e3:.3f} ms, "
          f"actual {actual * 1e3:.3f} ms")
    if actual > 0:
        error = abs(predicted - actual) / actual
        print(f"plan cost model: relative error {error:.1%}")
        if error > 0.25:
            print(f"warning: plan cost model drifted {error:.1%} from "
                  "the virtual timeline (> 25%); rewrite choices may "
                  "be unreliable — recalibrate "
                  "sched/perf_model.py against ocl/timing.py",
                  file=sys.stderr)
    return 0


def _run_profile_workload(args, rng, cluster_devices: bool = False) -> int:
    """Execute the selected workload on the current/initialized context."""
    from repro import skelcl

    def init_ctx():
        # --cluster already initialized SkelCL on the remote devices
        if not cluster_devices:
            skelcl.init(num_gpus=args.gpus)
        return skelcl.get_context()

    if args.workload == "noop":
        # diagnostic: an empty workload, to inspect the no-data paths
        init_ctx()
        return 0
    if args.workload == "osem":
        from repro.apps import osem
        geometry = osem.ScannerGeometry(24, 24, 24)
        activity = osem.cylinder_phantom(geometry, hot_spheres=2, seed=0)
        events = osem.generate_events(geometry, activity, args.size,
                                      seed=1)
        ctx = init_ctx()
        impl = osem.SkelCLOsem(ctx, geometry)
        f = skelcl.Vector(np.ones(geometry.image_size, dtype=np.float32),
                          context=ctx)
        impl.run_subset(events, f)
    elif args.workload == "pipeline":
        xs = rng.random(args.size).astype(np.float32)
        stages = _pipeline_stages(4)
        ctx = init_ctx()
        if cluster_devices:
            # eager over the remote devices; the deferred graph engine
            # is exercised by the local profile path
            vec = skelcl.Vector(xs, context=ctx)
            for stage in stages:
                vec = stage(vec)
        else:
            if getattr(args, "graph", False):
                # warm-up pass: compile programs so the measured
                # evaluation matches the model's warm-cache assumption
                with skelcl.deferred():
                    vec = skelcl.Vector(xs, context=ctx)
                    for stage in stages:
                        vec = stage(vec)
                vec.to_numpy()
            t0 = ctx.system.timeline.now()
            with skelcl.deferred() as graph:
                vec = skelcl.Vector(xs, context=ctx)
                for stage in stages:
                    vec = stage(vec)
            if getattr(args, "graph", False):
                # measure at evaluation end: the prediction covers the
                # plan itself, not the final host gather
                args._graph_calibration = (
                    graph.last_plan, ctx.system.timeline.now() - t0)
        vec.to_numpy()
    else:  # saxpy
        init_ctx()
        saxpy = skelcl.Zip(
            "float func(float x, float y, float a) { return a*x+y; }")
        x = rng.random(args.size).astype(np.float32)
        y = rng.random(args.size).astype(np.float32)
        saxpy(skelcl.Vector(x), skelcl.Vector(y),
              np.float32(2.5)).to_numpy()
    return 0


def _cmd_cluster_serve(args) -> int:
    from repro.cluster import worker
    return worker.Worker(rank=args.rank, num_gpus=args.gpus,
                         gpu_spec=args.gpu_spec, seed=args.seed,
                         verbose=args.verbose).serve(args.host, args.port)


def _cmd_cluster_run(args) -> int:
    from repro.cluster.corpus import (corpus_mismatches, reference_corpus,
                                      run_skeleton_corpus)
    from repro.cluster.runtime import local_cluster
    from repro.cluster.stats import stats_table
    from repro import skelcl

    with local_cluster(num_workers=args.workers,
                       gpus_per_worker=args.gpus_per_worker,
                       seed=args.seed) as cluster:
        gpus = [d for d in cluster.devices if d.device_type == "GPU"]
        print(f"cluster up: {len(cluster.handles)} worker(s), "
              f"{len(gpus)} GPU device(s)")
        skelcl.init(devices=gpus)
        try:
            results = run_skeleton_corpus(args.size, args.seed)
        finally:
            skelcl.terminate()
        expected = reference_corpus(len(gpus), args.size, args.seed)
        mismatches = corpus_mismatches(results, expected)
        alive = [h.rank for h in cluster.alive_handles()]
        print(f"corpus complete; workers alive at end: {alive}")
        print(stats_table(cluster.all_stats()))
        from repro.analysis import check_journal_coverage
        coverage = check_journal_coverage(cluster)
        if coverage.diagnostics:
            print(coverage.format_text("<cluster>"))
        else:
            print("redo journal covers every remote buffer")
        if args.report:
            import json
            with open(args.report, "w") as fh:
                json.dump({"workers": args.workers,
                           "size": args.size,
                           "alive_at_end": alive,
                           "mismatches": mismatches,
                           "journal_coverage":
                               coverage.to_dict("<cluster>"),
                           "stats": [s.as_dict()
                                     for s in cluster.all_stats()]},
                          fh, indent=2)
            print(f"wrote {args.report}")
        if coverage.has_errors:
            print("cluster run: redo-journal coverage check failed",
                  file=sys.stderr)
            return 1
        if mismatches:
            print("cluster run: results diverge from the single-process "
                  f"engine: {', '.join(mismatches)}", file=sys.stderr)
            return 1
        print("all corpus results bitwise-identical to the "
              "single-process engine")
    return 0


def _cmd_cluster_status(args) -> int:
    from repro.cluster.client import WorkerConnection
    from repro.errors import ClusterError

    failures = 0
    for index, address in enumerate(args.address):
        host, _, port = address.rpartition(":")
        try:
            conn = WorkerConnection(host or "127.0.0.1", int(port),
                                    rank=index, timeout_s=args.timeout,
                                    retries=0)
            info = conn.ping()
            age = conn.stats.heartbeat_age_s
            conn.close()
            print(f"{address}: rank {info.get('rank')} pid "
                  f"{info.get('pid')} — {info.get('commands', 0)} "
                  f"command(s), {info.get('buffers', 0)} buffer(s), "
                  f"{info.get('programs', 0)} program(s), "
                  f"queue depth {conn.stats.queue_depth}, "
                  f"idle {info.get('idle_s', 0.0):.1f} s, "
                  f"heartbeat age "
                  f"{'never' if age is None else f'{age:.1f} s'}")
        except (ClusterError, OSError, ValueError) as exc:
            print(f"{address}: unreachable ({exc})", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


def _cmd_cluster(args) -> int:
    handlers = {"serve": _cmd_cluster_serve, "run": _cmd_cluster_run,
                "status": _cmd_cluster_status}
    return handlers[args.cluster_command](args)


def _cmd_serve_start(args) -> int:
    """Run the multi-tenant serve server in the foreground."""
    import asyncio

    from repro.serve import ServeConfig, ServeEngine, ServeServer

    config = ServeConfig(num_gpus=args.gpus,
                         micro_batch=not args.no_batch,
                         max_queue_jobs=args.max_queue_jobs,
                         max_total_jobs=args.max_total_jobs,
                         max_batch_jobs=args.max_batch_jobs)
    engine = ServeEngine(config)
    engine.start()
    server = ServeServer(engine, args.host, args.port)

    async def main() -> None:
        port = await server.start()
        print(f"REPRO_SERVE PORT={port}", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        engine.stop()
    return 0


def _cmd_serve_status(args) -> int:
    """One STATS round-trip against a running serve server."""
    from repro.cluster import wire
    from repro.cluster.client import WorkerConnection
    from repro.errors import ReproError
    from repro.util.tables import format_table

    host, _, port = args.address.rpartition(":")
    try:
        conn = WorkerConnection(host or "127.0.0.1", int(port), rank=0,
                                timeout_s=args.timeout, retries=0)
        snapshot, _ = conn.request(wire.Op.STATS)
        conn.close()
    except (ReproError, OSError, ValueError) as exc:
        print(f"{args.address}: unreachable ({exc})", file=sys.stderr)
        return 1
    stats = snapshot.get("stats", {})
    sessions = snapshot.get("sessions", {})
    print(f"{args.address}: {snapshot.get('queued', 0)} job(s) queued, "
          f"{sessions.get('active', 0)} session(s) active "
          f"({sessions.get('dirty_disconnects', 0)} dirty "
          f"disconnect(s))")
    print(f"  launches: {stats.get('launches', 0)}, batched jobs: "
          f"{stats.get('batched_jobs', 0)}, plans verified: "
          f"{stats.get('plans_verified', 0)}")
    print(f"  p50/p95/p99: {stats.get('p50_ms', 0.0):.2f} / "
          f"{stats.get('p95_ms', 0.0):.2f} / "
          f"{stats.get('p99_ms', 0.0):.2f} ms")
    tenants = stats.get("tenants", {})
    if tenants:
        rows = [[name, t.get("submitted", 0), t.get("rejected", 0),
                 t.get("completed", 0), t.get("max_queue_depth", 0),
                 f"{t.get('p99_ms', 0.0):.2f}"]
                for name, t in sorted(tenants.items())]
        print(format_table(
            ["tenant", "submit", "reject", "done", "max queue",
             "p99 ms"], rows))
    return 0


def _cmd_serve(args) -> int:
    handlers = {"start": _cmd_serve_start, "status": _cmd_serve_status}
    return handlers[args.serve_command](args)


def _cmd_stream_run(args) -> int:
    """Run a synthetic windowed stream through the template-cached
    streaming engine and report its economics."""
    from repro import skelcl  # noqa: F401  -- break graph<->skelcl cycle
    from repro.graph import graph_to_dot
    from repro.stream import StreamPipeline, WindowSpec

    stages = _pipeline_stages(args.stages)
    spec = WindowSpec(size=args.window, step=args.step,
                      lateness=args.lateness, policy=args.policy)
    rng = np.random.default_rng(0)
    data = rng.random(args.items).astype(np.float32)
    chunks = [data[i:i + args.chunk]
              for i in range(0, args.items, args.chunk)]

    pipe = StreamPipeline(stages, spec, ctx=_stream_context(args.gpus))
    windows = list(pipe.run(chunks))
    stats = pipe.stats

    step = spec.stride
    kind = "sliding" if spec.sliding else "tumbling"
    print(f"{kind} window({spec.size}/{step}) over {args.items} "
          f"item(s) in {len(chunks)} chunk(s), {args.stages}-stage "
          f"pipeline on {args.gpus} GPU(s)")
    print(f"  windows executed:  {stats.windows_executed} "
          f"({sum(1 for w in windows if w.partial)} partial)")
    print(f"  plans planned:     {stats.plans_planned} "
          f"(template hits {stats.template_hits}, "
          f"verified {stats.plans_verified})")
    print(f"  late elements:     {stats.window.late_dropped} dropped, "
          f"{stats.window.late_reassigned} reassigned")
    print(f"  sustained:         "
          f"{stats.sustained_items_per_s:.0f} items/s")
    print(f"  p50/p99 window:    {stats.percentile_ms(50):.2f} / "
          f"{stats.percentile_ms(99):.2f} ms")
    predicted = pipe.predicted_cost()
    if predicted is not None:
        print(f"  model prediction:  "
              f"{predicted.window_latency_s * 1e3:.3f} ms/window "
              f"({predicted.sustained_items_per_s:.0f} items/s)")
    if args.dot:
        templates = list(pipe.templates._templates.values())
        steady = max(templates, key=lambda t: t.executions)
        dot = graph_to_dot(steady.graph, steady.plan)
        if args.dot == "-":
            print(dot, end="")
        else:
            with open(args.dot, "w") as fh:
                fh.write(dot)
            print(f"wrote {args.dot}")
    return 0


def _cmd_stream_status(args) -> int:
    """Stream sessions and sustained service of a running serve
    server (one STATS round-trip)."""
    from repro.cluster import wire
    from repro.cluster.client import WorkerConnection
    from repro.errors import ReproError
    from repro.util.tables import format_table

    host, _, port = args.address.rpartition(":")
    try:
        conn = WorkerConnection(host or "127.0.0.1", int(port), rank=0,
                                timeout_s=args.timeout, retries=0)
        snapshot, _ = conn.request(wire.Op.STATS)
        conn.close()
    except (ReproError, OSError, ValueError) as exc:
        print(f"{args.address}: unreachable ({exc})", file=sys.stderr)
        return 1
    stats = snapshot.get("stats", {})
    streams = snapshot.get("streams", [])
    print(f"{args.address}: {stats.get('streams_opened', 0)} "
          f"stream(s) opened, {stats.get('stream_windows', 0)} "
          f"window job(s) admitted, {snapshot.get('queued', 0)} "
          "job(s) queued")
    if streams:
        rows = [[s.get("stream", "?"), s.get("tenant", "?"),
                 f"{s['window']['size']}/{s['window']['step']}",
                 s.get("windows", 0), s.get("items_in", 0),
                 s.get("late_dropped", 0) + s.get("late_reassigned", 0),
                 "closed" if s.get("closed") else "open"]
                for s in streams]
        print(format_table(
            ["stream", "tenant", "window", "jobs", "items", "late",
             "state"], rows, title="stream sessions"))
    sustained = snapshot.get("scheduler", {}).get("sustained", {})
    if sustained:
        rows = [[tenant, f"{s.get('items', 0):.0f}",
                 f"{s.get('busy_s', 0.0):.3f}",
                 f"{s.get('items_per_s', 0.0):.1f}"]
                for tenant, s in sorted(sustained.items())]
        print(format_table(
            ["tenant", "items", "busy s", "items/s"], rows,
            title="sustained service"))
    return 0


def _cmd_stream(args) -> int:
    handlers = {"run": _cmd_stream_run, "status": _cmd_stream_status}
    return handlers[args.stream_command](args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SkelCL reproduction (IPDPSW 2012) command line")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("devices", help="list simulated devices")
    p.add_argument("--gpus", type=int, default=4)
    p.add_argument("--cpu", action="store_true")
    p.set_defaults(fn=_cmd_devices)

    p = sub.add_parser("saxpy", help="run the paper's Listing 1")
    p.add_argument("--size", type=int, default=1 << 20)
    p.add_argument("--alpha", type=float, default=2.5)
    p.add_argument("--gpus", type=int, default=2)
    p.set_defaults(fn=_cmd_saxpy)

    p = sub.add_parser("mandelbrot", help="render the Mandelbrot set")
    p.add_argument("--width", type=int, default=72)
    p.add_argument("--height", type=int, default=28)
    p.add_argument("--max-iter", type=int, default=40)
    p.add_argument("--gpus", type=int, default=2)
    p.add_argument("--output", help="write a PGM image instead of text")
    p.set_defaults(fn=_cmd_mandelbrot)

    p = sub.add_parser("osem", help="run a PET reconstruction")
    p.add_argument("--impl", default="skelcl",
                   choices=["skelcl", "opencl", "cuda", "reference"])
    p.add_argument("--grid", type=int, default=12)
    p.add_argument("--events", type=int, default=5000)
    p.add_argument("--subsets", type=int, default=5)
    p.add_argument("--iterations", type=int, default=2)
    p.add_argument("--gpus", type=int, default=4)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=_cmd_osem)

    p = sub.add_parser("fig4b",
                       help="regenerate the paper's runtime figure")
    p.add_argument("--events-sim", type=int, default=1000)
    p.add_argument("--events-real", type=int, default=1_000_000)
    p.set_defaults(fn=_cmd_fig4b)

    p = sub.add_parser(
        "lint", help="static analysis of kernel dialect sources")
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="dialect source files (.cl) or directories "
                        "(recursed for *.cl)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON report "
                        "(docs/analysis.md documents the schema)")
    p.add_argument("--list-checks", action="store_true",
                   help="print the check registry and exit")
    p.add_argument("--engine-report", action="store_true",
                   help="report the execution engine each kernel gets "
                        "(native, batch or per-item) with per-tier "
                        "blockers")
    p.add_argument("--graph", metavar="SCRIPT", nargs="?", const="",
                   default=None,
                   help="audit every deferred graph plan a Python "
                        "script (or, without an argument, the built-in "
                        "pipeline) evaluates: plan verifier verdicts, "
                        "rewrites applied, fusion blockers")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "verify-plan",
        help="re-prove graph-plan optimizations legal (audit mode)")
    p.add_argument("script", nargs="?",
                   help="Python script to audit; defaults to the "
                        "built-in map pipeline benchmark")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON report")
    p.add_argument("--size", type=int, default=1 << 16)
    p.add_argument("--stages", type=int, default=4)
    p.add_argument("--gpus", type=int, default=2)
    p.set_defaults(fn=_cmd_verify_plan)

    p = sub.add_parser(
        "cache", help="inspect the on-disk kernel compile cache")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("stats",
                         help="show per-tier entry count and size")
    clear_p = cache_sub.add_parser(
        "clear", help="delete cache entries")
    clear_p.add_argument("--tier", choices=("frontend", "native"),
                         help="clear only one tier (default: all)")
    clear_p.add_argument("--stale", action="store_true",
                         help="only evict native artifacts built by a "
                              "different C toolchain")
    p.set_defaults(fn=_cmd_cache)

    p = sub.add_parser(
        "graph", help="deferred execution engine inspection")
    graph_sub = p.add_subparsers(dest="graph_command", required=True)
    p = graph_sub.add_parser(
        "dump", help="run a pipeline deferred; dump stats/DAG/trace")
    p.add_argument("--gpus", type=int, default=2)
    p.add_argument("--size", type=int, default=1 << 18)
    p.add_argument("--stages", type=int, default=4)
    p.add_argument("--dot", metavar="FILE",
                   help="write the captured DAG as Graphviz DOT "
                        "('-' for stdout)")
    p.add_argument("--trace", metavar="FILE",
                   help="write the virtual timeline as a Chrome trace")
    p.add_argument("--no-optimize", action="store_true",
                   help="replay the captured calls without fusion or "
                        "elision")
    p.set_defaults(fn=_cmd_graph_dump)
    p = graph_sub.add_parser(
        "plan", help="run the rewrite planner on a mixed "
                     "stencil/map/reduce pipeline and report the "
                     "chosen plan")
    p.add_argument("--gpus", type=int, default=2)
    p.add_argument("--size", type=int, default=1 << 18)
    p.add_argument("--explain", action="store_true",
                   help="show the rule trace and predicted vs. actual "
                        "makespan of the chosen plan")
    p.add_argument("--no-rewrite", action="store_true",
                   help="plan with the rewrite optimizer disabled "
                        "(peephole passes only)")
    p.set_defaults(fn=_cmd_graph_plan)

    p = sub.add_parser(
        "profile", help="utilization and phase breakdown of a workload")
    p.add_argument("--workload", default="pipeline",
                   choices=["pipeline", "saxpy", "osem", "noop"])
    p.add_argument("--size", type=int, default=1 << 18,
                   help="elements (pipeline/saxpy) or events (osem)")
    p.add_argument("--gpus", type=int, default=2)
    p.add_argument("--memory", action="store_true",
                   help="report per-vector transfer counts, elided "
                        "copies, and bytes charged vs. physically moved")
    p.add_argument("--graph", action="store_true",
                   help="compare the plan cost model's predicted "
                        "makespan against the virtual timeline "
                        "(pipeline workload; warns when the relative "
                        "error exceeds 25%%)")
    p.add_argument("--cluster", action="store_true",
                   help="run the workload on a real localhost worker "
                        "cluster and report per-node wire statistics")
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes for --cluster")
    p.add_argument("--serve", action="store_true",
                   help="drive a multi-tenant serve server with "
                        "synthetic clients and report queue-depth and "
                        "latency-percentile metrics")
    p.add_argument("--tenants", type=int, default=8,
                   help="concurrent synthetic tenants for --serve")
    p.add_argument("--jobs-per-tenant", type=int, default=12,
                   help="jobs each synthetic tenant submits (--serve)")
    p.add_argument("--job-items", type=int, default=2048,
                   help="elements per serve job (--serve)")
    p.add_argument("--no-batch", action="store_true",
                   help="disable cross-tenant micro-batching (--serve)")
    p.add_argument("--stream", action="store_true",
                   help="profile the windowed streaming path: "
                        "sustained items/s and window-latency "
                        "percentiles vs. the per-window eager baseline")
    p.add_argument("--window-items", type=int, default=2048,
                   help="elements per stream window (--stream)")
    p.add_argument("--windows", type=int, default=32,
                   help="windows to stream (--stream)")
    p.add_argument("--stream-stages", type=int, default=4,
                   help="pipeline stages for --stream")
    p.add_argument("--report", metavar="FILE",
                   help="write the --serve/--stream snapshot as JSON")
    p.add_argument("--trace", metavar="FILE",
                   help="write the virtual timeline as a Chrome trace")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "cluster", help="multi-process distributed runtime "
                        "(docs/distributed.md)")
    cluster_sub = p.add_subparsers(dest="cluster_command", required=True)
    q = cluster_sub.add_parser(
        "serve", help="run one worker process in the foreground")
    q.add_argument("--host", default="127.0.0.1")
    q.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = ephemeral, announced on stdout)")
    q.add_argument("--rank", type=int, default=0)
    q.add_argument("--gpus", type=int, default=1)
    q.add_argument("--gpu-spec", default="tesla_c1060")
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--verbose", action="store_true")
    q = cluster_sub.add_parser(
        "run", help="boot a localhost cluster, run the skeleton corpus, "
                    "verify against the single-process engine")
    q.add_argument("--workers", type=int, default=2)
    q.add_argument("--gpus-per-worker", type=int, default=1)
    q.add_argument("--size", type=int, default=4096)
    q.add_argument("--seed", type=int, default=42)
    q.add_argument("--report", metavar="FILE",
                   help="write the ClusterStats report as JSON")
    q = cluster_sub.add_parser(
        "status", help="ping running workers by address")
    q.add_argument("address", nargs="+", metavar="HOST:PORT")
    q.add_argument("--timeout", type=float, default=2.0)
    p.set_defaults(fn=_cmd_cluster)

    p = sub.add_parser(
        "serve", help="multi-tenant serving layer (docs/serving.md)")
    serve_sub = p.add_subparsers(dest="serve_command", required=True)
    q = serve_sub.add_parser(
        "start", help="run the serve server in the foreground")
    q.add_argument("--host", default="127.0.0.1")
    q.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = ephemeral, announced on stdout)")
    q.add_argument("--gpus", type=int, default=2)
    q.add_argument("--no-batch", action="store_true",
                   help="disable cross-tenant micro-batching")
    q.add_argument("--max-queue-jobs", type=int, default=64,
                   help="per-tenant admission bound")
    q.add_argument("--max-total-jobs", type=int, default=1024,
                   help="global admission bound")
    q.add_argument("--max-batch-jobs", type=int, default=32,
                   help="jobs merged into one launch at most")
    q = serve_sub.add_parser(
        "status", help="query a running serve server")
    q.add_argument("address", metavar="HOST:PORT")
    q.add_argument("--timeout", type=float, default=2.0)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "stream", help="windowed streaming execution "
                       "(docs/streaming.md)")
    stream_sub = p.add_subparsers(dest="stream_command", required=True)
    q = stream_sub.add_parser(
        "run", help="stream a synthetic source through a windowed "
                    "pipeline and report plan-template economics")
    q.add_argument("--items", type=int, default=1 << 16,
                   help="total elements to stream")
    q.add_argument("--chunk", type=int, default=1024,
                   help="elements per arriving chunk")
    q.add_argument("--window", type=int, default=2048,
                   help="window size (elements)")
    q.add_argument("--step", type=int, default=None,
                   help="window step (default: tumbling)")
    q.add_argument("--lateness", type=int, default=0,
                   help="watermark lag in elements")
    q.add_argument("--policy", default="drop",
                   choices=["drop", "reassign"],
                   help="late-element policy")
    q.add_argument("--stages", type=int, default=4)
    q.add_argument("--gpus", type=int, default=2)
    q.add_argument("--dot", metavar="FILE",
                   help="write the steady-state template graph as "
                        "Graphviz (- for stdout)")
    q = stream_sub.add_parser(
        "status", help="stream sessions of a running serve server")
    q.add_argument("address", metavar="HOST:PORT")
    q.add_argument("--timeout", type=float, default=2.0)
    p.set_defaults(fn=_cmd_stream)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
