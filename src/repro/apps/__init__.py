"""Applications: list-mode OSEM (paper Section IV), Mandelbrot ([6]),
and small BLAS routines (Listing 1)."""
