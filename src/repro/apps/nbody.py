"""N-body gravity — a second domain application for the skeletons.

All-pairs force computation is the textbook use of the
:class:`repro.skelcl.AllPairs` skeleton (left operand row-blocked,
right operand replicated), composed with a zip-style integration step.
The implementation keeps bodies as rows ``[x, y, z, mass]`` and
velocities as rows ``[vx, vy, vz]``; one leapfrog step is

    a_i   = G Σ_j m_j (r_j - r_i) / (|r_j - r_i|² + ε²)^{3/2}
    v_i  += a_i dt ;  r_i += v_i dt

Both a runtime-compiled dialect path and a vectorized native path are
provided and agree; energy diagnostics make conservation testable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SkelClError
from repro.skelcl import AllPairs, Matrix
from repro.skelcl.context import SkelCLContext

#: gravitational constant (natural units) and softening length
G = 1.0
SOFTENING = 1e-2

def _accel_matrix_native(axis: int):
    def native(bi: np.ndarray, bj: np.ndarray) -> np.ndarray:
        delta = bj[None, :, :3] - bi[:, None, :3]
        r2 = (delta ** 2).sum(axis=2) + SOFTENING ** 2
        inv_r3 = 1.0 / (r2 * np.sqrt(r2))
        return (bj[None, :, 3] * delta[:, :, axis] * inv_r3) \
            .astype(np.float32)

    return native


def _component_source(axis: int) -> str:
    """Dialect source for one acceleration component."""
    names = ["accel_x", "accel_y", "accel_z"]
    numerators = ["dx", "dy", "dz"]
    return f"""
float {names[axis]}(__global const float* bi,
                    __global const float* bj, int d) {{
    float dx = bj[0] - bi[0];
    float dy = bj[1] - bi[1];
    float dz = bj[2] - bi[2];
    float r2 = dx * dx + dy * dy + dz * dz + {SOFTENING ** 2:.6f}f;
    float inv_r3 = 1.0f / (r2 * sqrt(r2));
    return bj[3] * {numerators[axis]} * inv_r3;
}}
"""


class NBodySimulation:
    """Leapfrog N-body integrator over the AllPairs skeleton.

    Args:
        ctx: SkelCL context (devices to use).
        bodies: (n, 4) float32 array of [x, y, z, mass].
        velocities: (n, 3) float32 initial velocities (default rest).
        use_native_kernel: opt into the hand-written vectorized
            override; by default the runtime-compiled dialect kernels
            run on the batch execution engine (identical results).
    """

    def __init__(self, ctx: SkelCLContext, bodies: np.ndarray,
                 velocities: np.ndarray | None = None,
                 use_native_kernel: bool = False) -> None:
        bodies = np.asarray(bodies, dtype=np.float32)
        if bodies.ndim != 2 or bodies.shape[1] != 4:
            raise SkelClError("bodies must be an (n, 4) array of "
                              "[x, y, z, mass]")
        self.ctx = ctx
        self.n = bodies.shape[0]
        self.bodies = bodies.copy()
        if velocities is None:
            self.velocities = np.zeros((self.n, 3), dtype=np.float32)
        else:
            self.velocities = np.asarray(velocities,
                                         dtype=np.float32).copy()
            if self.velocities.shape != (self.n, 3):
                raise SkelClError("velocities must be (n, 3)")
        self.skeletons = [
            AllPairs(_component_source(axis),
                     native=(_accel_matrix_native(axis)
                             if use_native_kernel else None))
            for axis in range(3)]

    # -- physics ------------------------------------------------------------

    def accelerations(self) -> np.ndarray:
        """(n, 3) accelerations via three all-pairs executions."""
        m = Matrix(self.bodies, context=self.ctx)
        acc = np.empty((self.n, 3), dtype=np.float64)
        for axis in range(3):
            pair = self.skeletons[axis](m, Matrix(self.bodies,
                                                  context=self.ctx))
            acc[:, axis] = G * pair.to_numpy().sum(axis=1)
        return acc

    def step(self, dt: float) -> None:
        """One leapfrog (kick-drift) step."""
        acc = self.accelerations()
        self.velocities += (acc * dt).astype(np.float32)
        self.bodies[:, :3] += self.velocities * dt

    def run(self, steps: int, dt: float) -> None:
        for _ in range(steps):
            self.step(dt)

    # -- diagnostics ----------------------------------------------------------

    def kinetic_energy(self) -> float:
        v2 = (self.velocities.astype(np.float64) ** 2).sum(axis=1)
        return float(0.5 * (self.bodies[:, 3] * v2).sum())

    def potential_energy(self) -> float:
        pos = self.bodies[:, :3].astype(np.float64)
        mass = self.bodies[:, 3].astype(np.float64)
        delta = pos[None, :, :] - pos[:, None, :]
        r = np.sqrt((delta ** 2).sum(axis=2) + SOFTENING ** 2)
        inv = mass[:, None] * mass[None, :] / r
        np.fill_diagonal(inv, 0.0)
        return float(-0.5 * G * inv.sum())

    def total_energy(self) -> float:
        return self.kinetic_energy() + self.potential_energy()


def plummer_cluster(n: int, seed: int = 0) -> np.ndarray:
    """A simple isotropic cluster: positions ~ N(0, 1), equal masses."""
    rng = np.random.default_rng(seed)
    bodies = np.zeros((n, 4), dtype=np.float32)
    bodies[:, :3] = rng.normal(0.0, 1.0, (n, 3))
    bodies[:, 3] = 1.0 / n
    return bodies


def reference_accelerations(bodies: np.ndarray) -> np.ndarray:
    """Direct numpy computation, for verification."""
    pos = bodies[:, :3].astype(np.float64)
    mass = bodies[:, 3].astype(np.float64)
    delta = pos[None, :, :] - pos[:, None, :]
    r2 = (delta ** 2).sum(axis=2) + SOFTENING ** 2
    inv_r3 = 1.0 / (r2 * np.sqrt(r2))
    return G * (mass[None, :, None] * delta
                * inv_r3[:, :, None]).sum(axis=1)
