"""Mandelbrot set computation — the paper's second benchmark ([6]).

The conclusion reports "similar results about the programming effort
and performance for the Mandelbrot benchmark application": SkelCL far
shorter than OpenCL, slightly shorter than CUDA; performance within a
few percent of OpenCL, CUDA fastest.

A map skeleton over pixel indices, customized with an escape-time user
function.  As with OSEM, the dialect source is the faithful
runtime-compiled path and a numpy-vectorized native override provides
benchmark-scale speed; both produce identical images.
"""

from __future__ import annotations

import numpy as np

from repro.cuda import CudaFunction, CudaRuntime
from repro.ocl import NativeKernelDef, NativeProgram, System
from repro.ocl import api as cl
from repro.skelcl import Map, Vector
from repro.skelcl.context import SkelCLContext

#: escape-time user function for the map skeleton: pixel index ->
#: iteration count, with the view parameters as additional arguments
MANDELBROT_SOURCE = """
int pixel(int idx, int width, int height, float x0, float y0,
          float dx, float dy, int max_iter) {
    int px = idx % width;
    int py = idx / width;
    float cr = x0 + px * dx;
    float ci = y0 + py * dy;
    float zr = 0.0f;
    float zi = 0.0f;
    int iter = 0;
    while (iter < max_iter && zr * zr + zi * zi <= 4.0f) {
        float next_zr = zr * zr - zi * zi + cr;
        zi = 2.0f * zr * zi + ci;
        zr = next_zr;
        iter = iter + 1;
    }
    return iter;
}
"""

#: modelled device cost per pixel: the average pixel of the default
#: view runs a few dozen escape iterations of ~10 flops each
OPS_PER_PIXEL = 400.0


def escape_counts(idx: np.ndarray, width: int, height: int, x0: float,
                  y0: float, dx: float, dy: float,
                  max_iter: int) -> np.ndarray:
    """Vectorized escape-time iteration (identical to the dialect fn)."""
    px = idx % width
    py = idx // width
    # mirror the compiled engines bit for bit: the f32 scalar kernel
    # arguments force c into float32, while the weak float literals of
    # the escape loop promote the iteration itself to float64
    cr = (np.float32(x0) + px.astype(np.float32) * np.float32(dx)) \
        .astype(np.float64)
    ci = (np.float32(y0) + py.astype(np.float32) * np.float32(dy)) \
        .astype(np.float64)
    zr = np.zeros(idx.shape, np.float64)
    zi = np.zeros(idx.shape, np.float64)
    iters = np.zeros(idx.shape, np.int32)
    active = np.ones(idx.shape, bool)
    for _ in range(max_iter):
        zr2 = zr * zr
        zi2 = zi * zi
        escaped = zr2 + zi2 > 4.0
        active &= ~escaped
        if not active.any():
            break
        next_zr = np.where(active, zr2 - zi2 + cr, zr)
        zi = np.where(active, 2.0 * zr * zi + ci, zi)
        zr = next_zr
        iters[active] += 1
    return iters


class View:
    """A rectangular window into the complex plane."""

    def __init__(self, width: int = 640, height: int = 480,
                 x_min: float = -2.5, x_max: float = 1.0,
                 y_min: float = -1.25, y_max: float = 1.25,
                 max_iter: int = 50) -> None:
        if width <= 0 or height <= 0 or max_iter <= 0:
            raise ValueError("invalid mandelbrot view")
        self.width = width
        self.height = height
        self.x0 = np.float32(x_min)
        self.y0 = np.float32(y_min)
        self.dx = np.float32((x_max - x_min) / width)
        self.dy = np.float32((y_max - y_min) / height)
        self.max_iter = max_iter

    @property
    def n_pixels(self) -> int:
        return self.width * self.height

    def scalar_args(self) -> tuple:
        return (np.int32(self.width), np.int32(self.height), self.x0,
                self.y0, self.dx, self.dy, np.int32(self.max_iter))


def mandelbrot_skelcl(ctx: SkelCLContext, view: View,
                      use_native_kernel: bool = False,
                      scale_factor: float = 1.0) -> np.ndarray:
    """Mandelbrot with the SkelCL map skeleton.

    The runtime-compiled dialect kernel is the default: the batch
    execution engine lowers it to whole-NDRange numpy, so the native
    override is only an escape hatch, not a performance requirement.
    """
    native = None
    if use_native_kernel:
        def native(idx, width, height, x0, y0, dx, dy, max_iter,
                   _element_index=None):
            return escape_counts(idx, int(width), int(height), x0, y0,
                                 dx, dy, int(max_iter))

    skeleton = Map(MANDELBROT_SOURCE, native=native,
                   ops_per_item=OPS_PER_PIXEL, scale_factor=scale_factor)
    indices = Vector(np.arange(view.n_pixels, dtype=np.int32),
                     context=ctx)
    out = skeleton(indices, *view.scalar_args())
    return out.to_numpy().reshape(view.height, view.width)


def _native_kerneldef(view: View) -> NativeKernelDef:
    def kernel(args, gsize):
        out, idx = args
        n = gsize[0]
        out[:n] = escape_counts(idx[:n], view.width, view.height,
                                view.x0, view.y0, view.dx, view.dy,
                                view.max_iter)

    return NativeKernelDef(name="mandelbrot", fn=kernel,
                           arg_dtypes=[np.int32, np.int32],
                           ops_per_item=OPS_PER_PIXEL,
                           bytes_per_item=8.0,
                           const_args=frozenset([1]))


def mandelbrot_opencl(system: System, view: View,
                      num_gpus: int | None = None,
                      scale_factor: float = 1.0) -> np.ndarray:
    """Low-level OpenCL-style implementation (explicit everything)."""
    platform = cl.get_platform_ids(system)[0]
    devices = cl.get_device_ids(platform, cl.CL_DEVICE_TYPE_GPU)
    if num_gpus is not None:
        devices = devices[:num_gpus]
    ctx = cl.create_context(devices)
    queues = [cl.create_command_queue(ctx, d) for d in devices]
    program = NativeProgram(ctx, [_native_kerneldef(view)])
    n = view.n_pixels
    indices = np.arange(n, dtype=np.int32)
    result = np.empty(n, np.int32)
    base, extra = divmod(n, len(devices))
    offset = 0
    pending = []
    for i, queue in enumerate(queues):
        length = base + (1 if i < extra else 0)
        if not length:
            continue
        buf_idx = cl.create_buffer(ctx, length * 4)
        cl.enqueue_write_buffer(queue, buf_idx,
                                indices[offset:offset + length])
        buf_out = cl.create_buffer(ctx, length * 4)
        kernel = cl.create_kernel(program, "mandelbrot")
        cl.set_kernel_arg(kernel, 0, buf_out)
        cl.set_kernel_arg(kernel, 1, buf_idx)
        cl.enqueue_nd_range_kernel(queue, kernel, (length,),
                                   scale_factor=scale_factor)
        pending.append((queue, buf_out, offset, length))
        offset += length
    for queue, buf_out, offset, length in pending:
        part = np.empty(length, np.int32)
        cl.enqueue_read_buffer(queue, buf_out, part).wait()
        result[offset:offset + length] = part
    for queue in queues:
        cl.finish(queue)
    return result.reshape(view.height, view.width)


def mandelbrot_cuda(system: System, view: View,
                    num_gpus: int | None = None,
                    scale_factor: float = 1.0,
                    runtime: CudaRuntime | None = None) -> np.ndarray:
    """CUDA-style implementation.

    Pass a shared *runtime* to keep the module loaded across calls
    (steady-state measurement without the one-time load cost).
    """
    if runtime is None:
        runtime = CudaRuntime(system)
    kdef = _native_kerneldef(view)
    functions = runtime.load_module([CudaFunction(
        name="mandelbrot", fn=kdef.fn, arg_dtypes=kdef.arg_dtypes,
        ops_per_item=kdef.ops_per_item,
        bytes_per_item=kdef.bytes_per_item)])
    ndev = num_gpus if num_gpus is not None else runtime.get_device_count()
    n = view.n_pixels
    indices = np.arange(n, dtype=np.int32)
    result = np.empty(n, np.int32)
    base, extra = divmod(n, ndev)
    offset = 0
    parts = []
    for i in range(ndev):
        length = base + (1 if i < extra else 0)
        if not length:
            continue
        runtime.set_device(i)
        d_idx = runtime.malloc(length * 4)
        runtime.memcpy_htod(d_idx, indices[offset:offset + length])
        d_out = runtime.malloc(length * 4)
        runtime.launch(functions["mandelbrot"], grid=(length,),
                       block=(1,), args=[d_out, d_idx],
                       scale_factor=scale_factor)
        parts.append((i, d_out, offset, length))
        offset += length
    for i, d_out, offset, length in parts:
        runtime.set_device(i)
        runtime.device_synchronize()
        part = np.empty(length, np.int32)
        runtime.memcpy_dtoh(part, d_out)
        result[offset:offset + length] = part
    return result.reshape(view.height, view.width)
