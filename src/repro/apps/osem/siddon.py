"""Siddon-style exact ray tracing through the voxel grid.

``compute_path`` (Listing 2, line 7) is realized two ways that produce
the same crossings:

- :func:`trace_paths` — a *batched* numpy implementation (plane-
  crossing parameters, sorted per event) used by the native device
  kernels and the sequential reference; fast enough for thousands of
  events on full-size grids.
- the incremental single-ray tracer inside the dialect OSEM kernel
  (:mod:`repro.apps.osem.kernels`), used by the runtime-compiled
  source path; tests check both agree.

All lengths are in voxel units (the geometry defines the grid in voxel
coordinates), so a path's total length equals the chord length of the
LOR inside the grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.osem.geometry import ScannerGeometry

_EPS = 1e-9


@dataclass
class PathBatch:
    """Padded per-event voxel paths.

    ``indices[i, k]`` is the flattened voxel id of segment *k* of event
    *i* (−1 for padding); ``lengths[i, k]`` its intersection length
    (0 for padding).
    """

    indices: np.ndarray  # (n_events, max_segments) int32
    lengths: np.ndarray  # (n_events, max_segments) float32

    @property
    def n_events(self) -> int:
        return self.indices.shape[0]

    def total_lengths(self) -> np.ndarray:
        return self.lengths.sum(axis=1)


def trace_paths(geometry: ScannerGeometry, events: np.ndarray,
                chunk_size: int = 2048) -> PathBatch:
    """Exact voxel paths for every event (batched Siddon)."""
    n = events.shape[0]
    nx, ny, nz = geometry.shape
    n_segments = nx + ny + nz + 4  # planes + entry/exit bounds - 1
    indices = np.full((n, n_segments), -1, dtype=np.int32)
    lengths = np.zeros((n, n_segments), dtype=np.float32)
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        idx, ln = _trace_chunk(geometry, events[start:stop], n_segments)
        indices[start:stop] = idx
        lengths[start:stop] = ln
    return PathBatch(indices=indices, lengths=lengths)


def _trace_chunk(geometry: ScannerGeometry, events: np.ndarray,
                 n_segments: int) -> tuple[np.ndarray, np.ndarray]:
    nx, ny, nz = geometry.shape
    n = events.shape[0]
    p1 = np.stack([events["x1"], events["y1"], events["z1"]],
                  axis=1).astype(np.float64)
    p2 = np.stack([events["x2"], events["y2"], events["z2"]],
                  axis=1).astype(np.float64)
    d = p2 - p1
    ray_len = np.linalg.norm(d, axis=1)
    degenerate = ray_len < _EPS

    # entry/exit parameters of the grid [0,nx]x[0,ny]x[0,nz]
    amin = np.zeros(n)
    amax = np.ones(n)
    for axis, extent in enumerate((nx, ny, nz)):
        da = d[:, axis]
        pa = p1[:, axis]
        with np.errstate(divide="ignore", invalid="ignore"):
            a0 = (0.0 - pa) / da
            a1 = (extent - pa) / da
        moving = np.abs(da) > _EPS
        lo = np.where(moving, np.minimum(a0, a1), -np.inf)
        hi = np.where(moving, np.maximum(a0, a1), np.inf)
        # rays parallel to this axis never cross its planes; they miss
        # the grid entirely when outside the slab
        outside = ~moving & ((pa < 0.0) | (pa > extent))
        lo = np.where(outside, np.inf, lo)
        hi = np.where(outside, -np.inf, hi)
        amin = np.maximum(amin, lo)
        amax = np.minimum(amax, hi)
    hit = (amax - amin > _EPS) & ~degenerate
    amin = np.where(hit, amin, 0.0)
    amax = np.where(hit, amax, 0.0)

    # all plane-crossing parameters, clipped into [amin, amax]
    columns = []
    for axis, extent in enumerate((nx, ny, nz)):
        planes = np.arange(extent + 1, dtype=np.float64)
        da = d[:, axis:axis + 1]
        pa = p1[:, axis:axis + 1]
        with np.errstate(divide="ignore", invalid="ignore"):
            alpha = (planes[None, :] - pa) / da
        alpha = np.where(np.abs(da) > _EPS, alpha, np.inf)
        columns.append(alpha)
    alphas = np.concatenate(
        columns + [amin[:, None], amax[:, None]], axis=1)
    alphas = np.clip(alphas, amin[:, None], amax[:, None])
    alphas.sort(axis=1)

    seg = np.diff(alphas, axis=1)  # (n, n_segments)
    mid = 0.5 * (alphas[:, :-1] + alphas[:, 1:])
    points = p1[:, None, :] + mid[:, :, None] * d[:, None, :]
    voxel = np.floor(points).astype(np.int64)
    inside = ((voxel[:, :, 0] >= 0) & (voxel[:, :, 0] < nx)
              & (voxel[:, :, 1] >= 0) & (voxel[:, :, 1] < ny)
              & (voxel[:, :, 2] >= 0) & (voxel[:, :, 2] < nz))
    valid = (seg > _EPS) & inside & hit[:, None]
    flat = (voxel[:, :, 0] * ny + voxel[:, :, 1]) * nz + voxel[:, :, 2]
    indices = np.where(valid, flat, -1).astype(np.int32)
    lengths = np.where(valid, seg * ray_len[:, None], 0.0) \
        .astype(np.float32)
    return indices, lengths


def trace_single(geometry: ScannerGeometry, event: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Path of one event as compact (indices, lengths) arrays."""
    batch = trace_paths(geometry, event.reshape(1))
    mask = batch.indices[0] >= 0
    return batch.indices[0][mask], batch.lengths[0][mask]
