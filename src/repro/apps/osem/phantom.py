"""Synthetic activity phantoms.

Substitute for the paper's clinical quadHIDAC data (DESIGN.md §2): a
warm cylinder with hot spherical inserts, the standard test pattern of
emission-tomography literature.  The phantom provides the emission
density that synthetic events are sampled from, and a ground truth to
compare reconstructions against.
"""

from __future__ import annotations

import numpy as np

from repro.apps.osem.geometry import ScannerGeometry


def cylinder_phantom(geometry: ScannerGeometry,
                     background: float = 1.0,
                     hot_spheres: int = 3,
                     hot_activity: float = 8.0,
                     seed: int = 1234) -> np.ndarray:
    """A warm cylinder (axis z) with *hot_spheres* hot inserts.

    Returns a float64 activity volume of the geometry's shape, zero
    outside the cylinder.
    """
    nx, ny, nz = geometry.shape
    x = np.arange(nx)[:, None, None] + 0.5
    y = np.arange(ny)[None, :, None] + 0.5
    z = np.arange(nz)[None, None, :] + 0.5
    cx, cy, _ = geometry.center
    r_cyl = 0.4 * min(nx, ny)
    inside = (x - cx) ** 2 + (y - cy) ** 2 <= r_cyl ** 2
    margin = max(1.0, 0.05 * nz)
    inside = inside & (z >= margin) & (z <= nz - margin)
    activity = np.where(inside, background, 0.0)

    rng = np.random.default_rng(seed)
    r_sphere = max(1.5, 0.1 * min(nx, ny, nz))
    for _ in range(hot_spheres):
        sx = cx + rng.uniform(-0.5, 0.5) * r_cyl
        sy = cy + rng.uniform(-0.5, 0.5) * r_cyl
        sz = rng.uniform(0.25, 0.75) * nz
        dist2 = (x - sx) ** 2 + (y - sy) ** 2 + (z - sz) ** 2
        activity = np.where(dist2 <= r_sphere ** 2, hot_activity,
                            activity)
    return activity


def point_sources_phantom(geometry: ScannerGeometry,
                          points: list[tuple[int, int, int]] | None = None,
                          activity: float = 10.0) -> np.ndarray:
    """A few isolated point sources — useful for sharp unit tests."""
    nx, ny, nz = geometry.shape
    volume = np.zeros(geometry.shape)
    if points is None:
        points = [(nx // 2, ny // 2, nz // 2)]
    for ix, iy, iz in points:
        if not (0 <= ix < nx and 0 <= iy < ny and 0 <= iz < nz):
            raise ValueError(f"point {(ix, iy, iz)} outside grid")
        volume[ix, iy, iz] = activity
    return volume
