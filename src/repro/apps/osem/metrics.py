"""Image-quality metrics for reconstruction studies.

The paper evaluates runtime, not image quality, but a credible OSEM
release needs quality metrics to verify that the algorithm actually
reconstructs: root-mean-square error against the phantom, contrast
recovery of hot inserts, and background variability — the standard
trio of emission-tomography evaluations.
"""

from __future__ import annotations

import numpy as np


def rmse(reconstruction: np.ndarray, truth: np.ndarray,
         normalize: bool = True) -> float:
    """Root-mean-square error, optionally after mean normalization.

    OSEM reconstructs activity up to a global scale (it preserves
    counts, not absolute units), so by default both volumes are scaled
    to unit mean over the truth's support before comparing.
    """
    rec = np.asarray(reconstruction, dtype=np.float64).reshape(-1)
    tru = np.asarray(truth, dtype=np.float64).reshape(-1)
    if rec.shape != tru.shape:
        raise ValueError(f"shape mismatch: {rec.shape} vs {tru.shape}")
    if normalize:
        support = tru > 0
        if not support.any():
            raise ValueError("truth has no support")
        rec = rec / max(rec[support].mean(), 1e-300)
        tru = tru / tru[support].mean()
    return float(np.sqrt(np.mean((rec - tru) ** 2)))


def contrast_recovery(reconstruction: np.ndarray, truth: np.ndarray,
                      hot_threshold: float = 0.5) -> float:
    """Measured hot/background contrast over the true contrast.

    1.0 means the hot inserts are reconstructed at exactly the right
    contrast; early iterations typically under-recover (< 1).
    """
    rec = np.asarray(reconstruction, dtype=np.float64).reshape(-1)
    tru = np.asarray(truth, dtype=np.float64).reshape(-1)
    hot = tru >= hot_threshold * tru.max()
    background = (tru > 0) & ~hot
    if not hot.any() or not background.any():
        raise ValueError("phantom needs hot and background regions")
    true_contrast = tru[hot].mean() / tru[background].mean()
    measured = rec[hot].mean() / max(rec[background].mean(), 1e-300)
    return float(measured / true_contrast)


def background_variability(reconstruction: np.ndarray,
                           truth: np.ndarray,
                           hot_threshold: float = 0.5) -> float:
    """Coefficient of variation in the (uniform) background region."""
    rec = np.asarray(reconstruction, dtype=np.float64).reshape(-1)
    tru = np.asarray(truth, dtype=np.float64).reshape(-1)
    hot = tru >= hot_threshold * tru.max()
    background = (tru > 0) & ~hot
    if not background.any():
        raise ValueError("phantom has no background region")
    mean = rec[background].mean()
    if mean <= 0:
        return float("inf")
    return float(rec[background].std() / mean)
