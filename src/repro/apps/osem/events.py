"""Synthetic list-mode event generation.

Substitute for the paper's recorded quadHIDAC data: emission points are
sampled from an activity phantom, each emitting a positron-annihilation
photon pair in a uniformly random direction; the two detection points
are the intersections of that line with the detector cylinder.  The
result is a list of events (LORs) with exactly the computational
structure of clinical list-mode data.
"""

from __future__ import annotations

import numpy as np

from repro.apps.osem.geometry import EVENT_DTYPE, ScannerGeometry


def sample_emission_points(activity: np.ndarray, n: int,
                           rng: np.random.Generator) -> np.ndarray:
    """Sample *n* emission positions (in voxel units) ∝ activity."""
    flat = activity.reshape(-1).astype(np.float64)
    total = flat.sum()
    if total <= 0:
        raise ValueError("activity phantom is empty")
    probabilities = flat / total
    voxel_ids = rng.choice(flat.size, size=n, p=probabilities)
    nx, ny, nz = activity.shape
    ix, rem = np.divmod(voxel_ids, ny * nz)
    iy, iz = np.divmod(rem, nz)
    jitter = rng.random((3, n))
    return np.stack([ix + jitter[0], iy + jitter[1], iz + jitter[2]],
                    axis=1)


def _cylinder_intersections(points: np.ndarray, directions: np.ndarray,
                            center_xy: np.ndarray,
                            radius: float) -> tuple[np.ndarray, np.ndarray]:
    """Both intersections of lines with an infinite cylinder (axis z).

    Lines are ``p + t * d``; returns the two 3-D intersection points.
    Directions whose xy component vanishes are rejected upstream.
    """
    pxy = points[:, :2] - center_xy
    dxy = directions[:, :2]
    a = np.einsum("ij,ij->i", dxy, dxy)
    b = 2.0 * np.einsum("ij,ij->i", pxy, dxy)
    c = np.einsum("ij,ij->i", pxy, pxy) - radius ** 2
    disc = b * b - 4 * a * c
    sqrt_disc = np.sqrt(np.maximum(disc, 0.0))
    t1 = (-b - sqrt_disc) / (2 * a)
    t2 = (-b + sqrt_disc) / (2 * a)
    p1 = points + t1[:, None] * directions
    p2 = points + t2[:, None] * directions
    return p1, p2


def generate_events(geometry: ScannerGeometry, activity: np.ndarray,
                    n_events: int, seed: int = 0) -> np.ndarray:
    """Generate *n_events* synthetic LOR events.

    Returns a structured array of :data:`EVENT_DTYPE`.  Every returned
    LOR genuinely crosses the detector cylinder; lines almost parallel
    to the z axis (no cylinder crossing) are re-sampled.
    """
    if activity.shape != geometry.shape:
        raise ValueError(
            f"activity shape {activity.shape} != grid {geometry.shape}")
    rng = np.random.default_rng(seed)
    events = np.zeros(n_events, dtype=EVENT_DTYPE)
    filled = 0
    center_xy = geometry.center[:2]
    while filled < n_events:
        n = n_events - filled
        origins = sample_emission_points(activity, n, rng)
        # isotropic directions
        phi = rng.uniform(0, 2 * np.pi, n)
        cos_theta = rng.uniform(-1, 1, n)
        sin_theta = np.sqrt(1 - cos_theta ** 2)
        directions = np.stack([sin_theta * np.cos(phi),
                               sin_theta * np.sin(phi), cos_theta],
                              axis=1)
        ok = np.hypot(directions[:, 0], directions[:, 1]) > 1e-3
        origins, directions = origins[ok], directions[ok]
        if origins.shape[0] == 0:
            continue
        p1, p2 = _cylinder_intersections(origins, directions, center_xy,
                                         geometry.scanner_radius)
        count = origins.shape[0]
        chunk = events[filled:filled + count]
        chunk["x1"], chunk["y1"], chunk["z1"] = p1.T.astype(np.float32)
        chunk["x2"], chunk["y2"], chunk["z2"] = p2.T.astype(np.float32)
        filled += count
    return events


def split_subsets(events: np.ndarray, num_subsets: int) -> list[np.ndarray]:
    """Split events into equally-sized subsets (the paper uses ~100)."""
    if num_subsets <= 0:
        raise ValueError("num_subsets must be positive")
    return [events[i::num_subsets] for i in range(num_subsets)]
