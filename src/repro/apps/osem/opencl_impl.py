"""List-mode OSEM written directly against the (simulated) OpenCL API.

The low-level baseline of the paper's comparison: everything SkelCL
does implicitly is spelled out here — platform/device discovery,
context and queue creation, buffer allocation, explicit uploads and
downloads with offset computations, per-device kernel argument setup,
and the inter-device redistribution of Figure 3 done by hand.

Like the paper's version it follows the hybrid strategy: PSD for
step 1 (events split across GPUs, full f and a private error image c
on each), ISD for step 2 (both images block-partitioned).

Kernels are the pre-built native ones (``clCreateProgramWithBinary``
analogue); the runtime-compiled dialect path is exercised by the
SkelCL implementation and its equivalence tests.
"""

from __future__ import annotations

import numpy as np

from repro.apps.osem import kernels
from repro.apps.osem.geometry import EVENT_DTYPE, ScannerGeometry
from repro.ocl import NativeProgram, System
from repro.ocl import api as cl


def _block_parts(size: int, count: int) -> list[tuple[int, int]]:
    base, extra = divmod(size, count)
    parts = []
    offset = 0
    for i in range(count):
        length = base + (1 if i < extra else 0)
        parts.append((offset, length))
        offset += length
    return parts


def run_subset(system: System, geometry: ScannerGeometry,
               events: np.ndarray, f_host: np.ndarray,
               num_gpus: int | None = None,
               scale_factor: float = 1.0) -> np.ndarray:
    """One subset iteration on ``num_gpus`` GPUs; returns the new f."""
    timeline = system.timeline
    img_size = geometry.image_size
    img_bytes = img_size * 4

    # -- boilerplate: platform, devices, context, queues, kernels -------
    platform = cl.get_platform_ids(system)[0]
    devices = cl.get_device_ids(platform, cl.CL_DEVICE_TYPE_GPU)
    if num_gpus is not None:
        devices = devices[:num_gpus]
    ctx = cl.create_context(devices)
    queues = [cl.create_command_queue(ctx, dev) for dev in devices]
    program = NativeProgram(ctx, [
        kernels.native_compute_c_kerneldef(geometry),
        kernels.native_update_f_kerneldef(),
    ])
    compute_kernels = [cl.create_kernel(program, "osem_compute_c")
                       for _ in devices]
    update_kernels = [cl.create_kernel(program, "osem_update_f")
                      for _ in devices]

    event_parts = _block_parts(events.shape[0], len(devices))
    image_parts = _block_parts(img_size, len(devices))

    # -- 1. upload: event sub-subsets + a full copy of f per GPU --------
    timeline.set_tag("upload")
    f32 = f_host.astype(np.float32)
    buf_events, buf_f, buf_c = [], [], []
    for i, queue in enumerate(queues):
        offset, length = event_parts[i]
        ebuf = cl.create_buffer(ctx, max(length, 1) * EVENT_DTYPE.itemsize)
        if length:
            cl.enqueue_write_buffer(queue, ebuf,
                                    events[offset:offset + length])
        fbuf = cl.create_buffer(ctx, img_bytes)
        cl.enqueue_write_buffer(queue, fbuf, f32)
        cbuf = cl.create_buffer(ctx, img_bytes)
        cl.enqueue_write_buffer(queue, cbuf,
                                np.zeros(img_size, np.float32))
        buf_events.append(ebuf)
        buf_f.append(fbuf)
        buf_c.append(cbuf)

    # -- 2. step 1: per-GPU error images (PSD) ---------------------------
    timeline.set_tag("step1")
    for i, queue in enumerate(queues):
        length = event_parts[i][1]
        if not length:
            continue
        cl.set_kernel_arg(compute_kernels[i], 0, buf_events[i])
        cl.set_kernel_arg(compute_kernels[i], 1, buf_f[i])
        cl.set_kernel_arg(compute_kernels[i], 2, buf_c[i])
        cl.enqueue_nd_range_kernel(queue, compute_kernels[i], (length,),
                                   scale_factor=scale_factor)

    # -- 3. redistribution: download c's, combine, upload block parts ----
    timeline.set_tag("redistribute")
    c_total = np.zeros(img_size, np.float32)
    download = np.empty(img_size, np.float32)
    for i, queue in enumerate(queues):
        cl.enqueue_read_buffer(queue, buf_c[i], download).wait()
        c_total += download
    for i, queue in enumerate(queues):
        offset, length = image_parts[i]
        if not length:
            continue
        cl.enqueue_write_buffer(queue, buf_c[i],
                                c_total[offset:offset + length])
        cl.enqueue_write_buffer(queue, buf_f[i],
                                f32[offset:offset + length])

    # -- 4. step 2: block-partitioned image update (ISD) ------------------
    timeline.set_tag("step2")
    for i, queue in enumerate(queues):
        length = image_parts[i][1]
        if not length:
            continue
        cl.set_kernel_arg(update_kernels[i], 0, buf_f[i])
        cl.set_kernel_arg(update_kernels[i], 1, buf_c[i])
        # the image is always full-size; scale_factor models only the
        # downscaled event count (DESIGN.md section 2)
        cl.enqueue_nd_range_kernel(queue, update_kernels[i], (length,))

    # -- 5. download: gather f parts and merge on the host ----------------
    timeline.set_tag("download")
    f_new = np.empty(img_size, np.float32)
    for i, queue in enumerate(queues):
        offset, length = image_parts[i]
        if not length:
            continue
        part = np.empty(length, np.float32)
        cl.enqueue_read_buffer(queue, buf_f[i], part).wait()
        f_new[offset:offset + length] = part
    for queue in queues:
        cl.finish(queue)
    for buf in buf_events + buf_f + buf_c:
        cl.release_mem_object(buf)
    timeline.set_tag("")
    return f_new.astype(f_host.dtype)


def reconstruct(system: System, geometry: ScannerGeometry,
                subsets: list[np.ndarray], num_iterations: int = 1,
                num_gpus: int | None = None,
                scale_factor: float = 1.0) -> np.ndarray:
    f = np.ones(geometry.image_size)
    for _ in range(num_iterations):
        for events in subsets:
            f = run_subset(system, geometry, events, f,
                           num_gpus=num_gpus, scale_factor=scale_factor)
    return f
