"""Sequential list-mode OSEM — the paper's Listing 2, faithfully.

The algorithm iterates over subsets of events; per subset:

- **step 1** (error image): for each event, compute its LOR's voxel
  path, the forward projection ``fp = Σ f[path[m].coord] * path[m].len``
  and accumulate ``c[path[m].coord] += path[m].len / fp``;
- **step 2** (update): ``f[j] *= c[j]`` wherever ``c[j] > 0``.

Events whose forward projection is zero (LOR entirely outside the
current estimate's support) contribute nothing — the division guard the
production EMRECON code applies as well.
"""

from __future__ import annotations

import numpy as np

from repro.apps.osem.geometry import ScannerGeometry
from repro.apps.osem.siddon import PathBatch, trace_paths

_FP_EPS = 1e-12


def compute_error_image(geometry: ScannerGeometry, events: np.ndarray,
                        f: np.ndarray,
                        paths: PathBatch | None = None) -> np.ndarray:
    """Step 1 of one subset iteration (Listing 2, lines 5-14).

    Vectorized across events but mathematically identical to the
    per-event triple loop of the listing.
    """
    if paths is None:
        paths = trace_paths(geometry, events)
    safe_idx = np.maximum(paths.indices, 0)
    gathered = f[safe_idx] * paths.lengths  # padding has length 0
    fp = gathered.sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_fp = np.where(fp > _FP_EPS, 1.0 / fp, 0.0)
    contributions = paths.lengths * inv_fp[:, None]
    c = np.zeros(geometry.image_size, dtype=f.dtype)
    valid = paths.indices >= 0
    np.add.at(c, paths.indices[valid], contributions[valid])
    return c


def update_image(f: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Step 2 of one subset iteration (Listing 2, lines 15-17)."""
    return np.where(c > 0.0, f * c, f)


def osem_reconstruct(geometry: ScannerGeometry,
                     subsets: list[np.ndarray],
                     num_iterations: int = 1,
                     initial: np.ndarray | None = None) -> np.ndarray:
    """Full sequential list-mode OSEM over all subsets.

    Args:
        subsets: event subsets (see
            :func:`repro.apps.osem.events.split_subsets`).
        num_iterations: passes over all subsets.
        initial: starting estimate; ones if not given (the "initially
            empty" image of the paper — empty meaning uninformative).
    """
    f = (np.ones(geometry.image_size)
         if initial is None else initial.reshape(-1).astype(np.float64))
    for _ in range(num_iterations):
        for events in subsets:
            c = compute_error_image(geometry, events, f)
            f = update_image(f, c)
    return f


def one_subset_iteration(geometry: ScannerGeometry, events: np.ndarray,
                         f: np.ndarray) -> np.ndarray:
    """One subset iteration (the unit Figure 4b measures)."""
    c = compute_error_image(geometry, events, f)
    return update_image(f, c)
