"""The decomposition strategies of paper Section IV-A.

The paper weighs two classical decompositions before choosing a hybrid:

- **PSD** (projection space decomposition): the subset is split into
  sub-subsets processed simultaneously; step 1 parallelizes, but
  step 2 runs on a single processing unit.
- **ISD** (image space decomposition): the reconstruction image is
  partitioned; both steps parallelize, but every GPU processes the
  *whole* subset (it is copied to each GPU) while accumulating only
  its image part — step 1 does not scale.
- **hybrid** (the paper's choice, implemented by the main OSEM
  modules): PSD for step 1, ISD for step 2.

These reference implementations of pure PSD and pure ISD exist to
regenerate that comparison; all three produce identical images.
"""

from __future__ import annotations

import numpy as np

from repro.apps.osem import kernels
from repro.apps.osem.geometry import EVENT_DTYPE, ScannerGeometry
from repro.apps.osem.siddon import trace_paths
from repro.ocl import NativeKernelDef, NativeProgram, System
from repro.ocl import api as cl
from repro.apps.osem.reference import _FP_EPS


def _masked_compute_c_kerneldef(geometry: ScannerGeometry
                                ) -> NativeKernelDef:
    """ISD's step-1 kernel: process all events, accumulate only the
    voxels inside [row_lo, row_hi) of the flattened image."""
    base = kernels.native_compute_c_kerneldef(geometry)

    def kernel(args, gsize):
        events_view, f_view, c_view, lo_view, hi_view = args
        events = events_view[:gsize[0]]
        lo = int(lo_view[0])
        hi = int(hi_view[0])
        paths = trace_paths(geometry, events)
        safe = np.maximum(paths.indices, 0)
        fp = (f_view[safe] * paths.lengths).sum(axis=1,
                                                dtype=np.float64)
        inv = np.where(fp > _FP_EPS, 1.0 / fp, 0.0)
        contrib = (paths.lengths * inv[:, None]).astype(np.float32)
        mask = (paths.indices >= lo) & (paths.indices < hi)
        np.add.at(c_view, paths.indices[mask] - lo, contrib[mask])

    return NativeKernelDef(
        name="osem_compute_c_masked", fn=kernel,
        arg_dtypes=[EVENT_DTYPE, np.float32, np.float32, np.int64,
                    np.int64],
        ops_per_item=base.ops_per_item,
        bytes_per_item=base.bytes_per_item,
        const_args=frozenset([1, 3, 4]))


def _setup(system: System, geometry: ScannerGeometry, num_gpus,
           extra_kernels=()):
    platform = cl.get_platform_ids(system)[0]
    devices = cl.get_device_ids(platform, cl.CL_DEVICE_TYPE_GPU)
    if num_gpus is not None:
        devices = devices[:num_gpus]
    ctx = cl.create_context(devices)
    queues = [cl.create_command_queue(ctx, d) for d in devices]
    program = NativeProgram(ctx, [
        kernels.native_compute_c_kerneldef(geometry),
        kernels.native_update_f_kerneldef(), *extra_kernels])
    return ctx, devices, queues, program


def _block_parts(size: int, count: int) -> list[tuple[int, int]]:
    base, extra = divmod(size, count)
    parts, offset = [], 0
    for i in range(count):
        length = base + (1 if i < extra else 0)
        parts.append((offset, length))
        offset += length
    return parts


def run_subset_psd(system: System, geometry: ScannerGeometry,
                   events: np.ndarray, f_host: np.ndarray,
                   num_gpus: int | None = None,
                   scale_factor: float = 1.0) -> np.ndarray:
    """Pure PSD: step 1 split across GPUs, step 2 on GPU 0 only."""
    timeline = system.timeline
    img_size = geometry.image_size
    ctx, devices, queues, program = _setup(system, geometry, num_gpus)
    f32 = f_host.astype(np.float32)
    event_parts = _block_parts(events.shape[0], len(devices))

    timeline.set_tag("step1")
    buf_f, buf_c = [], []
    for i, queue in enumerate(queues):
        offset, length = event_parts[i]
        ebuf = cl.create_buffer(ctx,
                                max(length, 1) * EVENT_DTYPE.itemsize)
        if length:
            cl.enqueue_write_buffer(queue, ebuf,
                                    events[offset:offset + length])
        fbuf = cl.create_buffer(ctx, img_size * 4)
        cl.enqueue_write_buffer(queue, fbuf, f32)
        cbuf = cl.create_buffer(ctx, img_size * 4)
        cl.enqueue_write_buffer(queue, cbuf,
                                np.zeros(img_size, np.float32))
        if length:
            kernel = cl.create_kernel(program, "osem_compute_c")
            kernel.set_args(ebuf, fbuf, cbuf)
            cl.enqueue_nd_range_kernel(queue, kernel, (length,),
                                       scale_factor=scale_factor)
        buf_f.append(fbuf)
        buf_c.append(cbuf)
        cl.release_mem_object(ebuf)

    timeline.set_tag("combine")
    c_total = np.zeros(img_size, np.float32)
    download = np.empty(img_size, np.float32)
    for i, queue in enumerate(queues):
        cl.enqueue_read_buffer(queue, buf_c[i], download).wait()
        c_total += download

    # step 2 on a single processing unit (the paper's PSD drawback)
    timeline.set_tag("step2")
    cl.enqueue_write_buffer(queues[0], buf_c[0], c_total)
    update = cl.create_kernel(program, "osem_update_f")
    update.set_args(buf_f[0], buf_c[0])
    cl.enqueue_nd_range_kernel(queues[0], update, (img_size,))
    f_new = np.empty(img_size, np.float32)
    cl.enqueue_read_buffer(queues[0], buf_f[0], f_new).wait()
    for buf in buf_f + buf_c:
        cl.release_mem_object(buf)
    timeline.set_tag("")
    return f_new.astype(f_host.dtype)


def run_subset_isd(system: System, geometry: ScannerGeometry,
                   events: np.ndarray, f_host: np.ndarray,
                   num_gpus: int | None = None,
                   scale_factor: float = 1.0) -> np.ndarray:
    """Pure ISD: the whole subset goes to every GPU; each accumulates
    and updates only its block of the image."""
    timeline = system.timeline
    img_size = geometry.image_size
    masked = _masked_compute_c_kerneldef(geometry)
    ctx, devices, queues, program = _setup(system, geometry, num_gpus,
                                           extra_kernels=[masked])
    f32 = f_host.astype(np.float32)
    image_parts = _block_parts(img_size, len(devices))
    n_events = events.shape[0]

    timeline.set_tag("step1")
    buf_cpart, buf_fpart = [], []
    for i, queue in enumerate(queues):
        offset, length = image_parts[i]
        # the whole subset and the whole f on every GPU (ISD's cost)
        ebuf = cl.create_buffer(ctx, n_events * EVENT_DTYPE.itemsize)
        cl.enqueue_write_buffer(queue, ebuf, events)
        fbuf = cl.create_buffer(ctx, img_size * 4)
        cl.enqueue_write_buffer(queue, fbuf, f32)
        cbuf = cl.create_buffer(ctx, max(length, 1) * 4)
        cl.enqueue_write_buffer(queue, cbuf,
                                np.zeros(max(length, 1), np.float32))
        lo = cl.create_buffer(ctx, 8)
        hi = cl.create_buffer(ctx, 8)
        cl.enqueue_write_buffer(queue, lo,
                                np.array([offset], np.int64))
        cl.enqueue_write_buffer(queue, hi,
                                np.array([offset + length], np.int64))
        kernel = cl.create_kernel(program, "osem_compute_c_masked")
        kernel.set_args(ebuf, fbuf, cbuf, lo, hi)
        # every GPU processes ALL events: no event-dimension split
        cl.enqueue_nd_range_kernel(queue, kernel, (n_events,),
                                   scale_factor=scale_factor)
        buf_cpart.append(cbuf)
        # reuse the f buffer's block view for step 2
        fpart = cl.create_buffer(ctx, max(length, 1) * 4)
        cl.enqueue_write_buffer(queue, fpart,
                                f32[offset:offset + length])
        buf_fpart.append(fpart)
        cl.release_mem_object(ebuf)
        cl.release_mem_object(fbuf)
        cl.release_mem_object(lo)
        cl.release_mem_object(hi)

    timeline.set_tag("step2")
    for i, queue in enumerate(queues):
        length = image_parts[i][1]
        if not length:
            continue
        update = cl.create_kernel(program, "osem_update_f")
        update.set_args(buf_fpart[i], buf_cpart[i])
        cl.enqueue_nd_range_kernel(queue, update, (length,))

    timeline.set_tag("download")
    f_new = np.empty(img_size, np.float32)
    for i, queue in enumerate(queues):
        offset, length = image_parts[i]
        if not length:
            continue
        part = np.empty(length, np.float32)
        cl.enqueue_read_buffer(queue, buf_fpart[i], part).wait()
        f_new[offset:offset + length] = part
    for buf in buf_cpart + buf_fpart:
        cl.release_mem_object(buf)
    timeline.set_tag("")
    return f_new.astype(f_host.dtype)
