"""List-mode OSEM in SkelCL — the paper's Listing 3.

One subset iteration runs the five phases of Figure 3 purely through
vector distributions; all data transfers happen implicitly:

1. *upload*       — events block-distributed, f and c copy-distributed
                    (copy(add) for c so divergent error images merge);
2. *step 1*       — map skeleton computes the local error images;
3. *redistribute* — switching f and c to block distribution triggers
                    the download + element-wise combine + re-upload;
4. *step 2*       — zip skeleton updates the reconstruction image;
5. *download*     — implicit: reading f on the host gathers the parts.
"""

from __future__ import annotations

import numpy as np

from repro.apps.osem import kernels
from repro.apps.osem.geometry import EVENT_DTYPE, ScannerGeometry
from repro.skelcl import Distribution, Map, Vector, Zip
from repro.skelcl.context import SkelCLContext


class SkelCLOsem:
    """SkelCL implementation of one or more OSEM subset iterations.

    Args:
        ctx: the SkelCL context (devices to use).
        geometry: scanner/volume geometry.
        use_native_kernel: execute step 1 through the vectorized native
            override instead of interpreting the runtime-compiled
            dialect kernel (identical results; see DESIGN.md §5.2).
        scale_factor: virtual-time scaling for paper-scale workloads.
    """

    def __init__(self, ctx: SkelCLContext, geometry: ScannerGeometry,
                 use_native_kernel: bool = True,
                 scale_factor: float = 1.0) -> None:
        self.ctx = ctx
        self.geometry = geometry
        native = (kernels.native_compute_c(geometry)
                  if use_native_kernel else None)
        self.map_compute_c = Map(
            kernels.COMPUTE_C_SOURCE, native=native,
            ops_per_item=kernels.ops_per_event(geometry),
            bytes_per_item=kernels.bytes_per_event(geometry),
            scale_factor=scale_factor)
        # the image update runs at full size; scale_factor models only
        # the downscaled event count (DESIGN.md section 2)
        self.zip_update = Zip(kernels.UPDATE_F_SOURCE)

    def run_subset(self, events: np.ndarray, f: Vector) -> Vector:
        """One subset iteration (Listing 3, loop body)."""
        geo = self.geometry
        timeline = self.ctx.system.timeline

        # 1. upload: distribute events to devices
        timeline.set_tag("upload")
        events_vec = Vector(events, dtype=EVENT_DTYPE, context=self.ctx)
        events_vec.set_distribution(Distribution.block())
        f.set_distribution(Distribution.copy())
        c = Vector(size=geo.image_size, dtype=np.float32,
                   context=self.ctx)
        c.set_distribution(Distribution.copy(np.add))

        # 2. step 1: compute error image (map skeleton)
        timeline.set_tag("step1")
        self.map_compute_c(events_vec, f, c,
                           np.int32(geo.nx), np.int32(geo.ny),
                           np.int32(geo.nz))
        c.data_on_devices_modified()

        # 3. redistribution: combine error images element-wise (add),
        #    then both images switch to block distribution
        timeline.set_tag("redistribute")
        f.set_distribution(Distribution.block())
        c.set_distribution(Distribution.block())

        # 4. step 2: update reconstruction image (zip skeleton)
        timeline.set_tag("step2")
        self.zip_update(f, c, out=f)

        # 5. download: merging f back is performed implicitly when the
        #    host next reads it
        timeline.set_tag("download")
        f.host_view()
        timeline.set_tag("")
        return f

    def reconstruct(self, subsets: list[np.ndarray],
                    num_iterations: int = 1) -> np.ndarray:
        """Full reconstruction (all subsets, several passes)."""
        f = Vector(np.ones(self.geometry.image_size, dtype=np.float32),
                   context=self.ctx)
        for _ in range(num_iterations):
            for events in subsets:
                f = self.run_subset(events, f)
        return f.to_numpy().astype(np.float64)
