"""Device kernels for list-mode OSEM.

Two interchangeable realizations of the paper's ~200-line GPU kernel:

- :data:`COMPUTE_C_SOURCE` — the user function in the kernel dialect,
  containing a complete incremental Siddon ray tracer.  This is what
  the SkelCL map skeleton merges and compiles at runtime, exactly like
  the paper's workflow.  It executes per work item, so it is used at
  small problem sizes (tests, small examples).
- :func:`native_compute_c` — a numpy-vectorized native kernel (the
  ``clCreateProgramWithBinary`` analogue, DESIGN.md §5.2) computing the
  same values via the batched tracer; used at benchmark scale.

The virtual-time cost of one event is dominated by its plane crossings
(≈ nx+ny+nz voxel visits, each a gather from ``f`` plus a scattered
atomic update of ``c``).  :data:`EFFECTIVE_OPS_PER_CROSSING` is the
calibrated effective cost of one crossing; it folds in the uncoalesced
memory traffic that dominates real GPU OSEM kernels.
"""

from __future__ import annotations

import numpy as np

from repro.apps.osem.geometry import EVENT_DTYPE, ScannerGeometry
from repro.apps.osem.reference import _FP_EPS
from repro.apps.osem.siddon import trace_paths
from repro.ocl.program import NativeKernelDef

#: calibrated so one subset (≈1e6 events, paper grid) takes ≈2-3 s on
#: one simulated Tesla GPU via OpenCL, matching Figure 4b's scale
EFFECTIVE_OPS_PER_CROSSING = 1000.0


def ops_per_event(geometry: ScannerGeometry) -> float:
    """Modelled device cost (simple ops) of processing one event."""
    crossings = geometry.nx + geometry.ny + geometry.nz
    return EFFECTIVE_OPS_PER_CROSSING * crossings


def bytes_per_event(geometry: ScannerGeometry) -> float:
    """Modelled global-memory traffic per event (gathers + scatters)."""
    crossings = geometry.nx + geometry.ny + geometry.nz
    return 8.0 * crossings + EVENT_DTYPE.itemsize


#: ``compute_c`` as a SkelCL user function (void: writes through the
#: additional arguments ``f`` and ``c``).  Incremental Siddon: slab
#: clipping, then a two-pass parametric traversal — pass 0 accumulates
#: the forward projection fp, pass 1 scatters len/fp into c.
COMPUTE_C_SOURCE = """
typedef struct {
    float x1; float y1; float z1;
    float x2; float y2; float z2;
} Event;

void compute_c(Event e, __global const float* f, __global float* c,
               int nx, int ny, int nz) {
    float dx = e.x2 - e.x1;
    float dy = e.y2 - e.y1;
    float dz = e.z2 - e.z1;
    float raylen = sqrt(dx * dx + dy * dy + dz * dz);
    if (raylen < 1e-9f) return;

    /* entry/exit parameters of the grid (slab clipping) */
    float amin = 0.0f;
    float amax = 1.0f;
    if (fabs(dx) > 1e-9f) {
        float a0 = (0.0f - e.x1) / dx;
        float a1 = ((float)nx - e.x1) / dx;
        amin = fmax(amin, fmin(a0, a1));
        amax = fmin(amax, fmax(a0, a1));
    } else if (e.x1 < 0.0f || e.x1 > (float)nx) {
        return;
    }
    if (fabs(dy) > 1e-9f) {
        float a0 = (0.0f - e.y1) / dy;
        float a1 = ((float)ny - e.y1) / dy;
        amin = fmax(amin, fmin(a0, a1));
        amax = fmin(amax, fmax(a0, a1));
    } else if (e.y1 < 0.0f || e.y1 > (float)ny) {
        return;
    }
    if (fabs(dz) > 1e-9f) {
        float a0 = (0.0f - e.z1) / dz;
        float a1 = ((float)nz - e.z1) / dz;
        amin = fmax(amin, fmin(a0, a1));
        amax = fmin(amax, fmax(a0, a1));
    } else if (e.z1 < 0.0f || e.z1 > (float)nz) {
        return;
    }
    if (amax - amin < 1e-9f) return;

    float fp = 0.0f;
    for (int pass = 0; pass < 2; ++pass) {
        /* voxel indices at the entry point */
        float mid = amin + 1e-7f;
        int ix = (int)floor(e.x1 + mid * dx);
        int iy = (int)floor(e.y1 + mid * dy);
        int iz = (int)floor(e.z1 + mid * dz);
        ix = clamp(ix, 0, nx - 1);
        iy = clamp(iy, 0, ny - 1);
        iz = clamp(iz, 0, nz - 1);
        /* per-axis parameter of the next plane crossing, and step */
        int stepx = dx > 0.0f ? 1 : -1;
        int stepy = dy > 0.0f ? 1 : -1;
        int stepz = dz > 0.0f ? 1 : -1;
        float axn = 1e30f, dax = 1e30f;
        float ayn = 1e30f, day = 1e30f;
        float azn = 1e30f, daz = 1e30f;
        if (fabs(dx) > 1e-9f) {
            int plane = dx > 0.0f ? ix + 1 : ix;
            axn = ((float)plane - e.x1) / dx;
            dax = fabs(1.0f / dx);
        }
        if (fabs(dy) > 1e-9f) {
            int plane = dy > 0.0f ? iy + 1 : iy;
            ayn = ((float)plane - e.y1) / dy;
            day = fabs(1.0f / dy);
        }
        if (fabs(dz) > 1e-9f) {
            int plane = dz > 0.0f ? iz + 1 : iz;
            azn = ((float)plane - e.z1) / dz;
            daz = fabs(1.0f / dz);
        }
        float alpha = amin;
        while (alpha < amax - 1e-9f) {
            float anext = fmin(fmin(axn, ayn), azn);
            if (anext > amax) anext = amax;
            float seglen = (anext - alpha) * raylen;
            if (seglen > 1e-9f
                    && ix >= 0 && ix < nx
                    && iy >= 0 && iy < ny
                    && iz >= 0 && iz < nz) {
                int coord = (ix * ny + iy) * nz + iz;
                if (pass == 0) {
                    fp += f[coord] * seglen;
                } else {
                    c[coord] += seglen / fp;
                }
            }
            if (axn <= ayn && axn <= azn) {
                ix += stepx;
                axn += dax;
            } else if (ayn <= azn) {
                iy += stepy;
                ayn += day;
            } else {
                iz += stepz;
                azn += daz;
            }
            alpha = anext;
        }
        if (pass == 0 && fp < 1e-12f) return;
    }
}
"""

#: step 2 as a SkelCL zip user function (Listing 2, lines 15-17)
UPDATE_F_SOURCE = """
float update(float f, float c) {
    return c > 0.0f ? f * c : f;
}
"""


def native_compute_c(geometry: ScannerGeometry):
    """Vectorized ``compute_c`` for a SkelCL map's native override.

    Signature matches the dialect user function: ``(events, f, c, nx,
    ny, nz)`` with events as the element array and f/c as whole-buffer
    views; writes into ``c`` in place, returns None (void).
    """

    def compute(events: np.ndarray, f: np.ndarray, c: np.ndarray,
                nx: int, ny: int, nz: int,
                _element_index=None) -> None:
        paths = trace_paths(geometry, events)
        safe_idx = np.maximum(paths.indices, 0)
        fp = (f[safe_idx] * paths.lengths).sum(axis=1, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            inv_fp = np.where(fp > _FP_EPS, 1.0 / fp, 0.0)
        contributions = (paths.lengths
                         * inv_fp[:, None]).astype(np.float32)
        valid = paths.indices >= 0
        np.add.at(c, paths.indices[valid], contributions[valid])

    return compute


def native_compute_c_kerneldef(geometry: ScannerGeometry
                               ) -> NativeKernelDef:
    """The same vectorized kernel packaged for the low-level runtimes
    (args: events buffer, f buffer, c buffer; grid dims baked in)."""
    compute = native_compute_c(geometry)

    def kernel(args, gsize):
        events_view, f_view, c_view = args
        compute(events_view[:gsize[0]], f_view, c_view,
                geometry.nx, geometry.ny, geometry.nz)

    return NativeKernelDef(
        name="osem_compute_c", fn=kernel,
        arg_dtypes=[EVENT_DTYPE, np.float32, np.float32],
        ops_per_item=ops_per_event(geometry),
        bytes_per_item=bytes_per_event(geometry),
        const_args=frozenset([1]))


def native_update_f_kerneldef() -> NativeKernelDef:
    """Step 2 for the low-level runtimes (args: f buffer, c buffer)."""

    def kernel(args, gsize):
        f_view, c_view = args
        n = gsize[0]
        np.multiply(f_view[:n], c_view[:n], out=f_view[:n],
                    where=c_view[:n] > 0.0)

    return NativeKernelDef(
        name="osem_update_f", fn=kernel,
        arg_dtypes=[np.float32, np.float32],
        ops_per_item=4.0, bytes_per_item=12.0,
        const_args=frozenset([1]))
