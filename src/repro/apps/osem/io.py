"""List-mode event file I/O.

The paper's Listing 2/3 read each subset from a file
(``events = read_events()``) — clinical list-mode datasets are far too
large for memory.  This module provides the same workflow for the
synthetic data: a small binary container with a header (magic, version,
geometry, event count) followed by packed :data:`EVENT_DTYPE` records,
plus subset-wise streaming reads.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterator

import numpy as np

from repro.apps.osem.geometry import EVENT_DTYPE, ScannerGeometry

_MAGIC = b"LMEV"
_VERSION = 1
_HEADER = struct.Struct("<4sHHiii q")  # magic, ver, pad, nx, ny, nz, n


@dataclass(frozen=True)
class EventFileHeader:
    geometry: ScannerGeometry
    n_events: int


def write_events(path: str | Path | BinaryIO,
                 geometry: ScannerGeometry,
                 events: np.ndarray) -> None:
    """Write an event list with its geometry header."""
    if events.dtype != EVENT_DTYPE:
        raise ValueError(f"events must have dtype {EVENT_DTYPE}")
    header = _HEADER.pack(_MAGIC, _VERSION, 0, geometry.nx, geometry.ny,
                          geometry.nz, events.shape[0])
    if hasattr(path, "write"):
        path.write(header)
        path.write(events.tobytes())
        return
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(events.tobytes())


def read_header(fh: BinaryIO) -> EventFileHeader:
    raw = fh.read(_HEADER.size)
    if len(raw) != _HEADER.size:
        raise ValueError("truncated event file header")
    magic, version, _, nx, ny, nz, n_events = _HEADER.unpack(raw)
    if magic != _MAGIC:
        raise ValueError(f"not an event file (magic {magic!r})")
    if version != _VERSION:
        raise ValueError(f"unsupported event file version {version}")
    if n_events < 0:
        raise ValueError("corrupt event count")
    return EventFileHeader(geometry=ScannerGeometry(nx, ny, nz),
                           n_events=n_events)


def read_events(path: str | Path | BinaryIO
                ) -> tuple[ScannerGeometry, np.ndarray]:
    """Read a whole event file; returns (geometry, events)."""
    if hasattr(path, "read"):
        header = read_header(path)
        data = path.read(header.n_events * EVENT_DTYPE.itemsize)
    else:
        with open(path, "rb") as fh:
            header = read_header(fh)
            data = fh.read(header.n_events * EVENT_DTYPE.itemsize)
    events = np.frombuffer(data, dtype=EVENT_DTYPE)
    if events.shape[0] != header.n_events:
        raise ValueError(
            f"truncated event file: header says {header.n_events}, "
            f"found {events.shape[0]}")
    return header.geometry, events.copy()


def iter_subsets(path: str | Path, num_subsets: int
                 ) -> Iterator[np.ndarray]:
    """Stream a file's events subset by subset (Listing 2's loop).

    Subsets are contiguous slices of the file, each read on demand —
    only one subset is in memory at a time, like production list-mode
    reconstruction.
    """
    if num_subsets <= 0:
        raise ValueError("num_subsets must be positive")
    with open(path, "rb") as fh:
        header = read_header(fh)
        base, extra = divmod(header.n_events, num_subsets)
        for i in range(num_subsets):
            count = base + (1 if i < extra else 0)
            data = fh.read(count * EVENT_DTYPE.itemsize)
            events = np.frombuffer(data, dtype=EVENT_DTYPE)
            if events.shape[0] != count:
                raise ValueError("truncated event file body")
            yield events.copy()


def roundtrip_bytes(geometry: ScannerGeometry,
                    events: np.ndarray) -> bytes:
    """Serialize to bytes (for in-memory tests)."""
    buf = io.BytesIO()
    write_events(buf, geometry, events)
    return buf.getvalue()
