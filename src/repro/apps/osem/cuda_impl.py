"""List-mode OSEM written against the (simulated) CUDA runtime API.

The second baseline of the paper's comparison.  Host code is shorter
than the OpenCL version — no platform discovery, no context/queue
objects, no runtime kernel compilation — but all multi-GPU data
movement is still explicit: ``cudaSetDevice`` + ``cudaMalloc`` +
``cudaMemcpy`` per device, manual combination of the per-GPU error
images, manual block partitioning for step 2 (the hybrid PSD/ISD
strategy of Figure 3).
"""

from __future__ import annotations

import numpy as np

from repro.apps.osem import kernels
from repro.apps.osem.geometry import EVENT_DTYPE, ScannerGeometry
from repro.cuda import CudaFunction, CudaRuntime
from repro.ocl import System


def _block_parts(size: int, count: int) -> list[tuple[int, int]]:
    base, extra = divmod(size, count)
    parts, offset = [], 0
    for i in range(count):
        length = base + (1 if i < extra else 0)
        parts.append((offset, length))
        offset += length
    return parts


def _load_functions(runtime: CudaRuntime, geometry: ScannerGeometry):
    compute = kernels.native_compute_c_kerneldef(geometry)
    update = kernels.native_update_f_kerneldef()
    return runtime.load_module([
        CudaFunction(name="compute_c", fn=compute.fn,
                     arg_dtypes=compute.arg_dtypes,
                     ops_per_item=compute.ops_per_item,
                     bytes_per_item=compute.bytes_per_item),
        CudaFunction(name="update_f", fn=update.fn,
                     arg_dtypes=update.arg_dtypes,
                     ops_per_item=update.ops_per_item,
                     bytes_per_item=update.bytes_per_item),
    ])


def run_subset(system: System, geometry: ScannerGeometry,
               events: np.ndarray, f_host: np.ndarray,
               num_gpus: int | None = None,
               scale_factor: float = 1.0,
               runtime: CudaRuntime | None = None) -> np.ndarray:
    """One subset iteration on ``num_gpus`` GPUs; returns the new f."""
    timeline = system.timeline
    if runtime is None:
        runtime = CudaRuntime(system)
    functions = _load_functions(runtime, geometry)
    ndev = (num_gpus if num_gpus is not None
            else runtime.get_device_count())
    img_size = geometry.image_size
    f32 = f_host.astype(np.float32)
    event_parts = _block_parts(events.shape[0], ndev)
    image_parts = _block_parts(img_size, ndev)

    # -- 1. upload ---------------------------------------------------------
    timeline.set_tag("upload")
    dev_events, dev_f, dev_c = [], [], []
    for i in range(ndev):
        runtime.set_device(i)
        offset, length = event_parts[i]
        devents = runtime.malloc(max(length, 1) * EVENT_DTYPE.itemsize)
        if length:
            runtime.memcpy_htod(devents, events[offset:offset + length])
        df = runtime.malloc(img_size * 4)
        runtime.memcpy_htod(df, f32)
        dc = runtime.malloc(img_size * 4)
        runtime.memcpy_htod(dc, np.zeros(img_size, np.float32))
        dev_events.append(devents)
        dev_f.append(df)
        dev_c.append(dc)

    # -- 2. step 1 (PSD) ----------------------------------------------------
    timeline.set_tag("step1")
    for i in range(ndev):
        length = event_parts[i][1]
        if not length:
            continue
        runtime.set_device(i)
        runtime.launch(functions["compute_c"], grid=(length,), block=(1,),
                       args=[dev_events[i], dev_f[i], dev_c[i]],
                       scale_factor=scale_factor)

    # -- 3. redistribution ----------------------------------------------------
    timeline.set_tag("redistribute")
    c_total = np.zeros(img_size, np.float32)
    download = np.empty(img_size, np.float32)
    for i in range(ndev):
        runtime.set_device(i)
        runtime.device_synchronize()
        runtime.memcpy_dtoh(download, dev_c[i])
        c_total += download
    for i in range(ndev):
        offset, length = image_parts[i]
        if not length:
            continue
        runtime.set_device(i)
        runtime.memcpy_htod(dev_c[i], c_total[offset:offset + length])
        runtime.memcpy_htod(dev_f[i], f32[offset:offset + length])

    # -- 4. step 2 (ISD) --------------------------------------------------------
    timeline.set_tag("step2")
    for i in range(ndev):
        length = image_parts[i][1]
        if not length:
            continue
        runtime.set_device(i)
        # image is full-size; scale_factor models only the event count
        runtime.launch(functions["update_f"], grid=(length,), block=(1,),
                       args=[dev_f[i], dev_c[i]])

    # -- 5. download ---------------------------------------------------------------
    timeline.set_tag("download")
    f_new = np.empty(img_size, np.float32)
    for i in range(ndev):
        offset, length = image_parts[i]
        if not length:
            continue
        runtime.set_device(i)
        runtime.device_synchronize()
        part = np.empty(length, np.float32)
        runtime.memcpy_dtoh(part, dev_f[i])
        f_new[offset:offset + length] = part
    for dptr in dev_events + dev_f + dev_c:
        runtime.free(dptr)
    timeline.set_tag("")
    return f_new.astype(f_host.dtype)


def reconstruct(system: System, geometry: ScannerGeometry,
                subsets: list[np.ndarray], num_iterations: int = 1,
                num_gpus: int | None = None,
                scale_factor: float = 1.0) -> np.ndarray:
    runtime = CudaRuntime(system)
    f = np.ones(geometry.image_size)
    for _ in range(num_iterations):
        for events in subsets:
            f = run_subset(system, geometry, events, f,
                           num_gpus=num_gpus, scale_factor=scale_factor,
                           runtime=runtime)
    return f
