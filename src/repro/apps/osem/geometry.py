"""PET scanner and reconstruction-volume geometry.

The paper reconstructs a 150 x 150 x 280 voxel volume from quadHIDAC
scanner data.  We model a cylindrical scanner (detector ring of radius
``scanner_radius`` around the z axis) enclosing the voxel grid; events
are lines of response (LORs) between two detection points on the
cylinder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: dtype of one recorded event: the two detection points of its LOR
EVENT_DTYPE = np.dtype([
    ("x1", np.float32), ("y1", np.float32), ("z1", np.float32),
    ("x2", np.float32), ("y2", np.float32), ("z2", np.float32),
])


@dataclass(frozen=True)
class ScannerGeometry:
    """Voxel grid + detector cylinder.

    The grid spans ``[0, nx] x [0, ny] x [0, nz]`` in voxel units; all
    event coordinates are expressed in the same units, so ray tracing
    needs no unit conversions.
    """

    nx: int = 150
    ny: int = 150
    nz: int = 280
    #: detector cylinder radius in voxel units, measured from the grid
    #: center; must enclose the whole xy extent of the grid
    scanner_radius: float | None = None

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nz) <= 0:
            raise ValueError(f"invalid grid {self.nx}x{self.ny}x{self.nz}")
        if self.scanner_radius is None:
            radius = 0.75 * float(np.hypot(self.nx, self.ny))
            object.__setattr__(self, "scanner_radius", radius)
        min_radius = 0.5 * float(np.hypot(self.nx, self.ny))
        if self.scanner_radius < min_radius:
            raise ValueError(
                f"scanner radius {self.scanner_radius} does not enclose "
                f"the grid (needs >= {min_radius:.1f})")

    # -- derived ------------------------------------------------------------

    @property
    def image_size(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.nx, self.ny, self.nz)

    @property
    def center(self) -> np.ndarray:
        return np.array([self.nx / 2.0, self.ny / 2.0, self.nz / 2.0])

    def voxel_index(self, ix, iy, iz):
        """Flattened voxel index (C order: x outermost, z innermost)."""
        return (ix * self.ny + iy) * self.nz + iz

    #: the paper's reconstruction volume
    @staticmethod
    def paper() -> "ScannerGeometry":
        return ScannerGeometry(150, 150, 280)

    @staticmethod
    def small(n: int = 16) -> "ScannerGeometry":
        """A small grid for tests and quick examples."""
        return ScannerGeometry(n, n, n)
