"""List-mode OSEM PET reconstruction (paper Section IV).

The application study: a sequential reference (Listing 2), the SkelCL
implementation (Listing 3), and the low-level OpenCL and CUDA baselines
(the paper's comparison subjects), all over a synthetic PET substrate
(scanner geometry, activity phantoms, event generation, Siddon ray
tracing).
"""

from repro.apps.osem.events import generate_events, split_subsets
from repro.apps.osem.geometry import EVENT_DTYPE, ScannerGeometry
from repro.apps.osem.phantom import cylinder_phantom, point_sources_phantom
from repro.apps.osem.reference import (compute_error_image,
                                       one_subset_iteration,
                                       osem_reconstruct, update_image)
from repro.apps.osem.siddon import PathBatch, trace_paths, trace_single
from repro.apps.osem.skelcl_impl import SkelCLOsem

__all__ = [
    "ScannerGeometry", "EVENT_DTYPE", "cylinder_phantom",
    "point_sources_phantom", "generate_events", "split_subsets",
    "trace_paths", "trace_single", "PathBatch", "compute_error_image",
    "update_image", "one_subset_iteration", "osem_reconstruct",
    "SkelCLOsem",
]
