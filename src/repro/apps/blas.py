"""Small BLAS routines built from skeletons.

``saxpy`` is the paper's Listing 1; the others are the canonical
one-liner compositions skeleton libraries advertise: ``dot`` as
zip + reduce (with the intermediate staying on the GPUs thanks to lazy
transfers), ``asum``/``nrm2`` as map + reduce, ``scal`` as a map with
an additional scalar argument.
"""

from __future__ import annotations

import math

import numpy as np

from repro.skelcl import Map, Reduce, Vector, Zip
from repro.skelcl.context import SkelCLContext


class Blas:
    """Skeleton-based BLAS level-1 routines over float vectors."""

    def __init__(self, context: SkelCLContext | None = None) -> None:
        self.ctx = context
        self._saxpy = Zip(
            "float func(float x, float y, float a) { return a*x+y; }")
        self._mul = Zip(
            "float mul(float x, float y) { return x * y; }")
        self._add = Reduce(
            "float add(float a, float b) { return a + b; }")
        self._abs = Map("float absval(float x) { return fabs(x); }")
        self._square = Map("float sq(float x) { return x * x; }")
        self._scale = Map(
            "float scale(float x, float a) { return a * x; }")

    # -- routines -----------------------------------------------------------

    def saxpy(self, x: Vector, y: Vector, a: float) -> Vector:
        """``a*X + Y`` — the paper's Listing 1."""
        return self._saxpy(x, y, a)

    def dot(self, x: Vector, y: Vector) -> float:
        """Dot product: zip(*) then reduce(+); the intermediate vector
        never leaves the GPUs (lazy transfers, paper §II-B)."""
        products = self._mul(x, y)
        return float(self._add(products)[0])

    def asum(self, x: Vector) -> float:
        """Sum of absolute values."""
        return float(self._add(self._abs(x))[0])

    def nrm2(self, x: Vector) -> float:
        """Euclidean norm."""
        return math.sqrt(float(self._add(self._square(x))[0]))

    def scal(self, x: Vector, a: float) -> Vector:
        """``a*X`` in place."""
        return self._scale(x, a, out=x)


def saxpy_listing1(xs: np.ndarray, ys: np.ndarray, a: float,
                   context: SkelCLContext | None = None) -> np.ndarray:
    """The complete Listing 1 as one function."""
    saxpy = Zip("float func(float x, float y, float a)"
                "{ return a*x+y; }")
    X = Vector(xs.astype(np.float32), context=context)
    Y = Vector(ys.astype(np.float32), context=context)
    Y = saxpy(X, Y, a)
    return Y.to_numpy()
