"""Cross-tenant fairness: weighted deficit round-robin (DRR).

The serving layer (:mod:`repro.serve`) multiplexes many tenants onto
one set of devices.  Admission control bounds each tenant's backlog;
this module decides *whose* queued jobs the next scheduling round
drains, and how many.

Classic deficit round-robin [Shreedhar & Varghese '96], weighted:
every round each backlogged tenant's deficit counter grows by
``quantum_items * weight`` (weights normalized so the largest active
weight gets the full quantum), then jobs are taken from the head of
that tenant's queue while the deficit covers their cost (items).  A
tenant whose queue drains forfeits its leftover deficit — idle tenants
cannot bank credit and later starve the rest.

Weights adapt the same way the device-level
:class:`~repro.sched.adaptive.AdaptiveScheduler` refines its split:
an exponential moving average over observed throughput
(``items / second``), so tenants whose jobs are cheap per item are not
penalized for submitting many of them.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from repro.errors import SchedulerError

#: deficit added per round to the heaviest-weighted backlogged tenant
DEFAULT_QUANTUM_ITEMS = 4096


class DeficitRoundRobin:
    """Weighted DRR over per-tenant job queues.

    Args:
        quantum_items: items of service credit granted per round to a
            tenant with the maximum weight.
        smoothing: EMA factor for :meth:`observe` in (0, 1], identical
            in meaning to :class:`AdaptiveScheduler`'s.
    """

    def __init__(self, quantum_items: int = DEFAULT_QUANTUM_ITEMS,
                 smoothing: float = 0.5) -> None:
        if quantum_items <= 0:
            raise SchedulerError(
                f"invalid DRR quantum {quantum_items}")
        if not 0.0 < smoothing <= 1.0:
            raise SchedulerError(f"invalid smoothing {smoothing}")
        self.quantum_items = quantum_items
        self.smoothing = smoothing
        self._weights: dict[Hashable, float] = {}
        self._deficits: dict[Hashable, float] = {}
        #: cumulative (items, busy seconds) served per tenant — the
        #: sustained-throughput ledger long-lived stream tenants are
        #: judged by (windows keep arriving, so the EMA weight alone
        #: would forget how much service they already consumed)
        self._served: dict[Hashable, list[float]] = {}
        self.rounds = 0

    # -- weights -----------------------------------------------------------------

    def ensure(self, tenant: Hashable) -> None:
        """Register *tenant* with a neutral weight (idempotent)."""
        self._weights.setdefault(tenant, 1.0)
        self._deficits.setdefault(tenant, 0.0)

    def set_weight(self, tenant: Hashable, weight: float) -> None:
        """Pin a tenant's weight (e.g. a paid tier); must be > 0."""
        if weight <= 0:
            raise SchedulerError(
                f"tenant weight must be positive, got {weight}")
        self.ensure(tenant)
        self._weights[tenant] = float(weight)

    def weight(self, tenant: Hashable) -> float:
        return self._weights.get(tenant, 1.0)

    def observe(self, tenant: Hashable, items: int,
                seconds: float) -> None:
        """Fold one completed execution's measured throughput into the
        tenant's weight (EMA, same smoothing semantics as the adaptive
        device scheduler)."""
        if items <= 0 or seconds <= 0:
            return
        self.ensure(tenant)
        served = self._served.setdefault(tenant, [0.0, 0.0])
        served[0] += items
        served[1] += seconds
        measured = items / seconds
        self._weights[tenant] = (
            (1 - self.smoothing) * self._weights[tenant]
            + self.smoothing * measured)

    def sustained_items_per_s(self, tenant: Hashable) -> float:
        """Lifetime items/second actually served to *tenant* (0 until
        its first completed execution)."""
        served = self._served.get(tenant)
        if served is None or served[1] <= 0:
            return 0.0
        return served[0] / served[1]

    # -- scheduling --------------------------------------------------------------

    def pick_round(self, backlog: Mapping[Hashable, Sequence[int]],
                   max_jobs: int | None = None,
                   max_items: int | None = None
                   ) -> dict[Hashable, int]:
        """One DRR round over *backlog*.

        Args:
            backlog: tenant -> per-job costs (items), in queue order.
            max_jobs: overall cap on jobs picked this round.
            max_items: overall cap on summed item cost this round.

        Returns:
            tenant -> number of jobs to take from the *head* of that
            tenant's queue.  Tenants are visited in sorted order so a
            given backlog always yields the same round (determinism).
        """
        active = {t: costs for t, costs in backlog.items() if costs}
        # credit for tenants that went quiet is dropped (DRR forbids
        # banking while idle) — but debt from an oversized admission
        # is never forgiven
        for tenant in list(self._deficits):
            if tenant not in active:
                self._deficits[tenant] = min(self._deficits[tenant],
                                             0.0)
        if not active:
            return {}
        for tenant in active:
            self.ensure(tenant)
        max_weight = max(self._weights[t] for t in active)
        picked: dict[Hashable, int] = {}
        jobs_left = max_jobs if max_jobs is not None else float("inf")
        items_left = max_items if max_items is not None else float("inf")
        total_taken = 0
        self.rounds += 1
        for tenant in sorted(active, key=str):
            share = self._weights[tenant] / max_weight
            balance_before = self._deficits[tenant]
            self._deficits[tenant] += self.quantum_items * share
            take = 0
            for cost in active[tenant]:
                cost = max(int(cost), 1)
                if jobs_left <= 0:
                    break
                # max_items is a hard cap — but the round's very first
                # job always goes through, so a job bigger than the
                # cap cannot stall the server
                if cost > items_left and total_taken > 0:
                    break
                if self._deficits[tenant] < cost:
                    # a head-of-line job bigger than the whole quantum
                    # is admitted alone, overdrawing the balance — it
                    # must not wait for credit that drained queues
                    # forfeit.  The debt is repaid before the tenant's
                    # next oversized admission (balance_before >= 0).
                    oversized = (take == 0
                                 and cost > self.quantum_items * share
                                 and balance_before >= 0)
                    if not oversized:
                        break
                self._deficits[tenant] -= cost
                take += 1
                total_taken += 1
                jobs_left -= 1
                items_left -= cost
            if take:
                picked[tenant] = take
                if take == len(active[tenant]):
                    # queue drained: forfeit leftover credit (debt,
                    # if any, carries)
                    self._deficits[tenant] = min(
                        self._deficits[tenant], 0.0)
        return picked

    def snapshot(self) -> dict:
        """Weights, deficits and sustained service for
        ``repro serve status`` / ``repro stream status``."""
        return {"rounds": self.rounds,
                "weights": {str(t): w
                            for t, w in sorted(self._weights.items(),
                                               key=lambda kv: str(kv[0]))},
                "deficits": {str(t): d
                             for t, d in sorted(self._deficits.items(),
                                                key=lambda kv: str(kv[0]))},
                "sustained": {
                    str(t): {"items": s[0], "busy_s": s[1],
                             "items_per_s": (s[0] / s[1]
                                             if s[1] > 0 else 0.0)}
                    for t, s in sorted(self._served.items(),
                                       key=lambda kv: str(kv[0]))}}
