"""Static scheduling for heterogeneous devices (paper Section V)."""

from repro.sched.adaptive import AdaptiveScheduler, WeightStore
from repro.sched.fair import DeficitRoundRobin
from repro.sched.measure import measure_map_seconds_per_item, static_cost
from repro.sched.perf_model import (StreamCost, UserFunctionCost,
                                    predict_map, predict_reduce_final,
                                    predict_reduce_local, predict_stream,
                                    predict_zip, throughput_items_per_s)
from repro.sched.static_scheduler import (WeightedBlockDistribution,
                                          choose_reduce_final_device,
                                          makespan_of_partition,
                                          network_capped_throughput,
                                          weighted_block_distribution)

__all__ = [
    "StreamCost", "UserFunctionCost", "predict_map", "predict_zip",
    "predict_stream",
    "predict_reduce_local", "predict_reduce_final",
    "throughput_items_per_s", "static_cost",
    "measure_map_seconds_per_item", "WeightedBlockDistribution",
    "weighted_block_distribution", "network_capped_throughput",
    "choose_reduce_final_device",
    "makespan_of_partition", "AdaptiveScheduler", "WeightStore",
    "DeficitRoundRobin",
]
