"""Micro-benchmarking of user-defined functions (paper Section V).

"Performance prediction based on statistical code analysis and
benchmarks is only used for the user-defined functions rather than the
whole program code."  This module runs a user function on a small
sample on each device of a context and reads the profiled (virtual)
kernel time, yielding a measured per-element cost that complements the
compiler's static op estimate.
"""

from __future__ import annotations

import numpy as np

from repro import ocl
from repro.skelcl.base import UserFunction
from repro.skelcl.codegen import map_kernel
from repro.skelcl.context import SkelCLContext
from repro.sched.perf_model import UserFunctionCost


def static_cost(user: UserFunction,
                bytes_per_item: float | None = None) -> UserFunctionCost:
    """Cost from static code analysis only (the compiler's estimate)."""
    if bytes_per_item is None:
        bytes_per_item = 2.0 * user.element_dtype(0).itemsize
    return UserFunctionCost(ops_per_item=user.op_count + 2.0,
                            bytes_per_item=bytes_per_item)


def measure_map_seconds_per_item(ctx: SkelCLContext, user: UserFunction,
                                 sample_size: int = 4096
                                 ) -> list[float]:
    """Measured per-element time of ``map(user)`` on each device.

    Runs the generated map kernel on a sample buffer per device and
    divides the profiled kernel duration (launch overhead subtracted)
    by the sample size.
    """
    if user.output_dtype() is None or user.params[1:]:
        raise ValueError(
            "micro-benchmarking supports unary element -> element "
            "functions")
    source = map_kernel(user.source, user.func)
    program = ctx.build_program(source)
    in_dtype = user.element_dtype(0)
    out_dtype = user.output_dtype()
    results: list[float] = []
    sample = np.zeros(sample_size, dtype=in_dtype)
    if in_dtype.kind == "f":
        sample[:] = np.linspace(0.1, 1.0, sample_size)
    for device_index, queue in enumerate(ctx.queues):
        buf_in = ocl.buffer_from_array(ctx.context, sample)
        buf_out = ocl.Buffer(ctx.context, sample_size * out_dtype.itemsize)
        kernel = program.create_kernel("skelcl_map")
        kernel.set_args(buf_in, buf_out, np.int32(sample_size))
        event = queue.enqueue_nd_range_kernel(kernel, (sample_size,),
                                              ops_per_item=user.op_count
                                              + 2.0)
        queue.finish()
        overhead = ctx.devices[device_index].spec.kernel_launch_overhead_s
        per_item = max(event.duration - overhead, 1e-12) / sample_size
        results.append(per_item)
        buf_in.release()
        buf_out.release()
    return results
