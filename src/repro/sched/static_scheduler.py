"""Static workload scheduling for heterogeneous devices (Section V).

"To use the heterogeneous devices efficiently ... SkelCL should not
assign evenly-sized workload to the devices."  The static scheduler
computes per-device weights from the analytical skeleton models plus
the user function's (measured or statically estimated) cost, and
produces a weighted block distribution that drops into the existing
Vector/skeleton machinery.

It also answers the paper's reduce question: whether the final
reduction of the small intermediate vector should run on a CPU rather
than a GPU.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SchedulerError
from repro.ocl.device import Device
from repro.sched.perf_model import (UserFunctionCost, predict_reduce_final,
                                    throughput_items_per_s)
from repro.skelcl.distribution import Distribution


class WeightedBlockDistribution(Distribution):
    """A block distribution whose part sizes follow device weights."""

    __slots__ = ("weights",)

    def __init__(self, weights: Sequence[float]) -> None:
        super().__init__("block")
        if not weights or any(w < 0 for w in weights) \
                or sum(weights) <= 0:
            raise SchedulerError(f"invalid weights {weights}")
        self.weights = tuple(float(w) for w in weights)

    def partition(self, size: int,
                  num_devices: int) -> list[tuple[int, int]]:
        if num_devices != len(self.weights):
            raise SchedulerError(
                f"distribution weighted for {len(self.weights)} devices, "
                f"used with {num_devices}")
        total = sum(self.weights)
        # largest-remainder apportionment: exact coverage, near-ideal split
        ideal = [size * w / total for w in self.weights]
        lengths = [int(x) for x in ideal]
        remainder = size - sum(lengths)
        by_frac = sorted(range(num_devices),
                         key=lambda i: ideal[i] - lengths[i], reverse=True)
        for i in by_frac[:remainder]:
            lengths[i] += 1
        parts = []
        offset = 0
        for length in lengths:
            parts.append((offset, length))
            offset += length
        return parts

    def _layout_token(self) -> tuple:
        return ("block-weighted", self.weights)

    def __repr__(self) -> str:
        return f"WeightedBlockDistribution({list(self.weights)})"


def network_capped_throughput(device: Device,
                              cost: UserFunctionCost) -> float:
    """Sustainable items/s of a device including its network uplink.

    Remote devices (dOpenCL's ``ForwardedDevice``, the cluster's
    ``RemoteDevice``) expose a ``network`` attribute: their input data
    must cross that uplink, so per-item throughput can never exceed
    ``uplink bandwidth / bytes per item``.  Local devices are returned
    unchanged.
    """
    throughput = throughput_items_per_s(device.spec, cost)
    network = getattr(device, "network", None)
    if network is None or cost.bytes_per_item <= 0:
        return throughput
    uplink_cap = network.bandwidth_gbs * 1e9 / cost.bytes_per_item
    return min(throughput, uplink_cap)


def weighted_block_distribution(devices: Sequence[Device],
                                cost: UserFunctionCost,
                                include_network: bool = False
                                ) -> WeightedBlockDistribution:
    """Distribution proportional to each device's modelled throughput.

    Compute-intensive user functions give GPUs large weights over CPUs
    (the paper's example); memory-bound ones narrow the gap.  With
    ``include_network=True`` the weight of every remote device is
    additionally capped by its uplink bandwidth, so a fast GPU behind
    a slow network link receives a correspondingly smaller block.
    """
    if not devices:
        raise SchedulerError("no devices to schedule over")
    if include_network:
        weights = [network_capped_throughput(d, cost) for d in devices]
    else:
        weights = [throughput_items_per_s(d.spec, cost) for d in devices]
    return WeightedBlockDistribution(weights)


def choose_reduce_final_device(devices: Sequence[Device], k: int,
                               cost: UserFunctionCost) -> Device:
    """Pick the device for reducing *k* intermediate values.

    GPUs 'provide poor performance when reducing only few elements'
    (launch overhead dominates), so for small *k* a CPU device wins.
    """
    if not devices:
        raise SchedulerError("no devices to choose from")
    return min(devices,
               key=lambda d: predict_reduce_final(d.spec, k, cost))


def makespan_of_partition(devices: Sequence[Device],
                          lengths: Sequence[int],
                          cost: UserFunctionCost) -> float:
    """Predicted makespan when device i processes lengths[i] elements."""
    from repro.ocl.timing import KernelCost, kernel_duration
    times = []
    for device, length in zip(devices, lengths):
        if length == 0:
            continue
        times.append(kernel_duration(
            device.spec, KernelCost(length, cost.ops_per_item,
                                    cost.bytes_per_item)))
    return max(times, default=0.0)
