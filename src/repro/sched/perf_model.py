"""Analytical performance models for skeletons (paper Section V).

SkelCL can predict program performance better than plain OpenCL because
the implementation of every skeleton is known: only the user-defined
function needs measurement/static analysis; the skeleton around it is
modelled analytically.  These models combine the user function's
per-element cost with each skeleton's known structure (elements
touched, transfers implied, final host-side stage).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ocl.specs import DeviceSpec
from repro.ocl.timing import KernelCost, kernel_duration, transfer_duration


@dataclass(frozen=True)
class UserFunctionCost:
    """Per-element cost of a user-defined function.

    Obtained from static analysis (the compiler's op estimate) and/or
    micro-benchmarks (:mod:`repro.sched.measure`).
    """

    ops_per_item: float
    bytes_per_item: float = 8.0


def predict_map(spec: DeviceSpec, n: int, cost: UserFunctionCost,
                include_transfers: bool = False) -> float:
    """Predicted time for a map of *n* elements on *spec*."""
    t = kernel_duration(spec, KernelCost(n, cost.ops_per_item,
                                         cost.bytes_per_item))
    if include_transfers:
        nbytes = int(n * cost.bytes_per_item)
        t += 2 * transfer_duration(spec, nbytes)  # upload + download
    return t


def predict_zip(spec: DeviceSpec, n: int, cost: UserFunctionCost,
                include_transfers: bool = False) -> float:
    """Predicted time for a zip of *n* element pairs on *spec*."""
    t = kernel_duration(spec, KernelCost(n, cost.ops_per_item,
                                         cost.bytes_per_item * 1.5))
    if include_transfers:
        nbytes = int(n * cost.bytes_per_item)
        t += 3 * transfer_duration(spec, nbytes)  # two uploads + download
    return t


def predict_reduce_local(spec: DeviceSpec, n: int,
                         cost: UserFunctionCost) -> float:
    """Predicted time for the device-local reduction of *n* elements."""
    return kernel_duration(spec, KernelCost(n, cost.ops_per_item,
                                            cost.bytes_per_item))


def predict_reduce_final(spec: DeviceSpec, k: int,
                         cost: UserFunctionCost) -> float:
    """Predicted time for reducing *k* intermediate values on *spec*.

    The paper's observation: GPUs provide poor performance when
    reducing only a few elements (launch overhead dominates), so the
    CPU is often the better choice for this stage.
    """
    if k <= 1:
        return spec.kernel_launch_overhead_s
    return kernel_duration(spec, KernelCost(k, cost.ops_per_item,
                                            cost.bytes_per_item))


def throughput_items_per_s(spec: DeviceSpec,
                           cost: UserFunctionCost) -> float:
    """Sustained per-element throughput, ignoring launch overhead.

    This is the weight the static scheduler assigns a device when
    splitting a data-parallel workload.
    """
    large_n = 1 << 22
    t = kernel_duration(spec, KernelCost(large_n, cost.ops_per_item,
                                         cost.bytes_per_item))
    t -= spec.kernel_launch_overhead_s
    return large_n / t
