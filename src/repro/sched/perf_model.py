"""Analytical performance models for skeletons (paper Section V).

SkelCL can predict program performance better than plain OpenCL because
the implementation of every skeleton is known: only the user-defined
function needs measurement/static analysis; the skeleton around it is
modelled analytically.  These models combine the user function's
per-element cost with each skeleton's known structure (elements
touched, transfers implied, final host-side stage).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ocl.specs import DeviceSpec
from repro.ocl.timing import KernelCost, kernel_duration, transfer_duration


@dataclass(frozen=True)
class UserFunctionCost:
    """Per-element cost of a user-defined function.

    Obtained from static analysis (the compiler's op estimate) and/or
    micro-benchmarks (:mod:`repro.sched.measure`).
    """

    ops_per_item: float
    bytes_per_item: float = 8.0


def predict_map(spec: DeviceSpec, n: int, cost: UserFunctionCost,
                include_transfers: bool = False) -> float:
    """Predicted time for a map of *n* elements on *spec*."""
    t = kernel_duration(spec, KernelCost(n, cost.ops_per_item,
                                         cost.bytes_per_item))
    if include_transfers:
        nbytes = int(n * cost.bytes_per_item)
        t += 2 * transfer_duration(spec, nbytes)  # upload + download
    return t


def predict_zip(spec: DeviceSpec, n: int, cost: UserFunctionCost,
                include_transfers: bool = False) -> float:
    """Predicted time for a zip of *n* element pairs on *spec*."""
    t = kernel_duration(spec, KernelCost(n, cost.ops_per_item,
                                         cost.bytes_per_item * 1.5))
    if include_transfers:
        nbytes = int(n * cost.bytes_per_item)
        t += 3 * transfer_duration(spec, nbytes)  # two uploads + download
    return t


def predict_reduce_local(spec: DeviceSpec, n: int,
                         cost: UserFunctionCost) -> float:
    """Predicted time for the device-local reduction of *n* elements."""
    return kernel_duration(spec, KernelCost(n, cost.ops_per_item,
                                            cost.bytes_per_item))


def predict_reduce_final(spec: DeviceSpec, k: int,
                         cost: UserFunctionCost) -> float:
    """Predicted time for reducing *k* intermediate values on *spec*.

    The paper's observation: GPUs provide poor performance when
    reducing only a few elements (launch overhead dominates), so the
    CPU is often the better choice for this stage.
    """
    if k <= 1:
        return spec.kernel_launch_overhead_s
    return kernel_duration(spec, KernelCost(k, cost.ops_per_item,
                                            cost.bytes_per_item))


# ---------------------------------------------------------------------------
# plan-level costing (the rewrite optimizer's fitness function)
# ---------------------------------------------------------------------------

@dataclass
class PlanCost:
    """Predicted execution profile of one optimized plan.

    A miniature discrete-event replay of the plan against the same
    roofline constants the virtual timeline charges: one clock per
    device queue, one per device link, one for the host, with buffer
    residency tracked per node so redistributions and lazy re-uploads
    are priced where the real execution pays them.  Warm caches are
    assumed (no program build time) — the optimizer compares *steady
    state* plan shapes, and builds amortize across evaluations.
    """

    makespan_s: float
    per_step: list  # (step label, predicted seconds contributed)


class _VecState:
    __slots__ = ("size", "itemsize", "dist", "host_t", "dev_t")

    def __init__(self, size, itemsize, dist=None, host_t=0.0):
        self.size = size
        self.itemsize = itemsize
        self.dist = dist          # a Distribution or None
        self.host_t = host_t      # host copy valid since t (None: stale)
        self.dev_t = {}           # device index -> part valid since t


def predict_plan(plan, ctx) -> PlanCost:
    """Price *plan* on the virtual machine model without executing it."""
    import numpy as np

    from repro.skelcl.context import (SKELCL_CALL_OVERHEAD_S,
                                      SKELCL_KERNEL_OVERHEAD_FACTOR)
    from repro.skelcl.distribution import Distribution
    from repro.skelcl.reduce_skeleton import (HOST_OP_TIME_S,
                                              LOCAL_REDUCE_ITEMS)
    from repro.ocl.timing import API_CALL_OVERHEAD_S, transfer_duration

    specs = [d.spec for d in ctx.devices]
    nd = len(specs)
    factor = SKELCL_KERNEL_OVERHEAD_FACTOR
    clock = {"host": 0.0}
    qfree = [0.0] * nd
    lfree = [0.0] * nd

    def api(n=1):
        clock["host"] += n * API_CALL_OVERHEAD_S

    def call_overhead(extra_args=0):
        clock["host"] += (SKELCL_CALL_OVERHEAD_S
                          + extra_args * API_CALL_OVERHEAD_S)

    def h2d(d, nbytes, ready=0.0):
        api()
        start = max(lfree[d], clock["host"], ready)
        end = start + transfer_duration(specs[d], int(nbytes))
        lfree[d] = end
        return end

    def d2h_wait(d, nbytes, ready=0.0):
        api()
        start = max(lfree[d], clock["host"], ready)
        end = start + transfer_duration(specs[d], int(nbytes))
        lfree[d] = end
        clock["host"] = max(clock["host"], end)  # event.wait()
        return end

    def launch(d, items, ops, bpi, ready=0.0):
        api()
        start = max(qfree[d], clock["host"], ready)
        end = start + kernel_duration(
            specs[d], KernelCost(items, ops, bpi))
        qfree[d] = end
        return end

    def parts_of(st):
        """(device, offset, length) triples under st's layout."""
        dist = st.dist
        if dist is None or dist.kind == "block":
            split = Distribution.block().partition(st.size, nd)
            return [(d, off, length) for d, (off, length)
                    in enumerate(split) if length]
        if dist.kind == "single":
            return [(dist.device, 0, st.size)]
        return [(d, 0, st.size) for d in range(nd)]  # copy

    def make_host_consistent(st):
        if st.host_t is not None:
            return
        for d, off, length in parts_of(st):
            d2h_wait(d, length * st.itemsize, ready=st.dev_t.get(d, 0.0))
        st.host_t = clock["host"]

    def on_device(st, d, length):
        """Time st's part becomes valid on device *d* (lazy upload)."""
        if d in st.dev_t:
            return st.dev_t[d]
        make_host_consistent(st)
        end = h2d(d, length * st.itemsize, ready=st.host_t)
        st.dev_t[d] = end
        return end

    def itemsize_of(dtype, fallback=8):
        return dtype.itemsize if dtype is not None else fallback

    state: dict[int, _VecState] = {}
    for node in plan.graph.nodes:
        vec = node.value
        if vec is None:
            continue
        st = _VecState(vec.size, vec.dtype.itemsize, vec.distribution,
                       host_t=0.0 if vec._host_valid else None)
        if vec.parts is not None:
            for part in vec.parts:
                if not part.empty and getattr(part, "valid", False):
                    st.dev_t[part.device_index] = 0.0
        if st.host_t is None and not st.dev_t:
            st.host_t = 0.0
        state[node.id] = st

    def state_of(node):
        st = state.get(node.id)
        if st is None:  # dependency with no recorded state: assume host
            size = node.out_size or 1
            st = _VecState(size, itemsize_of(node.out_dtype))
            state[node.id] = st
        return st

    def skel_ops(skel):
        ops = (skel._ops_override if skel._ops_override is not None
               else skel.user.op_count + 2.0)
        return ops * factor

    def skel_bytes(skel, in_itemsizes, out_itemsize):
        if skel._bytes_override is not None:
            return skel._bytes_override
        return (sum(in_itemsizes) + out_itemsize
                + skel.extras_bytes_per_item())

    per_step = []
    for step in plan.steps:
        t0 = max([clock["host"]] + qfree + lfree)
        _predict_step(step, state, state_of, parts_of,
                      make_host_consistent, on_device, h2d, d2h_wait,
                      launch, call_overhead, clock,
                      skel_ops, skel_bytes, itemsize_of, nd, factor,
                      Distribution, np, LOCAL_REDUCE_ITEMS,
                      HOST_OP_TIME_S)
        per_step.append((step.label,
                         max([clock["host"]] + qfree + lfree) - t0))

    makespan = max([clock["host"]] + qfree + lfree)
    return PlanCost(makespan_s=makespan, per_step=per_step)


def _predict_step(step, state, state_of, parts_of, make_host_consistent,
                  on_device, h2d, d2h_wait, launch, call_overhead, clock,
                  skel_ops, skel_bytes, itemsize_of, nd, factor,
                  Distribution, np, LOCAL_REDUCE_ITEMS, HOST_OP_TIME_S):
    skel = step.skeleton
    kind = step.kind

    if kind == "redistribute":
        st = state_of(step.inputs[0])
        target = step.dist
        if st.dist is not None and st.dist.same_layout(target):
            st.dist = target
        else:
            make_host_consistent(st)
            st.dev_t = {}
            st.dist = target
        state[step.node.id] = st
        return

    in_st = state_of(step.inputs[0])

    if kind in ("map", "zip"):
        call_overhead(extra_args=len(step.extras))
        states = [in_st]
        if kind == "zip":
            states.append(state_of(step.inputs[1]))
        for st in states:
            if st.dist is None:
                st.dist = Distribution.block()
        if kind == "zip" and not states[0].dist.same_layout(
                states[1].dist):
            for st in states:
                make_host_consistent(st)
                st.dev_t = {}
                st.dist = Distribution.block()
        out_itemsize = itemsize_of(skel.out_dtype, 0)
        out_st = _VecState(step.node.out_size or in_st.size,
                           out_itemsize or 8, in_st.dist, host_t=None)
        ops = skel_ops(skel)
        bpi = skel_bytes(skel, [s.itemsize for s in states],
                         out_itemsize)
        for d, off, length in parts_of(in_st):
            ready = max(on_device(st, d, length) for st in states)
            end = launch(d, length * skel.scale_factor, ops, bpi,
                         ready=ready)
            if skel.out_dtype is not None:
                out_st.dev_t[d] = end
        if skel.out_dtype is not None:
            state[step.node.id] = out_st
        return

    if kind in ("reduce", "map_reduce"):
        call_overhead()
        if step.rules and "reduce_split" in step.rules:
            inner = skel.inner
            make_host_consistent(in_st)
            spread = _VecState(in_st.size, in_st.itemsize,
                               Distribution.block(), host_t=in_st.host_t)
            in_st = spread
        else:
            inner = skel
        if in_st.dist is None:
            in_st.dist = Distribution.block()
        if kind == "map_reduce":
            from repro.skelcl.fusion import _map_op_count
            op_count = (_map_op_count(skel.map_skel)
                        + skel.reduce_skel.user.op_count)
            red = skel.reduce_skel
            in_itemsize = skel.map_skel.in_dtype.itemsize
        else:
            red = inner
            op_count = red.user.op_count
            in_itemsize = in_st.itemsize
        itemsize = red.elem_dtype.itemsize
        pending = []
        for d, off, length in parts_of(in_st):
            ready = on_device(in_st, d, length)
            items = min(LOCAL_REDUCE_ITEMS, length)
            chunk = -(-length // items)
            ops = (op_count + 2.0) * chunk * factor
            end = launch(d, items, ops, float(in_itemsize * chunk),
                         ready=ready)
            pending.append((d, end))
        for d, end in pending:
            d2h_wait(d, itemsize, ready=end)
        k = len(pending)
        clock["host"] += HOST_OP_TIME_S * max(k - 1, 0)
        out_st = _VecState(1, itemsize, Distribution.single(0),
                           host_t=clock["host"])
        state[step.node.id] = out_st
        return

    if kind in ("scan", "map_scan"):
        call_overhead()
        if in_st.dist is None or in_st.dist.kind != "block":
            make_host_consistent(in_st)
            in_st.dev_t = {}
            in_st.dist = Distribution.block()
        if kind == "map_scan":
            from repro.skelcl.fusion import _map_op_count
            op_count = (_map_op_count(skel.map_skel)
                        + skel.scan_skel.user.op_count)
            base = skel.scan_skel
            in_itemsize = skel.map_skel.in_dtype.itemsize
        else:
            base = skel
            op_count = base.user.op_count
            in_itemsize = in_st.itemsize
        itemsize = base.elem_dtype.itemsize
        out_st = _VecState(in_st.size, itemsize, Distribution.block(),
                           host_t=None)
        active = []
        for d, off, length in parts_of(in_st):
            ready = on_device(in_st, d, length)
            ops = (op_count + 2.0) * length * factor
            end = launch(d, 1, ops,
                         float((in_itemsize + itemsize) * length),
                         ready=ready)
            out_st.dev_t[d] = end
            active.append((d, length, end))
        for d, length, end in active:
            d2h_wait(d, itemsize, ready=end)
        for i, (d, length, _end) in enumerate(active):
            if i == 0:
                continue
            ops = (base.user.op_count + 2.0) * factor
            out_st.dev_t[d] = launch(d, length, ops,
                                     float(2 * itemsize),
                                     ready=out_st.dev_t[d])
        state[step.node.id] = out_st
        return

    if kind in ("map_overlap", "overlap_chain"):
        call_overhead(extra_args=len(step.extras))
        if in_st.dist is None or in_st.dist.kind != "block":
            make_host_consistent(in_st)
            in_st.dev_t = {}
            in_st.dist = Distribution.block()
        make_host_consistent(in_st)  # host_view() for halos
        if kind == "overlap_chain":
            o1, o2 = skel.first, skel.second
            stages = [(o1, o2.radius), (o2, 0)]
        else:
            stages = [(skel, 0)]
        out_itemsize = stages[-1][0].out_dtype.itemsize
        out_st = _VecState(in_st.size, out_itemsize,
                           Distribution.block(), host_t=None)
        from repro.skelcl.fusion import _map_op_count
        n = in_st.size
        for d, off, length in parts_of(out_st):
            first, ext0 = stages[0]
            total_r = sum(s.radius for s, _ in stages)
            end = h2d(d, (length + 2 * total_r) * first.elem_dtype.itemsize,
                      ready=in_st.host_t)
            for stage, extra_range in stages:
                w = 2 * stage.radius + 1
                items = length + 2 * extra_range
                ops = (_map_op_count(stage) + 2.0 + w) * factor
                bpi = float(stage.elem_dtype.itemsize * w
                            + stage.out_dtype.itemsize)
                end = launch(d, items, ops, bpi, ready=end)
            out_st.dev_t[d] = end
        state[step.node.id] = out_st
        return

    # unknown kinds cost nothing (conservative)  # pragma: no cover
    return


def throughput_items_per_s(spec: DeviceSpec,
                           cost: UserFunctionCost) -> float:
    """Sustained per-element throughput, ignoring launch overhead.

    This is the weight the static scheduler assigns a device when
    splitting a data-parallel workload.
    """
    large_n = 1 << 22
    t = kernel_duration(spec, KernelCost(large_n, cost.ops_per_item,
                                         cost.bytes_per_item))
    t -= spec.kernel_launch_overhead_s
    return large_n / t


# ---------------------------------------------------------------------------
# stream-window costing (repro.stream / repro profile --stream)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StreamCost:
    """Predicted steady-state profile of one stream plan template.

    One window's latency is the cached plan's predicted makespan
    (:func:`predict_plan` — warm caches, which is exactly the
    template's steady state: planned, verified and compiled once,
    re-executed per window).  Sustained throughput assumes windows
    execute back-to-back, which the pull-based stream engine
    guarantees whenever the source keeps up.
    """

    window_items: int
    window_latency_s: float
    sustained_items_per_s: float


def predict_stream(plan, ctx, window_items: int,
                   step_items: int | None = None) -> StreamCost:
    """Price one window of a cached stream plan template.

    Args:
        plan: the template's optimized, verified plan.
        ctx: the SkelCL context the template executes on.
        window_items: elements per window.
        step_items: elements the window advances per execution
            (sliding windows re-process ``window - step`` elements, so
            sustained throughput counts only *new* elements).
    """
    makespan = predict_plan(plan, ctx).makespan_s
    advance = step_items if step_items else window_items
    sustained = advance / makespan if makespan > 0 else float("inf")
    return StreamCost(window_items=int(window_items),
                      window_latency_s=makespan,
                      sustained_items_per_s=sustained)
