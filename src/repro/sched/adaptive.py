"""Adaptive workload refinement — extension of the static scheduler.

The paper's scheduler is static ("Currently, SkelCL employs a static
scheduling approach...").  Iterative applications like OSEM execute the
same skeletons hundreds of times, so an obvious refinement — and the
natural next step the paper's wording implies — is to correct the
weights from *observed* per-device execution times: after each
execution, a device's measured throughput (elements per second)
updates its weight through an exponential moving average.

The result converges to the balanced split even when the initial
analytical estimate is off (wrong op count for the user function,
unknown device characteristics).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SchedulerError
from repro.ocl.device import Device
from repro.sched.perf_model import UserFunctionCost, \
    throughput_items_per_s
from repro.sched.static_scheduler import WeightedBlockDistribution
from repro.util.timeline import Timeline


class AdaptiveScheduler:
    """Refines per-device weights from observed execution times.

    Args:
        devices: the devices to schedule over.
        cost: analytical starting point (may be wrong; it only seeds
            the first split).
        smoothing: EMA factor for new observations in (0, 1]; 1.0
            replaces the weight outright, small values adapt slowly.
    """

    def __init__(self, devices: Sequence[Device],
                 cost: UserFunctionCost | None = None,
                 smoothing: float = 0.5) -> None:
        if not devices:
            raise SchedulerError("no devices to schedule over")
        if not 0.0 < smoothing <= 1.0:
            raise SchedulerError(f"invalid smoothing {smoothing}")
        self.devices = list(devices)
        self.smoothing = smoothing
        if cost is not None:
            self.weights = [throughput_items_per_s(d.spec, cost)
                            for d in self.devices]
        else:
            self.weights = [1.0] * len(self.devices)
        self.observations = 0

    def distribution(self) -> WeightedBlockDistribution:
        """The current weighted block distribution."""
        return WeightedBlockDistribution(self.weights)

    def observe(self, lengths: Sequence[int],
                seconds: Sequence[float]) -> None:
        """Update weights from one execution's measurements.

        Args:
            lengths: elements each device processed.
            seconds: each device's measured busy time (0 for idle
                devices, which keep their current weight).
        """
        if len(lengths) != len(self.devices) \
                or len(seconds) != len(self.devices):
            raise SchedulerError(
                "observation must cover every scheduled device")
        for i, (length, t) in enumerate(zip(lengths, seconds)):
            if length <= 0 or t <= 0:
                continue
            measured = length / t
            self.weights[i] = ((1 - self.smoothing) * self.weights[i]
                               + self.smoothing * measured)
        self.observations += 1

    def observe_from_timeline(self, timeline: Timeline,
                              lengths: Sequence[int],
                              since: float = 0.0) -> None:
        """Convenience: read per-device kernel busy time off the
        virtual timeline (spans after *since* on each dev queue)."""
        seconds = []
        for device in self.devices:
            busy = sum(s.duration for s in timeline.spans
                       if s.resource == device.queue_resource.name
                       and s.start >= since
                       and s.label.startswith(("kernel:", "cuda:")))
            seconds.append(busy)
        self.observe(lengths, seconds)

    def export_weights(self) -> list[float]:
        """Snapshot of the current weights (for persistence)."""
        return list(self.weights)

    def import_weights(self, weights: Sequence[float]) -> None:
        """Restore previously exported weights."""
        if len(weights) != len(self.devices):
            raise SchedulerError(
                "weight snapshot does not cover every scheduled device")
        self.weights = [float(w) for w in weights]

    def imbalance(self, lengths: Sequence[int],
                  seconds: Sequence[float]) -> float:
        """max/min per-device time ratio for one execution (1.0 = perfectly
        balanced)."""
        times = [t for t, l in zip(seconds, lengths) if l > 0 and t > 0]
        if len(times) < 2:
            return 1.0
        return max(times) / min(times)


class WeightStore:
    """Per-kernel adaptive weights persisting across graph evaluations.

    The deferred execution engine (:mod:`repro.graph`) evaluates a
    pipeline many times over the lifetime of an application; each
    evaluation is a fresh plan, so per-call scheduler state would start
    from the analytical guess every time.  The store keys an
    :class:`AdaptiveScheduler` by kernel identity (the user-function
    source), letting the EMA-refined weights learned in one evaluation
    seed the split of the next — graph-aware weight reuse.
    """

    def __init__(self, smoothing: float = 0.5) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise SchedulerError(f"invalid smoothing {smoothing}")
        self.smoothing = smoothing
        self._schedulers: dict[tuple, AdaptiveScheduler] = {}

    def scheduler_for(self, key: str, devices: Sequence[Device],
                      cost: UserFunctionCost | None = None
                      ) -> AdaptiveScheduler:
        """The persistent scheduler for *key* on *devices* (created on
        first use; the same key on a different device set gets its own
        scheduler, since weights are positional per device)."""
        full_key = (key, tuple(d.queue_resource.name for d in devices))
        scheduler = self._schedulers.get(full_key)
        if scheduler is None:
            scheduler = AdaptiveScheduler(devices, cost=cost,
                                          smoothing=self.smoothing)
            self._schedulers[full_key] = scheduler
        return scheduler

    def __len__(self) -> int:
        return len(self._schedulers)

    def snapshot(self) -> dict[str, list[float]]:
        """Kernel key -> current weights, for inspection/reporting."""
        return {key: sched.export_weights()
                for (key, _devices), sched in self._schedulers.items()}
