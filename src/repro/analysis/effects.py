"""Interprocedural effect summaries for compiled kernels.

This is the bridge between the per-kernel access classification of
:mod:`repro.clc.analysis.access` and the whole-pipeline verifier: every
kernel exports, per pointer argument, the *region* of elements it may
read, write or atomically update, expressed relative to the work item's
own global index.

The region lattice is deliberately tiny::

    empty  <  window(lo, hi)  <  all

``window(lo, hi)`` means "element ``gid + d`` for some ``lo <= d <= hi``"
— ``window(0, 0)`` is the element-aligned access every fusable map
stage must have, a stencil reads ``window(-r, r)``, and anything the
index analysis cannot bound collapses to ``all``.

Soundness hinges on an *escape check*: the access collector only
recognizes a handful of syntactic access forms (``p[i]``, ``*p``,
``atomic_op(&p[i], ...)``, and forwarding ``p``/``p +- c`` to an
earlier function of the same unit).  Any other use of a pointer
parameter — pointer locals, address-of into helpers, unrecognized
arithmetic — may hide accesses from the collector, so the whole
argument is widened to ``reads = writes = all`` and flagged imprecise.
The runtime sanitizer (:mod:`repro.analysis.sanitizer`) then checks the
*precise* summaries against reality on every launch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clc import astnodes as ast
from repro.clc.analysis.access import (AccessPattern, AccessSite,
                                       FunctionSummary, summarize_unit)
from repro.clc.builtins import ATOMIC_FUNCTIONS, BUILTINS
from repro.clc.types import PointerType


# ---------------------------------------------------------------------------
# Region lattice
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Region:
    """A set of element offsets relative to the own global index."""

    kind: str  # "empty" | "window" | "all"
    lo: int = 0
    hi: int = 0

    # -- constructors -------------------------------------------------------

    @classmethod
    def empty(cls) -> "Region":
        return cls("empty")

    @classmethod
    def own(cls) -> "Region":
        return cls("window", 0, 0)

    @classmethod
    def window(cls, lo: int, hi: int) -> "Region":
        return cls("window", min(lo, hi), max(lo, hi))

    @classmethod
    def all_elements(cls) -> "Region":
        return cls("all")

    # -- predicates ---------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.kind == "empty"

    @property
    def is_all(self) -> bool:
        return self.kind == "all"

    @property
    def is_own(self) -> bool:
        return self.kind == "window" and self.lo == 0 and self.hi == 0

    # -- lattice operations -------------------------------------------------

    def join(self, other: "Region") -> "Region":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        if self.is_all or other.is_all:
            return Region.all_elements()
        return Region("window", min(self.lo, other.lo),
                      max(self.hi, other.hi))

    def contains(self, other: "Region") -> bool:
        if other.is_empty:
            return True
        if self.is_all:
            return True
        if self.is_empty or other.is_all:
            return False
        return self.lo <= other.lo and self.hi >= other.hi

    def overlaps(self, other: "Region") -> bool:
        if self.is_empty or other.is_empty:
            return False
        if self.is_all or other.is_all:
            return True
        return self.lo <= other.hi and other.lo <= self.hi

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        if self.kind == "window":
            return {"kind": "window", "lo": self.lo, "hi": self.hi}
        return {"kind": self.kind}

    @classmethod
    def from_dict(cls, data: dict) -> "Region":
        if data["kind"] == "window":
            return cls.window(data["lo"], data["hi"])
        return cls(data["kind"])

    def __str__(self) -> str:
        if self.is_empty:
            return "∅"
        if self.is_all:
            return "all"
        if self.is_own:
            return "own"
        return f"[{self.lo:+d}, {self.hi:+d}]"


def site_region(site: AccessSite) -> Region:
    """The region one access site may touch."""
    if site.pattern is AccessPattern.NONE:
        return Region.empty()
    if site.pattern is AccessPattern.OWN_INDEX:
        return Region.own()
    if site.pattern is AccessPattern.NEIGHBORHOOD \
            and site.offset is not None:
        return Region.window(site.offset, site.offset)
    return Region.all_elements()


# ---------------------------------------------------------------------------
# Per-argument and per-kernel effects
# ---------------------------------------------------------------------------

@dataclass
class ArgEffect:
    """Read/write/atomic regions of one pointer argument."""

    name: str
    #: "global", "local" or "" (private pointer)
    address_space: str = "global"
    reads: Region = field(default_factory=Region.empty)
    writes: Region = field(default_factory=Region.empty)
    #: atomic read-modify-writes — the reduce-style effect; disjoint
    #: work items may legally hit the same element through these
    atomics: Region = field(default_factory=Region.empty)
    #: False when the escape check widened this argument
    precise: bool = True

    @property
    def effective_writes(self) -> Region:
        """Everything that may end up mutated (plain + atomic)."""
        return self.writes.join(self.atomics)

    @property
    def is_read_only(self) -> bool:
        return self.effective_writes.is_empty

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "address_space": self.address_space,
            "reads": self.reads.to_dict(),
            "writes": self.writes.to_dict(),
            "atomics": self.atomics.to_dict(),
            "precise": self.precise,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ArgEffect":
        return cls(name=data["name"],
                   address_space=data.get("address_space", "global"),
                   reads=Region.from_dict(data["reads"]),
                   writes=Region.from_dict(data["writes"]),
                   atomics=Region.from_dict(data["atomics"]),
                   precise=data.get("precise", True))


@dataclass
class KernelEffects:
    """The complete effect summary of one kernel (or helper function)."""

    kernel: str
    #: pointer-parameter name -> effect, in declaration order
    args: dict[str, ArgEffect] = field(default_factory=dict)
    #: all parameter names in declaration order (positional binding)
    param_names: list[str] = field(default_factory=list)
    has_barrier: bool = False
    uses_work_item_ids: bool = False

    @property
    def precise(self) -> bool:
        return all(a.precise for a in self.args.values())

    def arg_by_position(self, index: int) -> ArgEffect | None:
        if 0 <= index < len(self.param_names):
            return self.args.get(self.param_names[index])
        return None

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "param_names": list(self.param_names),
            "args": [a.to_dict() for a in self.args.values()],
            "has_barrier": self.has_barrier,
            "uses_work_item_ids": self.uses_work_item_ids,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KernelEffects":
        args = [ArgEffect.from_dict(a) for a in data["args"]]
        return cls(kernel=data["kernel"],
                   args={a.name: a for a in args},
                   param_names=list(data["param_names"]),
                   has_barrier=data.get("has_barrier", False),
                   uses_work_item_ids=data.get("uses_work_item_ids",
                                               False))

    def format_text(self) -> str:
        lines = [f"kernel {self.kernel}:"]
        for effect in self.args.values():
            parts = []
            if not effect.reads.is_empty:
                parts.append(f"reads {effect.reads}")
            if not effect.writes.is_empty:
                parts.append(f"writes {effect.writes}")
            if not effect.atomics.is_empty:
                parts.append(f"atomics {effect.atomics}")
            if not parts:
                parts.append("no access")
            if not effect.precise:
                parts.append("imprecise")
            space = f"__{effect.address_space} " \
                if effect.address_space else ""
            lines.append(f"  {space}{effect.name}: "
                         + ", ".join(parts))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Escape analysis
# ---------------------------------------------------------------------------

class _EscapeWalker:
    """Finds pointer parameters used outside the access forms the
    collector understands.  Computed bottom-up so forwarding a pointer
    to a helper whose own parameter escapes taints the caller too."""

    def __init__(self, pointer_params: set[str],
                 escapes_by_func: dict[str, set[str]],
                 params_by_func: dict[str, list[str]]) -> None:
        self.pointer_params = pointer_params
        self.escapes_by_func = escapes_by_func
        self.params_by_func = params_by_func
        self.escaped: set[str] = set()

    # -- statements ---------------------------------------------------------

    def stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.CompoundStmt):
            for s in stmt.body:
                self.stmt(s)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.declarators:
                if decl.init is not None:
                    self.expr(decl.init)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self.expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self.expr(stmt.cond)
            self.stmt(stmt.then)
            if stmt.otherwise is not None:
                self.stmt(stmt.otherwise)
        elif isinstance(stmt, ast.WhileStmt):
            self.expr(stmt.cond)
            self.stmt(stmt.body)
        elif isinstance(stmt, ast.DoWhileStmt):
            self.stmt(stmt.body)
            self.expr(stmt.cond)
        elif isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self.stmt(stmt.init)
            if stmt.cond is not None:
                self.expr(stmt.cond)
            if stmt.step is not None:
                self.expr(stmt.step)
            self.stmt(stmt.body)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self.expr(stmt.value)

    # -- expressions --------------------------------------------------------

    def expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Identifier):
            # a bare pointer-param use the recognized forms did not
            # absorb: the pointer flows somewhere the collector
            # cannot see
            if expr.name in self.pointer_params:
                self.escaped.add(expr.name)
            return
        if isinstance(expr, ast.Index):
            if not isinstance(expr.base, ast.Identifier):
                self.expr(expr.base)
            self.expr(expr.index)
            return
        if isinstance(expr, ast.Unary):
            if expr.op == "*" and isinstance(expr.operand,
                                             ast.Identifier):
                return  # *p is a recorded access
            if expr.op == "&" and isinstance(expr.operand, ast.Index) \
                    and isinstance(expr.operand.base, ast.Identifier):
                # &p[e] materializes an interior pointer the collector
                # cannot track (the atomic_op(&p[i], ...) form is
                # absorbed by call() before we get here)
                base = expr.operand.base.name
                if base in self.pointer_params:
                    self.escaped.add(base)
                self.expr(expr.operand.index)
                return
            self.expr(expr.operand)
            return
        if isinstance(expr, ast.Assign):
            self.expr(expr.target)
            self.expr(expr.value)
            return
        if isinstance(expr, (ast.PreIncDec, ast.PostIncDec)):
            self.expr(expr.operand)
            return
        if isinstance(expr, ast.Call):
            self.call(expr)
            return
        if isinstance(expr, ast.Member):
            self.expr(expr.base)
            return
        if isinstance(expr, ast.Binary):
            self.expr(expr.left)
            self.expr(expr.right)
            return
        if isinstance(expr, ast.Ternary):
            self.expr(expr.cond)
            self.expr(expr.then)
            self.expr(expr.otherwise)
            return
        if isinstance(expr, ast.Cast):
            self.expr(expr.operand)
            return

    def call(self, expr: ast.Call) -> None:
        if expr.name in ATOMIC_FUNCTIONS and expr.args:
            first = expr.args[0]
            if isinstance(first, ast.Unary) and first.op == "&" \
                    and isinstance(first.operand, ast.Index) \
                    and isinstance(first.operand.base, ast.Identifier):
                self.expr(first.operand.index)
            else:
                self.expr(first)
            for arg in expr.args[1:]:
                self.expr(arg)
            return
        callee_params = self.params_by_func.get(expr.name)
        callee_escapes = self.escapes_by_func.get(expr.name, set())
        for pos, arg in enumerate(expr.args):
            name, other = self._forwarded_pointer(arg)
            if name is not None:
                # forwarding p / p +- c: sound only when the callee is
                # a summarized unit function whose parameter does not
                # itself escape (builtins never take our pointers)
                if callee_params is None \
                        or pos >= len(callee_params) \
                        or callee_params[pos] in callee_escapes:
                    self.escaped.add(name)
                if other is not None:
                    self.expr(other)
                continue
            self.expr(arg)
        if expr.name not in self.params_by_func \
                and expr.name not in BUILTINS \
                and expr.name not in ATOMIC_FUNCTIONS:
            # unknown callee: nothing to do — pointer args were either
            # matched above (and escaped via callee_params None) or
            # walked generically
            pass

    def _forwarded_pointer(self, arg: ast.Expr
                           ) -> tuple[str | None, ast.Expr | None]:
        """Mirror of the collector's ``_pointer_argument`` shapes:
        returns (param name, leftover offset expr) for ``p`` and
        ``p +- c`` forms, (None, None) otherwise."""
        if isinstance(arg, ast.Identifier) \
                and arg.name in self.pointer_params:
            return arg.name, None
        if isinstance(arg, ast.Binary) and arg.op in ("+", "-"):
            if isinstance(arg.left, ast.Identifier) \
                    and arg.left.name in self.pointer_params:
                return arg.left.name, arg.right
            if arg.op == "+" and isinstance(arg.right, ast.Identifier) \
                    and arg.right.name in self.pointer_params:
                return arg.right.name, arg.left
        return None, None


def _escape_map(unit: ast.TranslationUnit) -> dict[str, set[str]]:
    """Per function: parameter names whose accesses may be hidden."""
    escapes: dict[str, set[str]] = {}
    params: dict[str, list[str]] = {}
    for func in unit.functions:
        pointer_params = {p.name for p in func.params
                          if isinstance(p.ctype, PointerType)}
        walker = _EscapeWalker(pointer_params, escapes, params)
        if func.body is not None:
            walker.stmt(func.body)
        escapes[func.name] = walker.escaped
        params[func.name] = [p.name for p in func.params]
    return escapes


# ---------------------------------------------------------------------------
# Building effects from summaries
# ---------------------------------------------------------------------------

def function_effects(func: ast.FunctionDef, summary: FunctionSummary,
                     escaped: set[str]) -> KernelEffects:
    """Fold a function's access summary into per-argument regions."""
    effects = KernelEffects(kernel=func.name,
                            param_names=[p.name for p in func.params],
                            has_barrier=summary.has_barrier,
                            uses_work_item_ids=summary.uses_work_item_ids)
    for param in func.params:
        if not isinstance(param.ctype, PointerType):
            continue
        space = param.address_space or "global"
        space = space.replace("__", "")
        effect = ArgEffect(name=param.name, address_space=space)
        access = summary.param_access.get(param.name)
        for site in (access.sites if access else ()):
            region = site_region(site)
            if site.atomic:
                effect.atomics = effect.atomics.join(region)
            elif site.is_write:
                effect.writes = effect.writes.join(region)
            else:
                effect.reads = effect.reads.join(region)
        if param.name in escaped:
            effect.reads = Region.all_elements()
            if not param.is_const:
                effect.writes = Region.all_elements()
            effect.precise = False
        effects.args[param.name] = effect
    return effects


def unit_effects(unit: ast.TranslationUnit,
                 summaries: dict[str, FunctionSummary] | None = None
                 ) -> dict[str, KernelEffects]:
    """Effect summaries for every function of a translation unit."""
    summaries = summaries or summarize_unit(unit)
    escapes = _escape_map(unit)
    effects: dict[str, KernelEffects] = {}
    for func in unit.functions:
        summary = summaries.get(func.name)
        if summary is None:
            continue
        effects[func.name] = function_effects(
            func, summary, escapes.get(func.name, set()))
    return effects


#: process-wide cache keyed by kernel source text
_SOURCE_CACHE: dict[str, dict[str, KernelEffects]] = {}


def source_effects(source: str) -> dict[str, KernelEffects]:
    """Effect summaries for every function of *source* (cached).

    Raises :class:`repro.errors.ClcError` when the source does not
    compile — callers on verification paths should treat that as
    "no summary available" rather than a verification failure.
    """
    cached = _SOURCE_CACHE.get(source)
    if cached is None:
        from repro import clc
        unit = clc.parse(source)
        clc.typecheck(unit)
        cached = unit_effects(unit)
        _SOURCE_CACHE[source] = cached
    return cached


def kernel_effects(kernel) -> KernelEffects | None:
    """Effect summary for a launchable :class:`repro.ocl.Kernel`.

    Source kernels summarize their compiled translation unit (cached
    per program).  Native kernels have no analyzable body; their
    ``const_args`` declaration still yields a checkable summary —
    const pointers read-only, everything else conservatively
    read/write-all and imprecise.
    """
    program = getattr(kernel, "program", None)
    if program is None or not hasattr(kernel, "params"):
        return None
    cache = getattr(program, "_kernel_effects", None)
    if cache is None:
        cache = {}
        program._kernel_effects = cache
    cached = cache.get(kernel.name)
    if cached is not None:
        return cached
    if kernel.native:
        effects = KernelEffects(kernel=kernel.name,
                                param_names=[p.name
                                             for p in kernel.params])
        for param in kernel.params:
            if not param.is_pointer:
                continue
            if param.is_const:
                effects.args[param.name] = ArgEffect(
                    name=param.name, reads=Region.all_elements())
            else:
                effects.args[param.name] = ArgEffect(
                    name=param.name, reads=Region.all_elements(),
                    writes=Region.all_elements(), precise=False)
        cache[kernel.name] = effects
        return effects
    compiled = getattr(program, "compiled", None)
    if compiled is None:
        return None
    unit = compiled.unit
    effects = unit_effects(unit).get(kernel.name)
    if effects is not None:
        cache[kernel.name] = effects
    return effects
