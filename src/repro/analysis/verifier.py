"""Independent re-verification of optimized graph plans.

:func:`verify_plan` takes the :class:`repro.graph.passes.Plan` an
evaluation is about to execute and *re-proves* every rewrite the
optimization passes applied, from scratch, against the captured graph
and the kernel effect summaries (:mod:`repro.analysis.effects`).  It
shares no decision logic with the passes — the passes transform, the
verifier propagates demanded values and access regions over the
original DAG and checks that the transformed plan still computes them.
Unsound plans are rejected with structured diagnostics (the ``PLAN``
check family) before any kernel runs.

The individual proofs:

- ``PLAN001`` *fusion* — a fused step must correspond to a linear
  map/zip chain in the graph whose stages are element-aligned: the
  primary input is only read at the own index, the output only written
  at the own index, dtypes match across stage boundaries, and no
  additional-argument vector written by one stage is visible to
  another (interleaving per element instead of per pass would change
  its meaning).
- ``PLAN002`` *redistribution elision* — wherever a step consumes a
  value across an elided redistribute, every skipped hop must be a
  provable no-op (the layout its input already has), or — for a
  redistribute step — a chain collapse whose final step re-establishes
  the layout without a data-changing combine in between.  Recorded
  ``plan.aliases`` must alias nodes to values with provably identical
  distribution.
- ``PLAN003`` *demand* — every root is produced: executed by some
  step, already materialized, or soundly aliased.
- ``PLAN004`` *dataflow* — steps are ordered so every input exists
  when its consumer runs (this is also what catches a fusion that
  swallowed a value some other step still reads).
- ``PLAN005`` (note) — nodes eliminated although a live handle exists;
  legal because handles replay their captured call chain on demand.
"""

from __future__ import annotations

from repro.clc.analysis.diagnostics import (CHECKS, AnalysisReport,
                                            Diagnostic)
from repro.errors import ClcError, PlanVerificationError
from repro.analysis.effects import KernelEffects, source_effects


def _diag(report: AnalysisReport, check_id: str, message: str,
          function: str = "") -> None:
    severity = CHECKS[check_id][0]
    report.add(Diagnostic(check_id=check_id, severity=severity,
                          message=message, function=function))


# ---------------------------------------------------------------------------
# independent distribution inference (eager semantics over the graph)
# ---------------------------------------------------------------------------

def _graph_distributions(graph) -> dict[int, object]:
    """What eager execution would give each node as distribution.

    Follows the eager resolution rules of the skeletons over the
    *captured graph* (not the plan), so a plan rewired through bogus
    edges disagrees with this map and fails verification.
    """
    from repro.skelcl.distribution import Distribution

    block = Distribution.block()
    dist: dict[int, object] = {}
    for node in graph.nodes:
        if node.value is not None:
            dist[node.id] = node.value.distribution
            continue
        if node.kind == "redistribute":
            dist[node.id] = node.dist
        elif node.kind == "map":
            dist[node.id] = dist.get(node.inputs[0].id) or block
        elif node.kind == "zip":
            ld = dist.get(node.inputs[0].id)
            rd = dist.get(node.inputs[1].id)
            if ld is None and rd is None:
                dist[node.id] = block
            elif ld is None:
                dist[node.id] = rd
            elif rd is None:
                dist[node.id] = ld
            else:
                dist[node.id] = ld if ld.same_layout(rd) else block
        elif node.kind == "reduce":
            dist[node.id] = Distribution.single(0)
        elif node.kind == "scan":
            dist[node.id] = block
        else:
            dist[node.id] = None
    return dist


def _same_distribution(a, b) -> bool:
    if a is None or b is None:
        return False
    return a.same_layout(b) and a.combine is b.combine


def _combine_changes_data(hop, dist_map) -> bool:
    """Can eagerly executing redistribute *hop* change logical data?

    Only a combine-carrying target applied to a copy-distributed input
    with potentially divergent device copies merges values; skipping
    such a hop is not value-preserving."""
    target = hop.dist
    if target is None or getattr(target, "combine", None) is None:
        return False
    source = dist_map.get(hop.inputs[0].id)
    return source is not None and getattr(source, "kind", "") == "copy"


# ---------------------------------------------------------------------------
# kernel-source alignment checks (fusion)
# ---------------------------------------------------------------------------

_PRIMARY_INPUTS = ("skelcl_in", "skelcl_lhs", "skelcl_rhs")


def _stage_effects(node) -> KernelEffects | None:
    """Effect summary of one chain stage's standalone kernel."""
    skeleton = node.skeleton
    source = getattr(skeleton, "kernel_source", None)
    if source is None:
        return None
    kernel_name = "skelcl_zip" if node.kind == "zip" else "skelcl_map"
    return source_effects(source).get(kernel_name)


def _check_stage_alignment(report: AnalysisReport, node,
                           effects: KernelEffects, label: str) -> None:
    """Element alignment of one fused stage's primary input/output."""
    for name in _PRIMARY_INPUTS:
        effect = effects.args.get(name)
        if effect is None:
            continue
        if not effect.effective_writes.is_empty:
            _diag(report, "PLAN001",
                  f"stage {label}: primary input {name} is written "
                  f"({effect.effective_writes})", function=node.label)
        if not (effect.reads.is_empty or effect.reads.is_own):
            _diag(report, "PLAN001",
                  f"stage {label}: primary input {name} is read at "
                  f"{effect.reads}, not only the own index — fusing "
                  "would read elements the producer has not computed "
                  "yet", function=node.label)
        if not effect.precise:
            _diag(report, "PLAN001",
                  f"stage {label}: accesses of {name} cannot be "
                  "bounded (pointer escapes the analysis)",
                  function=node.label)
    out = effects.args.get("skelcl_out")
    if out is not None:
        if not (out.effective_writes.is_empty
                or out.effective_writes.is_own):
            _diag(report, "PLAN001",
                  f"stage {label}: output written at "
                  f"{out.effective_writes}, not only the own index",
                  function=node.label)
        if not out.reads.is_empty:
            _diag(report, "PLAN001",
                  f"stage {label}: output is also read ({out.reads}); "
                  "fused execution would observe partial results",
                  function=node.label)
        if not out.precise:
            _diag(report, "PLAN001",
                  f"stage {label}: writes of skelcl_out cannot be "
                  "bounded (pointer escapes the analysis)",
                  function=node.label)


def _written_extras(node, effects: KernelEffects) -> list[tuple]:
    """(extra value, effect) pairs for written/read pointer extras."""
    written, read = [], []
    reserved = set(_PRIMARY_INPUTS) | {"skelcl_out", "skelcl_n"}
    extra_names = [name for name in effects.param_names
                   if name not in reserved]
    for name, value in zip(extra_names, node.extras):
        effect = effects.args.get(name)
        if effect is None:
            continue
        if not effect.effective_writes.is_empty:
            written.append((name, value, effect))
        elif not effect.reads.is_empty:
            read.append((name, value, effect))
    return written, read


def _check_fused_step(report: AnalysisReport, plan, dist_map, step,
                      executed: set[int]) -> None:
    chain = list(step.fused_from)
    label = step.label

    # 1. re-derive chain linearity from the graph itself (the edge
    # from one stage to the next may pass through elided redistributes
    # — those hops then need the same justification as any rewired
    # plan edge)
    for prev, nxt in zip(chain, chain[1:]):
        if nxt.kind != "map":
            _diag(report, "PLAN001",
                  f"{label}: stage {nxt.label} is a {nxt.kind}; only "
                  "unary maps compose past the head", function=label)
        if not nxt.inputs:
            _diag(report, "PLAN001",
                  f"{label}: stage {nxt.label} has no primary input — "
                  "the fused chain does not exist in the graph",
                  function=label)
        elif nxt.inputs[0] is not prev:
            _justify_forward(report, plan, dist_map, executed,
                             nxt.inputs[0], prev, label,
                             consumer_is_redistribute=False)
        if any(extra is prev for extra in nxt.extras):
            _diag(report, "PLAN001",
                  f"{label}: stage {nxt.label} also reads "
                  f"{prev.label} as an additional argument",
                  function=label)

    # 2. interior values must not be demanded by the plan
    for interior in chain[:-1]:
        if interior.id in plan.root_ids:
            _diag(report, "PLAN001",
                  f"{label}: interior stage {interior.label} is a "
                  "root; fusing it away loses a demanded value",
                  function=label)
        if interior.out is not None:
            _diag(report, "PLAN001",
                  f"{label}: interior stage {interior.label} writes "
                  "an explicit out= vector", function=label)

    # 3. dtype continuity across stage boundaries
    for prev, nxt in zip(chain, chain[1:]):
        prev_dtype = getattr(prev.skeleton, "out_dtype", None)
        nxt_dtype = getattr(nxt.skeleton, "in_dtype", None)
        if prev_dtype is None:
            _diag(report, "PLAN001",
                  f"{label}: stage {prev.label} returns void but has "
                  "a successor", function=label)
        elif prev_dtype != nxt_dtype:
            _diag(report, "PLAN001",
                  f"{label}: {prev.label} produces {prev_dtype} but "
                  f"{nxt.label} consumes {nxt_dtype}", function=label)

    # 4. per-stage element alignment and cross-stage extra conflicts
    all_written: list[tuple[int, str, object]] = []
    all_read: list[tuple[int, str, object]] = []
    for pos, node in enumerate(chain):
        stage_label = node.label
        try:
            effects = _stage_effects(node)
        except ClcError as exc:
            _diag(report, "PLAN001",
                  f"{label}: stage {stage_label} kernel source does "
                  f"not analyze: {exc}", function=label)
            continue
        if effects is None:
            _diag(report, "PLAN001",
                  f"{label}: stage {stage_label} has no analyzable "
                  "kernel source", function=label)
            continue
        _check_stage_alignment(report, node, effects, stage_label)
        written, read = _written_extras(node, effects)
        for name, value, effect in written:
            if len(chain) > 1 and not effect.effective_writes.is_own:
                _diag(report, "PLAN001",
                      f"{label}: stage {stage_label} writes extra "
                      f"{name!r} at {effect.effective_writes}; only "
                      "own-index extra writes survive per-element "
                      "interleaving", function=label)
            all_written.append((pos, name, value))
        for name, value, _effect in read:
            all_read.append((pos, name, value))
    for wpos, wname, wvalue in all_written:
        for rpos, rname, rvalue in all_written + all_read:
            if rpos == wpos:
                continue
            if rvalue is wvalue and wvalue is not None:
                _diag(report, "PLAN001",
                      f"{label}: extra {wname!r} written by stage "
                      f"{wpos} is also accessed (as {rname!r}) by "
                      f"stage {rpos}; fusion would interleave the "
                      "passes per element", function=label)


# ---------------------------------------------------------------------------
# elision justification
# ---------------------------------------------------------------------------

def _justify_forward(report: AnalysisReport, plan, dist_map,
                     executed: set[int], graph_input, plan_input,
                     consumer_label: str,
                     consumer_is_redistribute: bool) -> None:
    """Prove ``value(plan_input)`` may stand in for
    ``value(graph_input)`` at one consumer edge."""
    hops = []
    cur = graph_input
    while cur is not plan_input:
        if cur.kind != "redistribute" or cur.id in executed \
                or cur.value is not None or not cur.inputs:
            _diag(report, "PLAN002",
                  f"{consumer_label}: rewired input skips "
                  f"{cur.label}, which is not an elidable "
                  "redistribute", function=consumer_label)
            return
        hops.append(cur)
        cur = cur.inputs[0]
    if not hops:
        return
    # no skipped hop may merge divergent copies — that would change
    # data, which no later redistribute can undo
    for hop in hops:
        if _combine_changes_data(hop, dist_map):
            _diag(report, "PLAN002",
                  f"{consumer_label}: skipped redistribute "
                  f"{hop.label} combines divergent copies; eliding "
                  "it changes data", function=consumer_label)
    if consumer_is_redistribute:
        # chain collapse: the consumer re-establishes the layout itself
        return
    # a plain consumer expected the layout the graph edge produces:
    # the substituted value must provably already have it
    expected = hops[0].dist
    if not _same_distribution(dist_map.get(plan_input.id), expected):
        _diag(report, "PLAN002",
              f"{consumer_label}: elided {hops[0].label} but "
              f"{plan_input.label}'s distribution does not provably "
              "match the target layout", function=consumer_label)


def _check_aliases(report: AnalysisReport, plan, dist_map,
                   executed: set[int]) -> None:
    for node, source in plan.aliases:
        label = f"alias({node.label})"
        if node.kind != "redistribute":
            _diag(report, "PLAN002",
                  f"{label}: only elided redistributes may be "
                  f"aliased, not a {node.kind} node", function=label)
            continue
        # value equality: every hop from the node down to the alias
        # source must be a no-op redistribute (including the node)
        hops = []
        cur = node
        ok = True
        while cur is not source:
            if cur.kind != "redistribute" or cur.id in executed \
                    or not cur.inputs:
                _diag(report, "PLAN002",
                      f"{label}: aliased across {cur.label}, which "
                      "is not an elided redistribute", function=label)
                ok = False
                break
            hops.append(cur)
            cur = cur.inputs[0]
        if not ok:
            continue
        if not _same_distribution(dist_map.get(source.id), node.dist):
            _diag(report, "PLAN002",
                  f"{label}: aliased to {source.label} but its "
                  f"distribution does not provably match the "
                  f"redistribute target", function=label)
        for hop in hops[1:]:
            if _combine_changes_data(hop, dist_map):
                _diag(report, "PLAN002",
                      f"{label}: aliasing skips {hop.label}, which "
                      "combines divergent copies", function=label)


# ---------------------------------------------------------------------------
# demand and dataflow
# ---------------------------------------------------------------------------

def _check_demand(report: AnalysisReport, plan,
                  executed: set[int]) -> None:
    aliased = {node.id for node, _source in plan.aliases}
    for root in plan.roots:
        if root.value is not None or root.id in executed \
                or root.id in aliased or root.kind == "source":
            continue
        _diag(report, "PLAN003",
              f"root {root.label} is demanded but the plan never "
              "produces it", function=root.label)
    for node in plan.graph.nodes:
        if node.value is not None or node.id in executed \
                or node.id in aliased or node.kind == "source":
            continue
        if node.handle_alive and node.id not in plan.root_ids:
            _diag(report, "PLAN005",
                  f"{node.label} was eliminated while its handle is "
                  "alive; the handle will replay the captured call "
                  "on demand", function=node.label)


def _check_dataflow(report: AnalysisReport, plan, dist_map,
                    executed: set[int]) -> None:
    """Re-prove execution order: every consumed value exists in time.

    Also proves every rewired edge (plan input differing from the
    captured graph edge) value-preserving via
    :func:`_justify_forward`."""
    alias_source = {node.id: source for node, source in plan.aliases}
    available: set[int] = set()
    for node in plan.graph.nodes:
        if node.value is not None or node.kind == "source":
            available.add(node.id)

    def resolve(node):
        seen = set()
        while node.id in alias_source and node.id not in seen:
            seen.add(node.id)
            node = alias_source[node.id]
        return node

    for step in plan.steps:
        graph_inputs = (list(step.fused_from[0].inputs)
                        if step.fused_from else list(step.node.inputs))
        for pos, dep in enumerate(step.inputs):
            if pos < len(graph_inputs) \
                    and graph_inputs[pos] is not dep:
                _justify_forward(
                    report, plan, dist_map, executed,
                    graph_inputs[pos], dep, step.label,
                    consumer_is_redistribute=(step.kind
                                              == "redistribute"))
            if resolve(dep).id not in available:
                _diag(report, "PLAN004",
                      f"{step.label} consumes {dep.label} before any "
                      "step produces it", function=step.label)
        for extra in step.extras:
            if hasattr(extra, "id") and hasattr(extra, "kind"):
                if resolve(extra).id not in available:
                    _diag(report, "PLAN004",
                          f"{step.label} consumes extra "
                          f"{extra.label} before any step produces "
                          "it", function=step.label)
        available.add(step.node.id)
        for node in step.fused_from:
            available.add(node.id)
    # aliases resolve against whatever ran; a dangling alias source is
    # a dataflow hole too
    for node, source in plan.aliases:
        if resolve(source).id not in available:
            _diag(report, "PLAN004",
                  f"alias({node.label}) points at {source.label}, "
                  "which nothing produces", function=node.label)


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def verify_plan(plan) -> AnalysisReport:
    """Independently re-prove every optimization in *plan* legal.

    Returns an :class:`AnalysisReport`; ``report.has_errors`` means the
    plan must not execute.
    """
    report = AnalysisReport()
    executed: set[int] = set()
    for step in plan.steps:
        executed.add(step.node.id)
        executed.update(n.id for n in step.fused_from)
    dist_map = _graph_distributions(plan.graph)

    for step in plan.steps:
        if step.fused_from:
            _check_fused_step(report, plan, dist_map, step, executed)
    _check_aliases(report, plan, dist_map, executed)
    _check_demand(report, plan, executed)
    _check_dataflow(report, plan, dist_map, executed)

    for node in plan.graph.nodes:
        if node.kind in ("map", "zip") and node.skeleton is not None:
            try:
                effects = _stage_effects(node)
            except ClcError:
                continue
            if effects is not None:
                report.access_patterns.setdefault(
                    node.label,
                    {name: str(e.reads.join(e.effective_writes))
                     for name, e in effects.args.items()})
    return report


def verify_or_raise(plan) -> AnalysisReport:
    """Run :func:`verify_plan`; raise instead of executing when unsound."""
    report = verify_plan(plan)
    if report.has_errors:
        first = report.errors[0]
        raise PlanVerificationError(
            f"plan verification failed: "
            f"[{first.check_id}] {first.message} "
            f"({len(report.errors)} error(s) total)", report=report)
    return report
