"""Independent re-verification of optimized graph plans.

:func:`verify_plan` takes the :class:`repro.graph.passes.Plan` an
evaluation is about to execute and *re-proves* every rewrite the
optimization passes applied, from scratch, against the captured graph
and the kernel effect summaries (:mod:`repro.analysis.effects`).  It
shares no decision logic with the passes — the passes transform, the
verifier propagates demanded values and access regions over the
original DAG and checks that the transformed plan still computes them.
Unsound plans are rejected with structured diagnostics (the ``PLAN``
check family) before any kernel runs.

The individual proofs:

- ``PLAN001`` *fusion* — a fused step must correspond to a linear
  map/zip chain in the graph whose stages are element-aligned: the
  primary input is only read at the own index, the output only written
  at the own index, dtypes match across stage boundaries, and no
  additional-argument vector written by one stage is visible to
  another (interleaving per element instead of per pass would change
  its meaning).
- ``PLAN002`` *redistribution elision* — wherever a step consumes a
  value across an elided redistribute, every skipped hop must be a
  provable no-op (the layout its input already has), or — for a
  redistribute step — a chain collapse whose final step re-establishes
  the layout without a data-changing combine in between.  Recorded
  ``plan.aliases`` must alias nodes to values with provably identical
  distribution.
- ``PLAN003`` *demand* — every root is produced: executed by some
  step, already materialized, or soundly aliased.
- ``PLAN004`` *dataflow* — steps are ordered so every input exists
  when its consumer runs (this is also what catches a fusion that
  swallowed a value some other step still reads).
- ``PLAN005`` (note) — nodes eliminated although a live handle exists;
  legal because handles replay their captured call chain on demand.
"""

from __future__ import annotations

from repro.clc.analysis.diagnostics import (CHECKS, AnalysisReport,
                                            Diagnostic)
from repro.errors import ClcError, PlanVerificationError
from repro.analysis.effects import KernelEffects, source_effects


def _diag(report: AnalysisReport, check_id: str, message: str,
          function: str = "") -> None:
    severity = CHECKS[check_id][0]
    report.add(Diagnostic(check_id=check_id, severity=severity,
                          message=message, function=function))


# ---------------------------------------------------------------------------
# independent distribution inference (eager semantics over the graph)
# ---------------------------------------------------------------------------

def _graph_distributions(graph) -> dict[int, object]:
    """What eager execution would give each node as distribution.

    Follows the eager resolution rules of the skeletons over the
    *captured graph* (not the plan), so a plan rewired through bogus
    edges disagrees with this map and fails verification.
    """
    from repro.skelcl.distribution import Distribution

    block = Distribution.block()
    dist: dict[int, object] = {}
    for node in graph.nodes:
        if node.value is not None:
            dist[node.id] = node.value.distribution
            continue
        if node.kind == "redistribute":
            dist[node.id] = node.dist
        elif node.kind == "map":
            dist[node.id] = dist.get(node.inputs[0].id) or block
        elif node.kind == "zip":
            ld = dist.get(node.inputs[0].id)
            rd = dist.get(node.inputs[1].id)
            if ld is None and rd is None:
                dist[node.id] = block
            elif ld is None:
                dist[node.id] = rd
            elif rd is None:
                dist[node.id] = ld
            else:
                dist[node.id] = ld if ld.same_layout(rd) else block
        elif node.kind == "reduce":
            dist[node.id] = Distribution.single(0)
        elif node.kind in ("scan", "map_overlap"):
            dist[node.id] = block
        else:
            dist[node.id] = None
    return dist


def _same_distribution(a, b) -> bool:
    if a is None or b is None:
        return False
    return a.same_layout(b) and a.combine is b.combine


def _combine_changes_data(hop, dist_map) -> bool:
    """Can eagerly executing redistribute *hop* change logical data?

    Only a combine-carrying target applied to a copy-distributed input
    with potentially divergent device copies merges values; skipping
    such a hop is not value-preserving."""
    target = hop.dist
    if target is None or getattr(target, "combine", None) is None:
        return False
    source = dist_map.get(hop.inputs[0].id)
    return source is not None and getattr(source, "kind", "") == "copy"


# ---------------------------------------------------------------------------
# kernel-source alignment checks (fusion)
# ---------------------------------------------------------------------------

_PRIMARY_INPUTS = ("skelcl_in", "skelcl_lhs", "skelcl_rhs")


def _stage_effects(node) -> KernelEffects | None:
    """Effect summary of one chain stage's standalone kernel."""
    skeleton = node.skeleton
    source = getattr(skeleton, "kernel_source", None)
    if source is None:
        return None
    kernel_name = {"zip": "skelcl_zip",
                   "map_overlap": "skelcl_map_overlap"}.get(
                       node.kind, "skelcl_map")
    return source_effects(source).get(kernel_name)


def _check_stage_alignment(report: AnalysisReport, node,
                           effects: KernelEffects, label: str,
                           code: str = "PLAN001") -> None:
    """Element alignment of one fused stage's primary input/output."""
    for name in _PRIMARY_INPUTS:
        effect = effects.args.get(name)
        if effect is None:
            continue
        if not effect.effective_writes.is_empty:
            _diag(report, code,
                  f"stage {label}: primary input {name} is written "
                  f"({effect.effective_writes})", function=node.label)
        if not (effect.reads.is_empty or effect.reads.is_own):
            _diag(report, code,
                  f"stage {label}: primary input {name} is read at "
                  f"{effect.reads}, not only the own index — fusing "
                  "would read elements the producer has not computed "
                  "yet", function=node.label)
        if not effect.precise:
            _diag(report, code,
                  f"stage {label}: accesses of {name} cannot be "
                  "bounded (pointer escapes the analysis)",
                  function=node.label)
    out = effects.args.get("skelcl_out")
    if out is not None:
        if not (out.effective_writes.is_empty
                or out.effective_writes.is_own):
            _diag(report, code,
                  f"stage {label}: output written at "
                  f"{out.effective_writes}, not only the own index",
                  function=node.label)
        if not out.reads.is_empty:
            _diag(report, code,
                  f"stage {label}: output is also read ({out.reads}); "
                  "fused execution would observe partial results",
                  function=node.label)
        if not out.precise:
            _diag(report, code,
                  f"stage {label}: writes of skelcl_out cannot be "
                  "bounded (pointer escapes the analysis)",
                  function=node.label)


def _written_extras(node, effects: KernelEffects) -> list[tuple]:
    """(extra value, effect) pairs for written/read pointer extras."""
    written, read = [], []
    reserved = set(_PRIMARY_INPUTS) | {"skelcl_out", "skelcl_n"}
    extra_names = [name for name in effects.param_names
                   if name not in reserved]
    for name, value in zip(extra_names, node.extras):
        effect = effects.args.get(name)
        if effect is None:
            continue
        if not effect.effective_writes.is_empty:
            written.append((name, value, effect))
        elif not effect.reads.is_empty:
            read.append((name, value, effect))
    return written, read


def _check_fused_step(report: AnalysisReport, plan, dist_map, step,
                      executed: set[int]) -> None:
    chain = list(step.fused_from)
    label = step.label

    # 1. re-derive chain linearity from the graph itself (the edge
    # from one stage to the next may pass through elided redistributes
    # — those hops then need the same justification as any rewired
    # plan edge)
    for prev, nxt in zip(chain, chain[1:]):
        if nxt.kind != "map":
            _diag(report, "PLAN001",
                  f"{label}: stage {nxt.label} is a {nxt.kind}; only "
                  "unary maps compose past the head", function=label)
        if not nxt.inputs:
            _diag(report, "PLAN001",
                  f"{label}: stage {nxt.label} has no primary input — "
                  "the fused chain does not exist in the graph",
                  function=label)
        elif nxt.inputs[0] is not prev:
            _justify_forward(report, plan, dist_map, executed,
                             nxt.inputs[0], prev, label,
                             consumer_is_redistribute=False)
        if any(extra is prev for extra in nxt.extras):
            _diag(report, "PLAN001",
                  f"{label}: stage {nxt.label} also reads "
                  f"{prev.label} as an additional argument",
                  function=label)

    # 2. interior values must not be demanded by the plan
    for interior in chain[:-1]:
        if interior.id in plan.root_ids:
            _diag(report, "PLAN001",
                  f"{label}: interior stage {interior.label} is a "
                  "root; fusing it away loses a demanded value",
                  function=label)
        if interior.out is not None:
            _diag(report, "PLAN001",
                  f"{label}: interior stage {interior.label} writes "
                  "an explicit out= vector", function=label)

    # 3. dtype continuity across stage boundaries
    for prev, nxt in zip(chain, chain[1:]):
        prev_dtype = getattr(prev.skeleton, "out_dtype", None)
        nxt_dtype = getattr(nxt.skeleton, "in_dtype", None)
        if prev_dtype is None:
            _diag(report, "PLAN001",
                  f"{label}: stage {prev.label} returns void but has "
                  "a successor", function=label)
        elif prev_dtype != nxt_dtype:
            _diag(report, "PLAN001",
                  f"{label}: {prev.label} produces {prev_dtype} but "
                  f"{nxt.label} consumes {nxt_dtype}", function=label)

    # 4. per-stage element alignment and cross-stage extra conflicts
    all_written: list[tuple[int, str, object]] = []
    all_read: list[tuple[int, str, object]] = []
    for pos, node in enumerate(chain):
        stage_label = node.label
        try:
            effects = _stage_effects(node)
        except ClcError as exc:
            _diag(report, "PLAN001",
                  f"{label}: stage {stage_label} kernel source does "
                  f"not analyze: {exc}", function=label)
            continue
        if effects is None:
            _diag(report, "PLAN001",
                  f"{label}: stage {stage_label} has no analyzable "
                  "kernel source", function=label)
            continue
        _check_stage_alignment(report, node, effects, stage_label)
        written, read = _written_extras(node, effects)
        for name, value, effect in written:
            if len(chain) > 1 and not effect.effective_writes.is_own:
                _diag(report, "PLAN001",
                      f"{label}: stage {stage_label} writes extra "
                      f"{name!r} at {effect.effective_writes}; only "
                      "own-index extra writes survive per-element "
                      "interleaving", function=label)
            all_written.append((pos, name, value))
        for name, value, _effect in read:
            all_read.append((pos, name, value))
    for wpos, wname, wvalue in all_written:
        for rpos, rname, rvalue in all_written + all_read:
            if rpos == wpos:
                continue
            if rvalue is wvalue and wvalue is not None:
                _diag(report, "PLAN001",
                      f"{label}: extra {wname!r} written by stage "
                      f"{wpos} is also accessed (as {rname!r}) by "
                      f"stage {rpos}; fusion would interleave the "
                      "passes per element", function=label)


# ---------------------------------------------------------------------------
# rewrite-rule proof obligations (PLAN006-009)
# ---------------------------------------------------------------------------

def _other_plan_readers(plan, node, *own_steps) -> list:
    """Plan steps other than *own_steps* that read *node*'s value."""
    readers = []
    for step in plan.steps:
        if step in own_steps:
            continue
        if any(dep is node for dep in step.inputs) \
                or any(extra is node for extra in step.extras):
            readers.append(step)
    return readers


def _check_interior(report, plan, node, label, code) -> None:
    """An intermediate a rewrite computes through must be plan-internal."""
    if node.id in plan.root_ids:
        _diag(report, code,
              f"{label}: interior stage {node.label} is a root; "
              "rewriting it away loses a demanded value",
              function=label)
    if node.out is not None:
        _diag(report, code,
              f"{label}: interior stage {node.label} writes an "
              "explicit out= vector", function=label)


def _check_edge(report, plan, dist_map, executed, pushed, graph_input,
                plan_input, label) -> None:
    if graph_input is not plan_input:
        _justify_forward(report, plan, dist_map, executed, graph_input,
                         plan_input, label,
                         consumer_is_redistribute=False, pushed=pushed)


def _check_composition(report, plan, dist_map, step, executed, pushed,
                       code, prod_kind, cons_kind,
                       prod_skel, cons_skel) -> None:
    """Shared obligations of the producer-into-consumer rules: the
    rewritten step must correspond to a real two-node graph edge whose
    interior nobody else observes, with matching dtypes, built from
    the *identical* skeleton objects the graph captured."""
    label = step.label
    if len(step.rewritten_from) < 2:
        _diag(report, code,
              f"{label}: no provenance — rewritten_from does not name "
              "the composed nodes", function=label)
        return
    prod_node, cons_node = step.rewritten_from[-2], step.rewritten_from[-1]
    if cons_node is not step.node:
        _diag(report, code,
              f"{label}: provenance tail {cons_node.label} is not the "
              "step's own node", function=label)
    if prod_node.kind != prod_kind:
        _diag(report, code,
              f"{label}: composed producer {prod_node.label} is a "
              f"{prod_node.kind}, expected {prod_kind}", function=label)
    if cons_node.kind != cons_kind:
        _diag(report, code,
              f"{label}: composed consumer {cons_node.label} is a "
              f"{cons_node.kind}, expected {cons_kind}", function=label)
    if prod_skel is not prod_node.skeleton:
        _diag(report, code,
              f"{label}: fused producer skeleton is not the captured "
              f"{prod_node.label} skeleton", function=label)
    if cons_skel is not cons_node.skeleton:
        _diag(report, code,
              f"{label}: fused consumer skeleton is not the captured "
              f"{cons_node.label} skeleton", function=label)
    # the graph edge: consumer's primary input is the producer
    if not cons_node.inputs:
        _diag(report, code,
              f"{label}: {cons_node.label} has no primary input",
              function=label)
    elif cons_node.inputs[0] is not prod_node:
        _check_edge(report, plan, dist_map, executed, pushed,
                    cons_node.inputs[0], prod_node, label)
    # the step's own input is the producer's graph input
    if prod_node.inputs and step.inputs:
        _check_edge(report, plan, dist_map, executed, pushed,
                    prod_node.inputs[0], step.inputs[0], label)
    # interior unobservable: nobody else reads it, it is not demanded
    _check_interior(report, plan, prod_node, label, code)
    for reader in _other_plan_readers(plan, prod_node, step):
        _diag(report, code,
              f"{label}: {prod_node.label} is also read by "
              f"{reader.label}; composing it away loses that value",
              function=label)
    if prod_node.extras:
        _diag(report, code,
              f"{label}: composed producer {prod_node.label} carries "
              "additional arguments", function=label)
    # dtype continuity
    prod_out = getattr(prod_skel, "out_dtype", None)
    cons_in = getattr(cons_skel, "in_dtype", None) \
        or getattr(cons_skel, "elem_dtype", None)
    if prod_out is None:
        _diag(report, code,
              f"{label}: composed producer {prod_node.label} returns "
              "void", function=label)
    elif cons_in is not None and prod_out != cons_in:
        _diag(report, code,
              f"{label}: {prod_node.label} produces {prod_out} but "
              f"{cons_node.label} consumes {cons_in}", function=label)


def _check_map_into_fold(report, plan, dist_map, step, executed,
                         pushed, fold_kind, fold_cls_name) -> None:
    """map∘reduce / map∘scan (PLAN006)."""
    label = step.label
    skel = step.skeleton
    map_skel = getattr(skel, "map_skel", None)
    fold_attr = "reduce_skel" if fold_kind == "reduce" else "scan_skel"
    fold_skel = getattr(skel, fold_attr, None)
    if map_skel is None or fold_skel is None:
        _diag(report, "PLAN006",
              f"{label}: step skeleton is not a {fold_cls_name}",
              function=label)
        return
    _check_composition(report, plan, dist_map, step, executed, pushed,
                       "PLAN006", "map", fold_kind, map_skel, fold_skel)
    if fold_kind == "scan" and getattr(fold_skel, "exclusive", False):
        _diag(report, "PLAN006",
              f"{label}: exclusive scan shifts its input host-side; "
              "a pre-composed map does not commute with the shift",
              function=label)
    if map_skel.user.elementwise is None \
            or fold_skel.user.elementwise is None:
        _diag(report, "PLAN006",
              f"{label}: fused local pass needs vectorized forms for "
              "both stages", function=label)
    # the map stage must be element-aligned (same obligation as PLAN001)
    if len(step.rewritten_from) >= 2:
        map_node = step.rewritten_from[-2]
        try:
            effects = _stage_effects(map_node)
        except ClcError as exc:
            _diag(report, "PLAN006",
                  f"{label}: map stage kernel does not analyze: {exc}",
                  function=label)
            return
        if effects is not None:
            _check_stage_alignment(report, map_node, effects,
                                   map_node.label, code="PLAN006")


def _check_zip_of_maps(report, plan, dist_map, step, executed,
                       pushed) -> None:
    """zip(z)(map(f)(x), y) → zip(z∘f)(x, y) (PLAN006)."""
    label = step.label
    if step.kind != "zip":
        _diag(report, "PLAN006",
              f"{label}: zip_of_maps produced a {step.kind} step",
              function=label)
        return
    members = list(step.rewritten_from)
    if len(members) < 2 or members[-1] is not step.node:
        _diag(report, "PLAN006",
              f"{label}: zip_of_maps provenance does not end at the "
              "zip node", function=label)
        return
    zip_node = members[-1]
    map_nodes = members[:-1]
    if zip_node.kind != "zip":
        _diag(report, "PLAN006",
              f"{label}: rewritten node {zip_node.label} is not a zip",
              function=label)
        return
    # each folded map must feed exactly one zip operand in the graph
    remaining = list(zip_node.inputs)
    for map_node in map_nodes:
        if map_node.kind != "map":
            _diag(report, "PLAN006",
                  f"{label}: folded stage {map_node.label} is a "
                  f"{map_node.kind}, not a map", function=label)
            continue
        positions = [i for i, dep in enumerate(remaining)
                     if dep is map_node]
        if len(positions) != 1:
            _diag(report, "PLAN006",
                  f"{label}: folded map {map_node.label} feeds "
                  f"{len(positions)} zip operands; exactly one is "
                  "foldable", function=label)
            continue
        pos = positions[0]
        # the plan step must read the map's own input at that operand
        if map_node.inputs and pos < len(step.inputs):
            _check_edge(report, plan, dist_map, executed, pushed,
                        map_node.inputs[0], step.inputs[pos], label)
        remaining[pos] = None
        _check_interior(report, plan, map_node, label, "PLAN006")
        for reader in _other_plan_readers(plan, map_node, step):
            _diag(report, "PLAN006",
                  f"{label}: {map_node.label} is also read by "
                  f"{reader.label}", function=label)
        if map_node.extras:
            _diag(report, "PLAN006",
                  f"{label}: folded map {map_node.label} carries "
                  "additional arguments", function=label)
        m = map_node.skeleton
        if m is None or getattr(m, "out_dtype", None) is None:
            _diag(report, "PLAN006",
                  f"{label}: folded map {map_node.label} returns void",
                  function=label)
        elif zip_node.skeleton is not None \
                and m.out_dtype != zip_node.skeleton.user.element_dtype(
                    pos):
            _diag(report, "PLAN006",
                  f"{label}: folded map {map_node.label} produces "
                  f"{m.out_dtype}, zip operand {pos} consumes "
                  f"{zip_node.skeleton.user.element_dtype(pos)}",
                  function=label)
        try:
            effects = _stage_effects(map_node)
        except ClcError:
            effects = None
        if effects is not None:
            _check_stage_alignment(report, map_node, effects,
                                   map_node.label, code="PLAN006")
    # untouched operands must still be wired to the graph edge
    for pos, dep in enumerate(remaining):
        if dep is None or pos >= len(step.inputs):
            continue
        if step.inputs[pos] is not dep:
            _check_edge(report, plan, dist_map, executed, pushed,
                        dep, step.inputs[pos], label)
    # the fused zip must not write through a forwarded extra pointer
    skel = step.skeleton
    if skel is not None:
        for param in skel.extra_params:
            access = skel.user.summary.param_access.get(param.name)
            if access is not None and access.written:
                _diag(report, "PLAN006",
                      f"{label}: fused zip writes extra "
                      f"{param.name!r}; commuting a map across the "
                      "write is unsound", function=label)


def _check_stencil_rule(report, plan, dist_map, step, executed,
                        pushed, rule) -> None:
    """overlap_map / overlap_chain (PLAN007)."""
    label = step.label
    skel = step.skeleton
    if len(step.rewritten_from) < 2:
        _diag(report, "PLAN007",
              f"{label}: no provenance for the stencil composition",
              function=label)
        return
    prod_node, cons_node = step.rewritten_from[-2], step.rewritten_from[-1]
    if rule == "overlap_chain":
        o1 = getattr(skel, "first", None)
        o2 = getattr(skel, "second", None)
        if o1 is None or o2 is None:
            _diag(report, "PLAN007",
                  f"{label}: step skeleton is not a FusedOverlapChain",
                  function=label)
            return
        _check_composition(report, plan, dist_map, step, executed,
                           pushed, "PLAN007", "map_overlap",
                           "map_overlap", o1, o2)
        if o1.out_dtype != o2.elem_dtype:
            _diag(report, "PLAN007",
                  f"{label}: chained stencil dtypes do not line up "
                  f"({o1.out_dtype} -> {o2.elem_dtype})",
                  function=label)
        if cons_node.extras or prod_node.extras:
            _diag(report, "PLAN007",
                  f"{label}: stencil stages with additional arguments "
                  "cannot chain", function=label)
        return
    # overlap_map: the composed skeleton replaces the *map* node
    ov_skel = prod_node.skeleton
    m_skel = cons_node.skeleton
    if prod_node.kind != "map_overlap" or cons_node.kind != "map":
        _diag(report, "PLAN007",
              f"{label}: overlap_map expects map_overlap -> map, got "
              f"{prod_node.kind} -> {cons_node.kind}", function=label)
        return
    if cons_node is not step.node:
        _diag(report, "PLAN007",
              f"{label}: provenance tail is not the step's own node",
              function=label)
    if not cons_node.inputs or cons_node.inputs[0] is not prod_node:
        if cons_node.inputs:
            _check_edge(report, plan, dist_map, executed, pushed,
                        cons_node.inputs[0], prod_node, label)
    if prod_node.inputs and step.inputs:
        _check_edge(report, plan, dist_map, executed, pushed,
                    prod_node.inputs[0], step.inputs[0], label)
    _check_interior(report, plan, prod_node, label, "PLAN007")
    for reader in _other_plan_readers(plan, prod_node, step):
        _diag(report, "PLAN007",
              f"{label}: {prod_node.label} is also read by "
              f"{reader.label}", function=label)
    if prod_node.extras or cons_node.extras:
        _diag(report, "PLAN007",
              f"{label}: stencil composition with additional "
              "arguments", function=label)
    if ov_skel is None or m_skel is None or skel is None:
        return
    if skel.radius != ov_skel.radius:
        _diag(report, "PLAN007",
              f"{label}: composed stencil radius {skel.radius} != "
              f"captured radius {ov_skel.radius}", function=label)
    if skel.neutral != ov_skel.neutral:
        _diag(report, "PLAN007",
              f"{label}: composed stencil neutral {skel.neutral} != "
              f"captured neutral {ov_skel.neutral}", function=label)
    if skel.elem_dtype != ov_skel.elem_dtype \
            or skel.out_dtype != m_skel.out_dtype:
        _diag(report, "PLAN007",
              f"{label}: composed stencil dtypes do not match the "
              "captured stages", function=label)
    if getattr(m_skel, "out_dtype", None) is None:
        _diag(report, "PLAN007",
              f"{label}: composed map returns void", function=label)
    if ov_skel.out_dtype != getattr(m_skel, "in_dtype", None):
        _diag(report, "PLAN007",
              f"{label}: stencil output dtype does not feed the map",
              function=label)
    # direction: the wrapper must apply the *map* to the *stencil's*
    # result — the converse (map inside the window) would transform
    # the neutral padding at the vector edges
    compact = "".join(skel.user.source.split())
    if f"{m_skel.user.name}({ov_skel.user.name}(" not in compact:
        _diag(report, "PLAN007",
              f"{label}: composed source does not apply "
              f"{m_skel.user.name} to {ov_skel.user.name}'s result "
              "(wrong composition direction)", function=label)


def _check_push(report, plan, dist_map, step, executed, pushed,
                rule) -> None:
    """redistribute_sink / redistribute_hoist (PLAN008).

    The full pair proof runs on the redistribute step; the map step
    only proves its partner exists."""
    label = step.label
    if step.kind == "map":
        partners = [s for s in plan.steps
                    if s.kind == "redistribute" and rule in s.rules]
        if not any((rule == "redistribute_sink"
                    and s.inputs and s.inputs[0] is step.node)
                   or (rule == "redistribute_hoist"
                       and step.inputs
                       and step.inputs[0] is s.node)
                   for s in partners):
            _diag(report, "PLAN008",
                  f"{label}: pushed map has no partnered "
                  "redistribute step", function=label)
        return
    if step.kind != "redistribute":
        _diag(report, "PLAN008",
              f"{label}: {rule} tagged a {step.kind} step",
              function=label)
        return
    r_node = step.node
    if r_node.kind != "redistribute":
        _diag(report, "PLAN008",
              f"{label}: pushed step's node is a {r_node.kind}",
              function=label)
        return
    if step.dist is None or getattr(step.dist, "kind", "") == "copy":
        _diag(report, "PLAN008",
              f"{label}: pushing a copy distribution would reorder "
              "its combine semantics", function=label)
    if r_node.id in plan.root_ids or r_node.handle_alive:
        _diag(report, "PLAN008",
              f"{label}: the pushed redistribute node is demanded; "
              "its value changes under the push", function=label)

    if rule == "redistribute_sink":
        # plan: ... M(A) ... R(M) ...; graph: A -> R -> M
        m_node = step.inputs[0] if step.inputs else None
        m_step = next((s for s in plan.steps if s.node is m_node), None)
        if m_node is None or m_node.kind != "map" or m_step is None:
            _diag(report, "PLAN008",
                  f"{label}: sink partner is not a planned map step",
                  function=label)
            return
        if plan.steps.index(m_step) > plan.steps.index(step):
            _diag(report, "PLAN008",
                  f"{label}: sunk redistribute runs before its map",
                  function=label)
        # for a peephole-fused map chain, the graph edge to prove is
        # at the chain's head, not its tail node
        head = m_step.fused_from[0] if m_step.fused_from else m_node
        if not head.inputs or head.inputs[0] is not r_node:
            _diag(report, "PLAN008",
                  f"{label}: graph does not chain "
                  f"{r_node.label} -> {head.label}", function=label)
            return
        shifted = r_node.inputs[0] if r_node.inputs else None
        if shifted is not None and m_step.inputs \
                and m_step.inputs[0] is not shifted:
            _check_edge(report, plan, dist_map, executed, pushed,
                        shifted, m_step.inputs[0], label)
        for reader in _other_plan_readers(plan, r_node, step, m_step):
            _diag(report, "PLAN008",
                  f"{label}: {r_node.label} is also read by "
                  f"{reader.label}; its value changes under the sink",
                  function=label)
        map_node, map_step = m_node, m_step
    else:
        # plan: ... R(A) ... M(R) ...; graph: A -> M -> R
        m_node = r_node.inputs[0] if r_node.inputs else None
        m_step = next((s for s in plan.steps if s.node is m_node), None)
        if m_node is None or m_node.kind != "map" or m_step is None:
            _diag(report, "PLAN008",
                  f"{label}: hoist partner is not a planned map step",
                  function=label)
            return
        if plan.steps.index(step) > plan.steps.index(m_step):
            _diag(report, "PLAN008",
                  f"{label}: hoisted redistribute runs after its map",
                  function=label)
        if not m_step.inputs or m_step.inputs[0] is not r_node:
            _diag(report, "PLAN008",
                  f"{label}: hoisted map does not consume the "
                  "redistributed value", function=label)
        head = m_step.fused_from[0] if m_step.fused_from else m_node
        shifted = head.inputs[0] if head.inputs else None
        if shifted is not None and step.inputs \
                and step.inputs[0] is not shifted:
            _check_edge(report, plan, dist_map, executed, pushed,
                        shifted, step.inputs[0], label)
        if m_node.id in plan.root_ids or m_node.out is not None \
                or m_node.handle_alive:
            _diag(report, "PLAN008",
                  f"{label}: hoisted map's layout is observable "
                  "(root, out= or live handle)", function=label)
        for reader in _other_plan_readers(plan, r_node, step, m_step):
            _diag(report, "PLAN008",
                  f"{label}: {r_node.label} read by {reader.label} "
                  "was not rewired to the hoisted map",
                  function=label)
        map_node, map_step = m_node, m_step

    # shared: the map must be a pure element-wise unary value function
    m_skel = map_node.skeleton
    if m_skel is None or getattr(m_skel, "out_dtype", None) is None:
        _diag(report, "PLAN008",
              f"{label}: pushed-across map is void (works by side "
              "effect); reordering changes when the effect lands",
              function=label)
    if map_node.extras or map_step.extras:
        _diag(report, "PLAN008",
              f"{label}: pushed-across map reads additional "
              "arguments whose distribution safety depends on the "
              "layout", function=label)
    if map_node.kind != "map":
        _diag(report, "PLAN008",
              f"{label}: only unary maps commute with redistribution",
              function=label)
    # the vector whose final layout differs must be plan-internal
    head = map_step.fused_from[0] if map_step.fused_from else map_node
    shifted_node = (r_node.inputs[0] if rule == "redistribute_sink"
                    else head.inputs[0]) \
        if (r_node.inputs and head.inputs) else None
    if shifted_node is not None:
        if shifted_node.kind == "source" \
                or shifted_node.value is not None:
            _diag(report, "PLAN008",
                  f"{label}: push changes the final layout of "
                  f"concrete vector {shifted_node.label}",
                  function=label)
        if shifted_node.id in plan.root_ids \
                or shifted_node.handle_alive:
            _diag(report, "PLAN008",
                  f"{label}: push changes the final layout of "
                  f"demanded vector {shifted_node.label}",
                  function=label)


def _check_reduce_split(report, plan, dist_map, step) -> None:
    """reduce_split (PLAN009)."""
    import numpy as np

    label = step.label
    if step.kind != "reduce" or step.node.kind != "reduce":
        _diag(report, "PLAN009",
              f"{label}: reduce_split tagged a {step.kind} step",
              function=label)
        return
    inner = getattr(step.skeleton, "inner", None)
    if inner is None:
        _diag(report, "PLAN009",
              f"{label}: step skeleton is not a SplitReduce",
              function=label)
        return
    if inner is not step.node.skeleton:
        _diag(report, "PLAN009",
              f"{label}: split wraps a different operator than the "
              "captured reduce", function=label)
        return
    dt = inner.elem_dtype
    if not (np.issubdtype(dt, np.integer)
            or np.issubdtype(dt, np.bool_)):
        _diag(report, "PLAN009",
              f"{label}: re-chunking a {dt} reduction is not "
              "value-preserving (inexact element type)",
              function=label)
    src = step.inputs[0] if step.inputs else None
    src_dist = dist_map.get(src.id) if src is not None else None
    if src_dist is None or getattr(src_dist, "kind", "") != "single":
        _diag(report, "PLAN009",
              f"{label}: split input is not provably single-device; "
              "the spread copy is pure overhead", function=label)


def _check_rewritten_step(report, plan, dist_map, step, executed,
                          pushed) -> None:
    for rule in step.rules:
        if rule == "map_reduce":
            _check_map_into_fold(report, plan, dist_map, step,
                                 executed, pushed, "reduce",
                                 "FusedMapReduce")
        elif rule == "map_scan":
            _check_map_into_fold(report, plan, dist_map, step,
                                 executed, pushed, "scan",
                                 "FusedMapScan")
        elif rule == "zip_of_maps":
            _check_zip_of_maps(report, plan, dist_map, step, executed,
                               pushed)
            break  # one generic proof covers stacked applications
        elif rule in ("overlap_map", "overlap_chain"):
            _check_stencil_rule(report, plan, dist_map, step, executed,
                                pushed, rule)
        elif rule in ("redistribute_sink", "redistribute_hoist"):
            _check_push(report, plan, dist_map, step, executed,
                        pushed, rule)
        elif rule == "reduce_split":
            _check_reduce_split(report, plan, dist_map, step)
        else:
            _diag(report, "PLAN006",
                  f"{step.label}: unknown rewrite rule {rule!r}",
                  function=step.label)


# ---------------------------------------------------------------------------
# elision justification
# ---------------------------------------------------------------------------

def _justify_forward(report: AnalysisReport, plan, dist_map,
                     executed: set[int], graph_input, plan_input,
                     consumer_label: str,
                     consumer_is_redistribute: bool,
                     pushed: frozenset = frozenset()) -> None:
    """Prove ``value(plan_input)`` may stand in for
    ``value(graph_input)`` at one consumer edge.

    A hop in *pushed* is a redistribute that still executes but was
    reordered across an element-wise step (PLAN008); the push checker
    owns its layout proof, so the walk passes through it."""
    hops = []
    cur = graph_input
    while cur is not plan_input:
        if cur.kind != "redistribute" \
                or (cur.id in executed and cur.id not in pushed) \
                or cur.value is not None or not cur.inputs:
            _diag(report, "PLAN002",
                  f"{consumer_label}: rewired input skips "
                  f"{cur.label}, which is not an elidable "
                  "redistribute", function=consumer_label)
            return
        hops.append(cur)
        cur = cur.inputs[0]
    if not hops:
        return
    # no skipped hop may merge divergent copies — that would change
    # data, which no later redistribute can undo
    for hop in hops:
        if _combine_changes_data(hop, dist_map):
            _diag(report, "PLAN002",
                  f"{consumer_label}: skipped redistribute "
                  f"{hop.label} combines divergent copies; eliding "
                  "it changes data", function=consumer_label)
    if consumer_is_redistribute:
        # chain collapse: the consumer re-establishes the layout itself
        return
    if all(hop.id in pushed for hop in hops):
        # every hop still executes, merely reordered; the push
        # checker proves the layout equivalence
        return
    # a plain consumer expected the layout the graph edge produces:
    # the substituted value must provably already have it
    expected = hops[0].dist
    if not _same_distribution(dist_map.get(plan_input.id), expected):
        _diag(report, "PLAN002",
              f"{consumer_label}: elided {hops[0].label} but "
              f"{plan_input.label}'s distribution does not provably "
              "match the target layout", function=consumer_label)


def _check_aliases(report: AnalysisReport, plan, dist_map,
                   executed: set[int]) -> None:
    for node, source in plan.aliases:
        label = f"alias({node.label})"
        if node.kind != "redistribute":
            _diag(report, "PLAN002",
                  f"{label}: only elided redistributes may be "
                  f"aliased, not a {node.kind} node", function=label)
            continue
        # value equality: every hop from the node down to the alias
        # source must be a no-op redistribute (including the node)
        hops = []
        cur = node
        ok = True
        while cur is not source:
            if cur.kind != "redistribute" or cur.id in executed \
                    or not cur.inputs:
                _diag(report, "PLAN002",
                      f"{label}: aliased across {cur.label}, which "
                      "is not an elided redistribute", function=label)
                ok = False
                break
            hops.append(cur)
            cur = cur.inputs[0]
        if not ok:
            continue
        if not _same_distribution(dist_map.get(source.id), node.dist):
            _diag(report, "PLAN002",
                  f"{label}: aliased to {source.label} but its "
                  f"distribution does not provably match the "
                  f"redistribute target", function=label)
        for hop in hops[1:]:
            if _combine_changes_data(hop, dist_map):
                _diag(report, "PLAN002",
                      f"{label}: aliasing skips {hop.label}, which "
                      "combines divergent copies", function=label)


# ---------------------------------------------------------------------------
# demand and dataflow
# ---------------------------------------------------------------------------

def _check_demand(report: AnalysisReport, plan,
                  executed: set[int]) -> None:
    aliased = {node.id for node, _source in plan.aliases}
    for root in plan.roots:
        if root.value is not None or root.id in executed \
                or root.id in aliased or root.kind == "source":
            continue
        _diag(report, "PLAN003",
              f"root {root.label} is demanded but the plan never "
              "produces it", function=root.label)
    for node in plan.graph.nodes:
        if node.value is not None or node.id in executed \
                or node.id in aliased or node.kind == "source":
            continue
        if node.handle_alive and node.id not in plan.root_ids:
            _diag(report, "PLAN005",
                  f"{node.label} was eliminated while its handle is "
                  "alive; the handle will replay the captured call "
                  "on demand", function=node.label)


def _check_dataflow(report: AnalysisReport, plan, dist_map,
                    executed: set[int],
                    pushed: frozenset = frozenset()) -> None:
    """Re-prove execution order: every consumed value exists in time.

    Also proves every rewired edge (plan input differing from the
    captured graph edge) value-preserving via
    :func:`_justify_forward`."""
    alias_source = {node.id: source for node, source in plan.aliases}
    available: set[int] = set()
    for node in plan.graph.nodes:
        if node.value is not None or node.kind == "source":
            available.add(node.id)

    def resolve(node):
        seen = set()
        while node.id in alias_source and node.id not in seen:
            seen.add(node.id)
            node = alias_source[node.id]
        return node

    for step in plan.steps:
        if step.fused_from:
            graph_inputs = list(step.fused_from[0].inputs)
        elif step.rewritten_from:
            graph_inputs = list(step.rewritten_from[0].inputs)
        else:
            graph_inputs = list(step.node.inputs)
        for pos, dep in enumerate(step.inputs):
            if pos < len(graph_inputs) \
                    and graph_inputs[pos] is not dep \
                    and not step.rules:
                # rewritten steps' rewired edges are proven by their
                # rule checkers (PLAN006-009), not the generic walk
                _justify_forward(
                    report, plan, dist_map, executed,
                    graph_inputs[pos], dep, step.label,
                    consumer_is_redistribute=(step.kind
                                              == "redistribute"),
                    pushed=pushed)
            if resolve(dep).id not in available:
                _diag(report, "PLAN004",
                      f"{step.label} consumes {dep.label} before any "
                      "step produces it", function=step.label)
        for extra in step.extras:
            if hasattr(extra, "id") and hasattr(extra, "kind"):
                if resolve(extra).id not in available:
                    _diag(report, "PLAN004",
                          f"{step.label} consumes extra "
                          f"{extra.label} before any step produces "
                          "it", function=step.label)
        available.add(step.node.id)
        for node in step.fused_from:
            available.add(node.id)
        for node in step.rewritten_from:
            available.add(node.id)
    # aliases resolve against whatever ran; a dangling alias source is
    # a dataflow hole too
    for node, source in plan.aliases:
        if resolve(source).id not in available:
            _diag(report, "PLAN004",
                  f"alias({node.label}) points at {source.label}, "
                  "which nothing produces", function=node.label)


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def verify_plan(plan) -> AnalysisReport:
    """Independently re-prove every optimization in *plan* legal.

    Returns an :class:`AnalysisReport`; ``report.has_errors`` means the
    plan must not execute.
    """
    report = AnalysisReport()
    executed: set[int] = set()
    for step in plan.steps:
        executed.add(step.node.id)
        executed.update(n.id for n in step.fused_from)
        executed.update(n.id for n in step.rewritten_from)
    # redistributes that still run but were reordered across an
    # element-wise step; _justify_forward passes through them because
    # the push checker (PLAN008) owns their layout proof
    pushed = frozenset(
        step.node.id for step in plan.steps
        if step.kind == "redistribute"
        and any(r.startswith("redistribute_") for r in step.rules))
    dist_map = _graph_distributions(plan.graph)

    for step in plan.steps:
        if step.fused_from:
            _check_fused_step(report, plan, dist_map, step, executed)
        if step.rules:
            _check_rewritten_step(report, plan, dist_map, step,
                                  executed, pushed)
    _check_aliases(report, plan, dist_map, executed)
    _check_demand(report, plan, executed)
    _check_dataflow(report, plan, dist_map, executed, pushed)

    for node in plan.graph.nodes:
        if node.kind in ("map", "zip") and node.skeleton is not None:
            try:
                effects = _stage_effects(node)
            except ClcError:
                continue
            if effects is not None:
                report.access_patterns.setdefault(
                    node.label,
                    {name: str(e.reads.join(e.effective_writes))
                     for name, e in effects.args.items()})
    return report


def verify_or_raise(plan) -> AnalysisReport:
    """Run :func:`verify_plan`; raise instead of executing when unsound."""
    report = verify_plan(plan)
    if report.has_errors:
        first = report.errors[0]
        raise PlanVerificationError(
            f"plan verification failed: "
            f"[{first.check_id}] {first.message} "
            f"({len(report.errors)} error(s) total)", report=report)
    return report


# ---------------------------------------------------------------------------
# PLAN010: plan-template window-shape polymorphism (repro.stream)
# ---------------------------------------------------------------------------

def verify_template(plan, window_nodes) -> AnalysisReport:
    """Prove *plan* sound to re-execute once per stream window.

    The streaming layer plans and verifies a pipeline **once**, then
    replays the cached plan for every window with only the declared
    window source(s) re-pointed at fresh data (``PLAN010``).  That is
    only sound when the plan is *window-shape-polymorphic*: nothing it
    computes may depend on state that survives from one execution to
    the next.  Obligations proved here:

    - no step writes an explicit ``out=`` vector (the target would
      carry one window's result into the next execution's view of it);
    - no step writes through an additional-argument pointer into
      memory that persists across windows (a concrete Vector captured
      at build time, or a source node other than the window itself) —
      re-derived from the kernel effect summaries, and rejected
      conservatively when no summary is available;
    - every non-window source the plan reads holds a materialized
      constant (a broadcast the re-execution can keep reusing);
    - the window source is actually consumed — a template whose plan
      ignores its window would emit the same result forever.
    """
    # imported here: repro.graph pulls in repro.skelcl at module load,
    # and this verifier must stay importable on its own
    from repro.graph.node import Node

    report = AnalysisReport()
    window_ids = {node.id for node in window_nodes}
    consumed_sources: set[int] = set()

    def persistent(value) -> str | None:
        """Why a written extra outlives one window (None = it doesn't)."""
        if isinstance(value, Node):
            if value.kind == "source" and value.id not in window_ids:
                return f"captured source #{value.id}"
            return None  # re-materialized every execution
        if hasattr(value, "to_numpy"):  # a concrete Vector
            return "a Vector captured at template-build time"
        return None

    for step in plan.steps:
        members = [step.node]
        members.extend(step.fused_from)
        members.extend(step.rewritten_from)
        for node in members:
            if node.kind == "source":
                continue
            if node.out is not None:
                _diag(report, "PLAN010",
                      f"{node.label} writes an explicit out= vector; "
                      "re-executing the template would clobber one "
                      "window's result with the next",
                      function=node.label)
            effects = _stage_effects(node)
            if effects is None:
                if node.effect:
                    _diag(report, "PLAN010",
                          f"{node.label} is a void effect call with no "
                          "effect summary; its additional-argument "
                          "writes cannot be proven window-local",
                          function=node.label)
            else:
                written, _read = _written_extras(node, effects)
                for name, value, effect in written:
                    why = persistent(value)
                    if why is not None:
                        region = effect.effective_writes
                        _diag(report, "PLAN010",
                              f"{node.label} writes additional "
                              f"argument {name} ({region}) into "
                              f"{why}; that state would persist "
                              "across windows",
                              function=node.label)
            for dep in node.deps():
                if dep.kind != "source":
                    continue
                consumed_sources.add(dep.id)
                if dep.id not in window_ids and dep.value is None:
                    _diag(report, "PLAN010",
                          f"{node.label} reads source #{dep.id} which "
                          "is neither the window source nor a "
                          "materialized constant",
                          function=node.label)
    for wid in sorted(window_ids):
        if wid not in consumed_sources:
            _diag(report, "PLAN010",
                  f"window source #{wid} is never consumed by the "
                  "plan; every window would produce the same result",
                  function=f"source#{wid}")
    return report


def verify_template_or_raise(plan, window_nodes) -> AnalysisReport:
    """Run :func:`verify_template`; raise when the plan must not be
    cached as a stream template."""
    report = verify_template(plan, window_nodes)
    if report.has_errors:
        first = report.errors[0]
        raise PlanVerificationError(
            f"plan-template verification failed: "
            f"[{first.check_id}] {first.message} "
            f"({len(report.errors)} error(s) total)", report=report)
    return report
