"""Alias/COW safety and cluster redo-journal coverage checks.

Two whole-system checkers that look at *live runtime state* rather
than kernel source:

- :func:`check_context_aliasing` walks a context's buffers and flags
  pairs whose physical storage overlaps while at least one side writes
  through without copy-on-write protection (``pinned`` mode).  Writes
  through such a buffer silently change what the other buffer reads —
  legal for deliberate host-pinned I/O, but worth a warning
  (``ALIAS001``) whenever it can be observed.  ``alias``-mode overlap
  is *not* flagged: :meth:`repro.ocl.memory.Buffer.prepare_write`
  copies before any write, so aliases can only ever be read through.

- :func:`check_journal_coverage` verifies the cluster's fault-
  tolerance invariant: for every buffer whose freshest bytes live only
  on a worker (mirror state ``remote``), the owning worker's redo
  journal must reproduce all of them — through ``WRITE`` records
  covering the byte range and/or a replayable ``NDRANGE`` that
  references the buffer.  A hole (``CLUS001``) means a worker failure
  would lose data that a re-shard cannot recreate.
"""

from __future__ import annotations

from repro.clc.analysis.diagnostics import (CHECKS, AnalysisReport,
                                            Diagnostic)


def _diag(report: AnalysisReport, check_id: str, message: str,
          function: str = "") -> None:
    severity = CHECKS[check_id][0]
    report.add(Diagnostic(check_id=check_id, severity=severity,
                          message=message, function=function))


def _storage_span(buf) -> tuple[int, int] | None:
    data = buf._data
    if data is None or data.nbytes == 0:
        return None
    addr = data.__array_interface__["data"][0]
    return addr, addr + data.nbytes


def check_context_aliasing(context,
                           report: AnalysisReport | None = None
                           ) -> AnalysisReport:
    """``ALIAS001`` for overlapping storages with a write-through side."""
    if report is None:
        report = AnalysisReport()
    live = [buf for buf in context.buffers
            if not getattr(buf, "_released", False)]
    spans = [(buf, _storage_span(buf)) for buf in live]
    for i, (a, span_a) in enumerate(spans):
        if span_a is None:
            continue
        for b, span_b in spans[i + 1:]:
            if span_b is None or a is b:
                continue
            if not (span_a[0] < span_b[1] and span_b[0] < span_a[1]):
                continue
            modes = {a.storage_mode, b.storage_mode}
            if "pinned" not in modes:
                continue  # alias/owned overlap is COW-protected
            _diag(report, "ALIAS001",
                  f"buffers of {a.nbytes} and {b.nbytes} bytes share "
                  f"physical storage and one is pinned "
                  f"({a.storage_mode}/{b.storage_mode}): writes "
                  "through the pinned view are visible to the other "
                  "buffer's reads without copy-on-write")
    return report


def _journal_covers(handle, key: str, nbytes: int) -> bool:
    """Can replaying *handle*'s journal recreate buffer *key* fully?"""
    from repro.cluster import wire

    covered: list[tuple[int, int]] = []
    for entry in handle.journal:
        if entry.op == wire.Op.NDRANGE:
            for arg in entry.meta.get("args", ()):
                if arg.get("buf") == key:
                    # a deterministic kernel replay regenerates every
                    # byte the original execution produced
                    return True
        elif entry.op == wire.Op.WRITE:
            if entry.meta.get("buf") != key:
                continue
            lo = int(entry.meta.get("offset", 0))
            covered.append((lo, lo + len(entry.payload)))
    # merge WRITE intervals and check [0, nbytes) has no hole
    covered.sort()
    pos = 0
    for lo, hi in covered:
        if lo > pos:
            return False
        pos = max(pos, hi)
        if pos >= nbytes:
            return True
    return pos >= nbytes


def check_journal_coverage(cluster,
                           report: AnalysisReport | None = None
                           ) -> AnalysisReport:
    """``CLUS001`` for remote buffers the redo journal cannot rebuild.

    *cluster* is a :class:`repro.cluster.ClusterSystem` (duck-typed:
    anything with ``_buffer_state`` and journaled worker handles).
    """
    if report is None:
        report = AnalysisReport()
    sizes: dict[str, int] = {}
    for _key, (handle, _state) in cluster._buffer_state.items():
        for entry in handle.journal:
            meta = entry.meta
            if "buf" in meta and "nbytes" in meta:
                sizes[meta["buf"]] = int(meta["nbytes"])
            for arg in meta.get("args", ()):
                if "buf" in arg and "nbytes" in arg:
                    sizes[arg["buf"]] = int(arg["nbytes"])
    for key, (handle, state) in cluster._buffer_state.items():
        if state != "remote":
            continue  # mirror holds the bytes; nothing depends on the
            # journal for this buffer
        nbytes = sizes.get(str(key))
        if nbytes is None:
            _diag(report, "CLUS001",
                  f"buffer {key} is remote on worker {handle.rank} "
                  "but no journal entry mentions it; a re-shard could "
                  "not recreate it")
            continue
        if not _journal_covers(handle, str(key), nbytes):
            _diag(report, "CLUS001",
                  f"buffer {key} ({nbytes} bytes) is remote on worker "
                  f"{handle.rank} but the redo journal does not cover "
                  "every written byte; a re-shard would lose data")
    return report
