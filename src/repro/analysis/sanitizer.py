"""Runtime sanitizer: cross-check kernel launches against summaries.

With ``REPRO_SANITIZE=1`` every ``enqueue_nd_range_kernel`` snapshots
the bytes of its buffer arguments, lets the kernel run, then verifies
that nothing changed outside the write region the static effect
summary (:mod:`repro.analysis.effects`) declares for each argument.
Any mismatch is a *hard error* (:class:`repro.errors.SanitizerError`)
— either the kernel is broken or the summary is unsound, and both must
be fixed, which is what keeps the static layer honest on the whole
differential corpus.

The check is deliberately one-sided: summaries are upper bounds, so a
kernel writing *less* than declared is fine, and an argument whose
summary is ``all`` (or imprecise) is skipped — there is nothing to
falsify.  Only ``window`` summaries and read-only claims are
checkable, and those are exactly the ones the plan verifier's fusion
proofs rely on.

Cluster queues execute source kernels on a worker process, leaving the
local mirror stale; the queue passes its ``_sanitizer_sync`` hook so
snapshots and checks always see the worker's bytes
(:meth:`repro.cluster.ClusterSystem.sync_mirror` is physical-only, so
virtual time is unchanged by sanitizing).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SanitizerError
from repro.analysis.effects import Region, kernel_effects

_SANITIZE_OVERRIDE: bool | None = None

#: process-wide counters (``repro lint --graph`` and tests read these)
STATS = {
    "launches": 0,
    "buffers_checked": 0,
    "buffers_skipped": 0,
    "violations": 0,
}


def sanitize_enabled() -> bool:
    """Whether launches are instrumented (``REPRO_SANITIZE=1``)."""
    if _SANITIZE_OVERRIDE is not None:
        return _SANITIZE_OVERRIDE
    return os.environ.get("REPRO_SANITIZE", "0") not in ("0", "")


def set_sanitize(enabled: bool | None) -> None:
    """Force instrumentation on/off; ``None`` defers to the env var."""
    global _SANITIZE_OVERRIDE
    _SANITIZE_OVERRIDE = enabled


def reset_stats() -> None:
    for key in STATS:
        STATS[key] = 0


def _raw(buf) -> np.ndarray | None:
    """The buffer's physical bytes (``None`` = unmaterialized zeros).

    Reads the storage directly instead of ``view_readonly`` so
    snapshotting never materializes lazy zero storage (which would
    change the buffer's physical — though never logical — state).
    """
    return buf._data


def _storage_span(buf) -> tuple[int, int] | None:
    data = buf._data
    if data is None:
        return None
    addr = data.__array_interface__["data"][0]
    return addr, addr + data.nbytes


@dataclass
class _BufferCheck:
    """One buffer of one launch, with its allowed write byte-range."""

    buf: object
    params: list[str]
    #: None: read-only claim (nothing may change);
    #: (lo, hi): bytes [lo, hi) may change, everything else must not
    allowed: tuple[int, int] | None
    snapshot: np.ndarray | None = None


@dataclass
class LaunchRecord:
    kernel_name: str
    checks: list[_BufferCheck] = field(default_factory=list)


def _allowed_bytes(region: Region, gsize: tuple, itemsize: int,
                   nbytes: int) -> tuple[int, int] | None | str:
    """Byte interval a window region permits, for a 1-D launch.

    Returns ``"all"`` when unbounded (multi-dimensional launches have
    no single own-index axis), ``None`` for read-only, or a byte span.
    """
    if region.is_empty:
        return None
    if region.is_all or len(gsize) != 1:
        return "all"
    lo_el = max(0, region.lo)
    hi_el = (gsize[0] - 1) + region.hi
    if hi_el < lo_el:
        return None
    lo = max(0, lo_el * itemsize)
    hi = min(nbytes, (hi_el + 1) * itemsize)
    if hi <= lo:
        return None
    return (lo, hi)


def snapshot_launch(kernel, gsize: tuple, buffers,
                    sync=None) -> LaunchRecord | None:
    """Record pre-launch buffer contents and allowed write regions.

    *buffers* is the queue's ``[(Buffer, is_const), ...]`` list, in
    pointer-parameter order.  Returns ``None`` when the kernel has no
    effect summary or nothing is checkable.
    """
    effects = kernel_effects(kernel)
    if effects is None:
        return None
    STATS["launches"] += 1
    pointer_params = [p for p in kernel.params if p.is_pointer]

    # aggregate per distinct buffer (the same buffer may bind several
    # parameters, e.g. in-place maps)
    per_buffer: dict[int, _BufferCheck] = {}
    unbounded: set[int] = set()
    for param, (buf, _is_const) in zip(pointer_params, buffers):
        effect = effects.args.get(param.name)
        if effect is None or not effect.precise:
            allowed = "all"
        else:
            itemsize = param.dtype.itemsize if param.dtype is not None \
                else 1
            allowed = _allowed_bytes(effect.effective_writes, gsize,
                                     itemsize, buf.nbytes)
        key = id(buf)
        if allowed == "all":
            unbounded.add(key)
        check = per_buffer.get(key)
        if check is None:
            check = _BufferCheck(buf=buf, params=[param.name],
                                 allowed=None)
            per_buffer[key] = check
        else:
            check.params.append(param.name)
        if allowed not in (None, "all"):
            if check.allowed is None:
                check.allowed = allowed
            else:
                check.allowed = (min(check.allowed[0], allowed[0]),
                                 max(check.allowed[1], allowed[1]))

    for key in unbounded:
        per_buffer.pop(key, None)
        STATS["buffers_skipped"] += 1

    # distinct buffers sharing physical storage (aliasing views) make
    # byte-level attribution ambiguous: skip all parties
    checks = list(per_buffer.values())
    spans = [(_storage_span(c.buf), c) for c in checks]
    overlapping: set[int] = set()
    for i, (span_a, a) in enumerate(spans):
        if span_a is None:
            continue
        for span_b, b in spans[i + 1:]:
            if span_b is None or a.buf is b.buf:
                continue
            if span_a[0] < span_b[1] and span_b[0] < span_a[1]:
                overlapping.add(id(a.buf))
                overlapping.add(id(b.buf))
    checks = [c for c in checks if id(c.buf) not in overlapping]
    STATS["buffers_skipped"] += len(overlapping)
    if not checks:
        return None

    record = LaunchRecord(kernel_name=kernel.name)
    for check in checks:
        if sync is not None:
            sync(check.buf)
        data = _raw(check.buf)
        check.snapshot = None if data is None else data.copy()
        record.checks.append(check)
    return record


def _first_violation(before: np.ndarray | None,
                     after: np.ndarray | None,
                     exclude: tuple[int, int] | None,
                     nbytes: int) -> int | None:
    """Index of the first byte that changed outside *exclude*."""
    if before is None and after is None:
        return None
    if before is None:
        before = np.zeros(nbytes, dtype=np.uint8)
    if after is None:
        after = np.zeros(nbytes, dtype=np.uint8)
    diff = before != after
    if exclude is not None:
        diff[exclude[0]:exclude[1]] = False
    idx = np.flatnonzero(diff)
    return int(idx[0]) if idx.size else None


def check_launch(record: LaunchRecord, sync=None) -> None:
    """Compare post-launch contents against the snapshots; raise on
    any mutation outside the declared write region."""
    for check in record.checks:
        if sync is not None:
            sync(check.buf)
        STATS["buffers_checked"] += 1
        after = _raw(check.buf)
        bad = _first_violation(check.snapshot, after, check.allowed,
                               check.buf.nbytes)
        if bad is None:
            continue
        STATS["violations"] += 1
        names = "/".join(check.params)
        if check.allowed is None:
            raise SanitizerError(
                f"[SAN001] kernel {record.kernel_name}: argument "
                f"{names} is declared read-only by its effect summary "
                f"but byte {bad} of its buffer changed")
        raise SanitizerError(
            f"[SAN002] kernel {record.kernel_name}: argument {names} "
            f"wrote byte {bad}, outside the declared write region "
            f"[{check.allowed[0]}, {check.allowed[1]}) of its effect "
            "summary")
