"""Whole-pipeline static analysis over skeletons, graphs and buffers.

Where :mod:`repro.clc.analysis` checks one kernel translation unit at
a time, this package reasons across the pipeline:

- :mod:`.effects` — interprocedural per-argument read/write/atomic
  *region* summaries for every compiled kernel;
- :mod:`.verifier` — re-proves each ``repro.graph`` optimization pass
  legal on the captured DAG before the plan executes;
- :mod:`.aliasing` — alias/COW hazards over live buffers and cluster
  redo-journal coverage;
- :mod:`.sanitizer` — the ``REPRO_SANITIZE=1`` runtime mode
  cross-checking actual buffer mutations against the static summaries.

Entry points: ``repro lint``, ``repro verify-plan``, and automatic
verification inside :meth:`repro.graph.Graph.evaluate`
(``REPRO_VERIFY_PLAN=0`` opts out).
"""

from repro.analysis.aliasing import (check_context_aliasing,
                                     check_journal_coverage)
from repro.analysis.effects import (ArgEffect, KernelEffects, Region,
                                    kernel_effects, site_region,
                                    source_effects, unit_effects)
from repro.analysis.sanitizer import (check_launch, sanitize_enabled,
                                      set_sanitize, snapshot_launch)
from repro.analysis.verifier import (verify_or_raise, verify_plan,
                                     verify_template,
                                     verify_template_or_raise)

__all__ = [
    "ArgEffect",
    "KernelEffects",
    "Region",
    "check_context_aliasing",
    "check_journal_coverage",
    "check_launch",
    "kernel_effects",
    "sanitize_enabled",
    "set_sanitize",
    "site_region",
    "snapshot_launch",
    "source_effects",
    "unit_effects",
    "verify_or_raise",
    "verify_plan",
    "verify_template",
    "verify_template_or_raise",
]
