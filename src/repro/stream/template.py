"""Plan templates: plan a windowed pipeline once, re-execute forever.

The first window of a stream runs through the full lazy machinery —
:func:`repro.graph.capturing` capture, peephole passes, the
cost-model-driven rewrite planner, and the plan verifier.  The result
is a :class:`PlanTemplate`: the proven plan plus the captured graph,
with the window's input :class:`~repro.skelcl.Vector` zero-copy
wrapping the windower's ring buffer.

Every later window with the same pipeline signature and window length
skips all of that: :meth:`PlanTemplate.execute` re-points the input
vector at the new window view (:meth:`Vector.reload` — no host copy,
device parts recycled through the PR 4 alias machinery), re-arms the
graph's non-source nodes, and replays the cached plan steps directly.
Steady state therefore reports ``plans_planned == 1`` per
(signature, window length) while every executed plan remains
verifier-proven.

Re-executing a plan over fresh data is only sound when the plan is
*window-shape-polymorphic* — it must not read or write state that
persists across windows.  :func:`repro.analysis.verify_template`
proves exactly that (diagnostic ``PLAN010``) before the template is
admitted to the cache.
"""

from __future__ import annotations

import os
from typing import Callable, Sequence

import numpy as np

from repro.errors import StreamError
from repro.graph.batching import pipeline_signature
from repro.graph.capture import Graph, capturing
from repro.skelcl import Vector

#: a pipeline is a chain of single-input skeleton stages
Stage = Callable


def stage_sources(stages: Sequence[Stage]) -> list[str]:
    """Kernel sources of a stage chain, for signature computation."""
    sources = []
    for stage in stages:
        user = getattr(stage, "user", None)
        source = getattr(user, "source", None)
        if source is None:
            source = getattr(stage, "source", repr(stage))
        sources.append(str(source))
    return sources


def template_verification_enabled() -> bool:
    """PLAN010 template proofs follow the plan-verifier gate."""
    return os.environ.get("REPRO_VERIFY_PLAN", "1") not in ("0", "")


class PlanTemplate:
    """One pipeline × one window shape, planned and proven once.

    Building the template executes the first window (its result is
    read with :meth:`result`); :meth:`execute` runs each later window
    through the cached plan.
    """

    def __init__(self, ctx, stages: Sequence[Stage],
                 window_data: np.ndarray,
                 window_meta: dict | None = None,
                 signature: str | None = None) -> None:
        data = np.ascontiguousarray(np.asarray(window_data).reshape(-1))
        self.ctx = ctx
        self.stages = list(stages)
        self.dtype = data.dtype
        self.length = int(data.shape[0])
        self.signature = signature if signature is not None else \
            pipeline_signature(stage_sources(stages), data.dtype)
        self.input = Vector.wrapping(data, context=ctx)
        self.graph = Graph(
            ctx, scope_name=f"stream-template:{self.signature[:12]}")
        with capturing(self.graph):
            handle = self.input
            for stage in self.stages:
                handle = stage(handle)
        if not hasattr(handle, "node"):
            raise StreamError(
                "stream pipeline stages must be lazy skeleton calls; "
                f"stage chain produced {type(handle).__name__} instead "
                "of a graph handle", code="STRM006")
        self.result_node = handle.node
        self.source_node = self.graph.source(self.input)
        self.source_node.window = dict(window_meta or {})
        self.source_node.window.setdefault("size", self.length)
        # window 0: capture -> passes -> rewrite -> verify -> execute
        self.graph.evaluate(handle)
        self.plan = self.graph.last_plan
        self.plan_stats = dict(self.graph.last_stats)
        self.verifications = (
            1 if self.graph.last_verification is not None else 0)
        # the window-shape-polymorphism proof (PLAN010): replaying this
        # plan over the next window must not touch cross-window state
        self.template_report = None
        if template_verification_enabled():
            from repro.analysis import verify_template_or_raise
            self.template_report = verify_template_or_raise(
                self.plan, [self.source_node])
            self.verifications += 1
        self.executions = 1
        # handles from the build scope must fail loudly, not replay
        # against a recycled window buffer
        self.graph.retire(
            f"stream template {self.signature[:12]} re-executes its "
            "cached plan; per-handle replay is disabled")

    def result(self) -> np.ndarray:
        """Output of the most recently executed window (a copy — the
        consumer owns it; template buffers are recycled)."""
        value = self.result_node.value
        assert value is not None, "plan left its root unmaterialized"
        return value.to_numpy()

    def execute(self, window_data: np.ndarray) -> np.ndarray:
        """Run one window through the cached plan (no re-planning)."""
        if window_data.shape[0] != self.length:
            raise StreamError(
                f"window of {window_data.shape[0]} items does not fit "
                f"template built for {self.length}", code="STRM006")
        from repro.graph import executor
        self.input.reload(np.ascontiguousarray(window_data))
        for node in self.graph.nodes:
            if node.kind != "source":
                node.value = None
                node.executed = False
        executor.execute_plan(self.plan, self.ctx)
        self.executions += 1
        return self.result()


class TemplateCache:
    """Templates keyed by pipeline signature × window length.

    A tumbling stream hits one entry forever; the end-of-stream
    partial window (different length) builds its own entry, so the
    steady-state plan is never invalidated by the tail.
    """

    def __init__(self) -> None:
        self._templates: dict[tuple[str, int], PlanTemplate] = {}
        self.plans_planned = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._templates)

    def run_window(self, ctx, stages: Sequence[Stage],
                   window_data: np.ndarray,
                   window_meta: dict | None = None,
                   signature: str | None = None
                   ) -> tuple[np.ndarray, PlanTemplate]:
        """Execute one window, building a template on first sight."""
        if signature is None:
            signature = pipeline_signature(stage_sources(stages),
                                           window_data.dtype)
        key = (signature, int(window_data.shape[0]))
        template = self._templates.get(key)
        if template is None:
            template = PlanTemplate(ctx, stages, window_data,
                                    window_meta=window_meta,
                                    signature=signature)
            self._templates[key] = template
            self.plans_planned += 1
            return template.result(), template
        self.hits += 1
        return template.execute(window_data), template

    @property
    def verifications(self) -> int:
        return sum(t.verifications for t in self._templates.values())
