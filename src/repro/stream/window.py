"""Count-based windowing with watermarks and late-element policy.

A :class:`Windower` turns an unbounded sequence of chunks (arrays of
elements, each carrying a base sequence number) into bounded windows a
skeleton pipeline can execute.  Windows are count-based — tumbling
(``step == size``) or sliding (``step < size``) — and are emitted
through a *watermark*: window ``[start, start+size)`` closes only once
the highest sequence number seen reaches ``start + size + lateness``,
so out-of-order chunks within the allowed lateness still land in their
window.  Elements older than the watermark are *late*; the policy
decides whether they are dropped (counted) or reassigned fresh
sequence numbers at the head of the stream.

Window ``data`` arrays are zero-copy views into the windower's ring
buffer, valid until the next :meth:`Windower.push`/:meth:`flush` call —
the stream engine executes each window before ingesting more, which is
also what backpressure wants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StreamError

#: supported late-element policies
POLICIES = ("drop", "reassign")


@dataclass(frozen=True)
class WindowSpec:
    """Shape of the windows a stream pipeline executes.

    Args:
        size: elements per window (> 0).
        step: elements the window advances per emission; ``None`` or
            ``== size`` is tumbling, ``< size`` is sliding (elements
            shared between consecutive windows).
        lateness: how many elements beyond a window's end must arrive
            before it closes — the watermark lag that lets
            out-of-order chunks within the slack still be assigned.
        policy: what happens to elements older than the watermark:
            ``"drop"`` discards them (counted), ``"reassign"`` gives
            them fresh sequence numbers at the head of the stream.
    """

    size: int
    step: int | None = None
    lateness: int = 0
    policy: str = "drop"

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise StreamError(
                f"window size must be positive, got {self.size}",
                code="STRM001")
        if self.step is not None and not 0 < self.step <= self.size:
            raise StreamError(
                f"window step must be in (0, size={self.size}], got "
                f"{self.step}", code="STRM001")
        if self.lateness < 0:
            raise StreamError(
                f"lateness must be >= 0, got {self.lateness}",
                code="STRM001")
        if self.policy not in POLICIES:
            raise StreamError(
                f"unknown late-element policy {self.policy!r} "
                f"(expected one of {POLICIES})", code="STRM001")

    @property
    def stride(self) -> int:
        return self.step if self.step is not None else self.size

    @property
    def sliding(self) -> bool:
        return self.stride < self.size

    def as_dict(self) -> dict:
        return {"size": self.size, "step": self.stride,
                "lateness": self.lateness, "policy": self.policy}


@dataclass
class Window:
    """One emitted window: a bounded view the pipeline can execute."""

    index: int
    start: int          # sequence number of the first element
    data: np.ndarray    # view into the ring; valid until the next push
    #: True for the end-of-stream partial window (< size elements)
    partial: bool = False

    @property
    def items(self) -> int:
        return int(self.data.shape[0])


@dataclass
class WindowCounters:
    """The windower's own accounting (merged into StreamStats)."""

    items_in: int = 0
    windows_emitted: int = 0
    late_dropped: int = 0
    late_reassigned: int = 0
    empty_flushes: int = 0


class Windower:
    """Assigns incoming chunks to count-based windows.

    The ring is a flat numpy buffer addressed by absolute sequence
    number; compaction (shifting the live tail down) happens between
    pushes, so emitted window views stay valid until the next call.
    """

    def __init__(self, spec: WindowSpec,
                 counters: WindowCounters | None = None) -> None:
        self.spec = spec
        self.counters = counters if counters is not None \
            else WindowCounters()
        self._dtype: np.dtype | None = None
        self._buf: np.ndarray | None = None
        self._base = 0        # sequence number of _buf[0]
        self._high = 0        # 1 + highest sequence number seen
        self._next_start = 0  # start of the next unemitted window
        self._next_seq = 0    # auto-assigned seq for seq-less chunks
        self._index = 0       # next window index
        self._closed = False

    @property
    def dtype(self) -> np.dtype | None:
        return self._dtype

    @property
    def pending_items(self) -> int:
        """Elements buffered but not yet emitted in any window."""
        return max(0, self._high - self._next_start)

    # -- ingestion ---------------------------------------------------------------

    def push(self, data: np.ndarray,
             seq: int | None = None) -> list[Window]:
        """Ingest one chunk; returns the windows it completed.

        ``seq`` is the sequence number of the chunk's first element;
        ``None`` means "next in order".  A chunk whose dtype differs
        from the stream's locked dtype raises a structured
        ``[STRM003]`` :class:`~repro.errors.StreamError` — silently
        casting telemetry mid-stream corrupts every later window.
        """
        if self._closed:
            raise StreamError(
                "stream already flushed; no more chunks can be pushed",
                code="STRM004")
        data = np.asarray(data).reshape(-1)
        if self._dtype is None:
            self._dtype = data.dtype
        elif data.dtype != self._dtype:
            raise StreamError(
                f"dtype changed mid-stream: expected {self._dtype}, "
                f"got {data.dtype} (chunk at seq "
                f"{self._next_seq if seq is None else seq})",
                code="STRM003")
        if seq is None:
            seq = self._next_seq
        if data.shape[0] == 0:
            return []
        self.counters.items_in += int(data.shape[0])

        # split off the late prefix (older than the oldest open window)
        if seq < self._next_start:
            late = min(self._next_start - seq, data.shape[0])
            late_part, data = data[:late], data[late:]
            seq += late
            if self.spec.policy == "drop":
                self.counters.late_dropped += late
            else:  # reassign: fresh seqs at the head of the stream
                self.counters.late_reassigned += late
                self._write(late_part, self._high)
            if data.shape[0] == 0:
                return self._emit(watermark=self._watermark())
        self._write(data, seq)
        return self._emit(watermark=self._watermark())

    def flush(self) -> list[Window]:
        """End of stream: close every remaining window.

        Emits all still-open full windows (the watermark jumps to the
        end of the stream) plus one final partial window for the tail,
        if any elements remain.  An empty flush — the stream ended
        exactly on a window boundary — emits nothing and is counted.
        """
        if self._closed:
            return []
        self._closed = True
        windows = self._emit(watermark=self._high)
        if self._high > self._next_start:
            length = self._high - self._next_start
            windows.append(self._make_window(self._next_start, length,
                                             partial=True))
            self._next_start += self.spec.stride
        if not windows:
            self.counters.empty_flushes += 1
        return windows

    # -- internals ---------------------------------------------------------------

    def _watermark(self) -> int:
        return self._high - self.spec.lateness

    def _write(self, data: np.ndarray, seq: int) -> None:
        end = seq + int(data.shape[0])
        self._reserve(end)
        assert self._buf is not None
        self._buf[seq - self._base:end - self._base] = data
        self._high = max(self._high, end)
        self._next_seq = max(self._next_seq, end)

    def _reserve(self, end_seq: int) -> None:
        """Ensure the ring covers [next_start, end_seq), compacting
        consumed elements away and growing as needed."""
        if self._buf is None:
            cap = max(4 * self.spec.size, end_seq - self._base, 1024)
            # zeros, not empty: a gap the lateness slack never fills
            # must emit deterministic data, not uninitialized memory
            self._buf = np.zeros(cap, dtype=self._dtype)
        # drop everything before the oldest open window
        if self._next_start > self._base:
            keep = self._high - self._next_start
            if keep > 0:
                offset = self._next_start - self._base
                self._buf[:keep] = self._buf[offset:offset + keep]
            self._base = self._next_start
        needed = end_seq - self._base
        if needed > self._buf.shape[0]:
            cap = self._buf.shape[0]
            while cap < needed:
                cap *= 2
            grown = np.zeros(cap, dtype=self._dtype)
            live = self._high - self._base
            if live > 0:
                grown[:live] = self._buf[:live]
            self._buf = grown

    def _emit(self, watermark: int) -> list[Window]:
        windows: list[Window] = []
        while self._next_start + self.spec.size <= watermark:
            windows.append(self._make_window(self._next_start,
                                             self.spec.size))
            self._next_start += self.spec.stride
        return windows

    def _make_window(self, start: int, length: int,
                     partial: bool = False) -> Window:
        assert self._buf is not None
        lo = start - self._base
        window = Window(index=self._index, start=start,
                        data=self._buf[lo:lo + length],
                        partial=partial)
        self._index += 1
        self.counters.windows_emitted += 1
        return window
