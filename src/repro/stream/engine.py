"""The streaming engine: windows in, skeleton results out.

:class:`StreamPipeline` binds a skeleton stage chain to a
:class:`~repro.stream.window.WindowSpec` and executes each emitted
window through the plan-template cache — the first window pays for
capture, planning and verification, every later window replays the
proven plan over the recycled ring buffer.

Two driving modes:

* **pull** — :meth:`run` consumes a :class:`StreamSource` and yields
  :class:`WindowResult`\\ s as windows close; natural for replay files
  and benchmarks.
* **push** — :meth:`push` / :meth:`poll` / :meth:`close` for callers
  that own the arrival loop (the serving layer).  Push mode enforces
  *backpressure*: when more than ``max_inflight`` executed windows
  sit unconsumed, :meth:`push` refuses the chunk with a structured
  ``[STRM002]`` :class:`~repro.errors.StreamBackpressureError`
  carrying a retry hint, instead of buffering without bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import StreamBackpressureError
from repro.stream.source import Chunk, StreamSource
from repro.stream.stats import StreamStats
from repro.stream.template import (Stage, TemplateCache,
                                   pipeline_signature, stage_sources)
from repro.stream.window import Window, WindowSpec, Windower

#: default bound on executed-but-unconsumed windows in push mode
DEFAULT_MAX_INFLIGHT = 8


@dataclass
class WindowResult:
    """One executed window: its identity plus the pipeline's output."""

    index: int
    start: int
    items: int
    data: np.ndarray
    latency_s: float
    partial: bool = False


class StreamPipeline:
    """A windowed skeleton pipeline over an unbounded element stream.

    Args:
        stages: single-input skeleton stages, applied in order to each
            window (their calls are captured lazily — the chain must
            stay on graph handles).
        window: the window shape and late-element policy.
        ctx: SkelCL context; defaults to the ambient one the first
            template build resolves.
        max_inflight: push-mode backpressure bound — executed windows
            a slow consumer may leave unconsumed before pushes refuse.
    """

    def __init__(self, stages: Sequence[Stage], window: WindowSpec,
                 ctx=None,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT) -> None:
        self.stages = list(stages)
        self.spec = window
        self.ctx = ctx
        self.max_inflight = max(1, int(max_inflight))
        self.stats = StreamStats()
        self.windower = Windower(window, counters=self.stats.window)
        self.templates = TemplateCache()
        self._ready: list[WindowResult] = []
        self._signature: str | None = None
        self._closed = False

    # -- pull mode ---------------------------------------------------------------

    def run(self, source: StreamSource | Sequence
            ) -> Iterator[WindowResult]:
        """Consume *source* to exhaustion, yielding executed windows.

        The final partial window (if the stream does not end on a
        window boundary) is executed and yielded too, marked
        ``partial``.
        """
        chunks = source.chunks() if isinstance(source, StreamSource) \
            else iter(source)
        for item in chunks:
            chunk = item if isinstance(item, Chunk) else Chunk(item)
            for window in self.windower.push(chunk.data, seq=chunk.seq):
                yield self._execute(window)
        for window in self.windower.flush():
            yield self._execute(window)
        self._closed = True

    # -- push mode ---------------------------------------------------------------

    def push(self, data: np.ndarray,
             seq: int | None = None) -> list[WindowResult]:
        """Ingest one chunk; windows it closes execute immediately.

        Raises :class:`StreamBackpressureError` when the consumer has
        fallen more than ``max_inflight`` executed windows behind —
        the chunk is *not* ingested; retry after draining
        :meth:`poll`.
        """
        self._check_budget(extra_items=int(
            np.asarray(data).reshape(-1).shape[0]))
        results = [self._execute(w)
                   for w in self.windower.push(data, seq=seq)]
        self._ready.extend(results)
        return results

    def poll(self) -> list[WindowResult]:
        """Take every executed-but-unconsumed window (clears backlog)."""
        ready, self._ready = self._ready, []
        return ready

    def close(self) -> list[WindowResult]:
        """End of stream: flush, execute remaining windows, return
        them along with any unconsumed backlog."""
        if not self._closed:
            self._ready.extend(self._execute(w)
                               for w in self.windower.flush())
            self._closed = True
        return self.poll()

    def _check_budget(self, extra_items: int) -> None:
        stride = self.spec.stride
        would_close = (self.windower.pending_items + extra_items
                       - self.spec.size) // stride + 1
        inflight = len(self._ready) + max(0, would_close)
        if inflight > self.max_inflight:
            self.stats.backpressure_rejects += 1
            backlog = max(1, len(self._ready))
            mean_s = (self.stats.busy_s / self.stats.windows_executed
                      if self.stats.windows_executed else 1e-3)
            raise StreamBackpressureError(
                f"{len(self._ready)} executed windows await the "
                f"consumer (budget {self.max_inflight}); drain poll() "
                "before pushing more",
                retry_after_s=round(backlog * mean_s, 6))

    # -- execution ---------------------------------------------------------------

    @property
    def signature(self) -> str:
        if self._signature is None:
            dtype = self.windower.dtype
            self._signature = pipeline_signature(
                stage_sources(self.stages),
                dtype if dtype is not None else np.dtype("float32"))
        return self._signature

    def _execute(self, window: Window) -> WindowResult:
        started = time.perf_counter()
        output, template = self.templates.run_window(
            self.ctx, self.stages, window.data,
            window_meta=self.spec.as_dict(),
            signature=self.signature)
        elapsed = time.perf_counter() - started
        if self.ctx is None:
            self.ctx = template.ctx if template.ctx is not None \
                else template.input.ctx
        advanced = self.spec.stride if not window.partial \
            else window.items
        self.stats.record_window(advanced, elapsed)
        self.stats.plans_planned = self.templates.plans_planned
        self.stats.plans_verified = self.templates.verifications
        self.stats.template_hits = self.templates.hits
        return WindowResult(index=window.index, start=window.start,
                            items=window.items, data=output,
                            latency_s=elapsed, partial=window.partial)

    # -- reporting ---------------------------------------------------------------

    def predicted_cost(self):
        """Perf-model prediction for the steady-state window, if a
        template exists (None before the first window)."""
        templates = list(self.templates._templates.values())
        if not templates or self.ctx is None:
            return None
        from repro.sched import predict_stream
        steady = max(templates, key=lambda t: t.executions)
        return predict_stream(steady.plan, self.ctx,
                              window_items=steady.length,
                              step_items=self.spec.stride)

    def snapshot(self) -> dict:
        return {
            "window": self.spec.as_dict(),
            "signature": self.signature[:16],
            "templates": len(self.templates),
            "max_inflight": self.max_inflight,
            "stats": self.stats.as_dict(),
        }
