"""repro.stream: windowed streaming execution over unbounded sources.

The batch layers of this repro evaluate one bounded Vector at a time;
this package extends the same skeleton pipelines to *unbounded*
element streams (ROADMAP item 2a).  Chunks from a
:class:`StreamSource` are assigned to count-based tumbling or sliding
windows (:class:`WindowSpec` / :class:`Windower`, with watermarks and
a late-element policy), and each window executes through a cached
:class:`PlanTemplate`: the first window is captured, optimized by the
cost-model planner and proven by the verifier — including the
streaming-specific window-shape-polymorphism proof (``PLAN010``) —
then every later window replays the proven plan over a recycled
zero-copy ring-buffer view.  Push-mode callers get bounded-buffer
backpressure (``[STRM002]``) instead of unbounded queueing.
"""

import repro.skelcl  # noqa: F401 -- break the graph<->skelcl import cycle

from repro.errors import StreamBackpressureError, StreamError
from repro.stream.engine import (DEFAULT_MAX_INFLIGHT, StreamPipeline,
                                 WindowResult)
from repro.stream.source import (Chunk, GeneratorSource,
                                 ReplayFileSource, SocketSource,
                                 StreamSource, push_chunks,
                                 write_replay)
from repro.stream.stats import StreamStats
from repro.stream.template import PlanTemplate, TemplateCache
from repro.stream.window import (Window, WindowCounters, WindowSpec,
                                 Windower)

__all__ = [
    "Chunk", "DEFAULT_MAX_INFLIGHT", "GeneratorSource", "PlanTemplate",
    "ReplayFileSource", "SocketSource", "StreamBackpressureError",
    "StreamError", "StreamPipeline", "StreamSource", "StreamStats",
    "TemplateCache", "Window", "WindowCounters", "WindowResult",
    "WindowSpec", "Windower", "push_chunks", "write_replay",
]
