"""Per-stream accounting: throughput, latency, planning economy."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.stream.window import WindowCounters


@dataclass
class StreamStats:
    """Everything ``repro stream run`` and the bench gate report.

    ``plans_planned`` counts template builds (full capture + planner +
    verifier runs); in steady state it stays at 1 per pipeline
    signature × window length while ``windows_executed`` grows without
    bound — the economics the streaming tier exists for.
    """

    window: WindowCounters = field(default_factory=WindowCounters)
    windows_executed: int = 0
    items_advanced: int = 0
    plans_planned: int = 0
    plans_verified: int = 0
    template_hits: int = 0
    backpressure_rejects: int = 0
    busy_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)

    def record_window(self, items: int, seconds: float) -> None:
        self.windows_executed += 1
        self.items_advanced += int(items)
        self.busy_s += seconds
        self.latencies_s.append(seconds)

    @property
    def sustained_items_per_s(self) -> float:
        """Items advanced per second of execution time."""
        if self.busy_s <= 0:
            return 0.0
        return self.items_advanced / self.busy_s

    def percentile_ms(self, q: float) -> float:
        """Window-latency percentile in milliseconds (q in [0, 100])."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = max(0, min(len(ordered) - 1,
                          int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank] * 1e3

    def as_dict(self) -> dict:
        return {
            "items_in": self.window.items_in,
            "windows_emitted": self.window.windows_emitted,
            "windows_executed": self.windows_executed,
            "items_advanced": self.items_advanced,
            "empty_flushes": self.window.empty_flushes,
            "late_dropped": self.window.late_dropped,
            "late_reassigned": self.window.late_reassigned,
            "plans_planned": self.plans_planned,
            "plans_verified": self.plans_verified,
            "template_hits": self.template_hits,
            "backpressure_rejects": self.backpressure_rejects,
            "busy_s": round(self.busy_s, 6),
            "sustained_items_per_s": round(self.sustained_items_per_s,
                                           3),
            "p50_window_ms": round(self.percentile_ms(50), 3),
            "p99_window_ms": round(self.percentile_ms(99), 3),
        }
