"""Unbounded stream sources: generators, sockets, and replay files.

A :class:`StreamSource` is anything that yields :class:`Chunk`s — an
array of elements plus the sequence number of its first element
(``None`` = next in order).  Three concrete sources cover the paper's
streaming scenarios:

* :class:`GeneratorSource` — any Python iterable of arrays (synthetic
  telemetry, sensor simulators, test fixtures).
* :class:`ReplayFileSource` — a recorded stream on disk, framed with
  the cluster wire format so a capture from a socket replays
  bit-identically (including its out-of-order chunk arrivals).
* :class:`SocketSource` — a live TCP feed using the same framing.

The wire framing is reused from :mod:`repro.cluster.wire` rather than
invented: ``Op.WRITE`` frames carry chunk payloads (meta records the
sequence number and dtype) and a final ``Op.SHUTDOWN`` frame marks end
of stream.
"""

from __future__ import annotations

import socket as socket_module
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator

import numpy as np

from repro.cluster.wire import (ConnectionClosedError, Op, encode_frame,
                                read_frame)
from repro.errors import StreamError


@dataclass
class Chunk:
    """One batch of stream elements.

    ``seq`` is the sequence number of the first element; ``None``
    means the chunk follows the previous one in order.
    """

    data: np.ndarray
    seq: int | None = None

    @property
    def items(self) -> int:
        return int(np.asarray(self.data).reshape(-1).shape[0])


class StreamSource:
    """Base class: an iterable of :class:`Chunk`s plus ``close()``."""

    def chunks(self) -> Iterator[Chunk]:
        raise NotImplementedError

    def close(self) -> None:  # noqa: B027 - optional hook
        pass

    def __iter__(self) -> Iterator[Chunk]:
        return self.chunks()

    def __enter__(self) -> "StreamSource":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class GeneratorSource(StreamSource):
    """Wraps any iterable of arrays / ``(seq, array)`` pairs / Chunks."""

    def __init__(self, iterable: Iterable, dtype=None) -> None:
        self._iterable = iterable
        self._dtype = np.dtype(dtype) if dtype is not None else None

    def chunks(self) -> Iterator[Chunk]:
        for item in self._iterable:
            if isinstance(item, Chunk):
                yield item
            elif (isinstance(item, tuple) and len(item) == 2
                    and isinstance(item[0], int)):
                seq, data = item
                yield Chunk(self._coerce(data), seq=seq)
            else:
                yield Chunk(self._coerce(item))

    def _coerce(self, data) -> np.ndarray:
        arr = np.asarray(data)
        if self._dtype is not None and arr.dtype != self._dtype:
            arr = arr.astype(self._dtype)
        return arr.reshape(-1)


# -- framed chunk streams (files and sockets) ------------------------------------

def _chunk_frame(chunk: Chunk, dtype: np.dtype) -> bytes:
    data = np.ascontiguousarray(
        np.asarray(chunk.data).reshape(-1), dtype=dtype)
    meta = {"dtype": str(dtype), "n": int(data.shape[0])}
    if chunk.seq is not None:
        meta["seq"] = int(chunk.seq)
    return encode_frame(Op.WRITE, 0, meta, data.tobytes())


def _decode_chunk(meta: dict, payload: bytes) -> Chunk:
    try:
        dtype = np.dtype(meta["dtype"])
        n = int(meta["n"])
    except (KeyError, TypeError) as exc:
        raise StreamError(
            f"malformed chunk frame meta: {meta!r}",
            code="STRM005") from exc
    data = np.frombuffer(payload, dtype=dtype, count=n).copy()
    seq = meta.get("seq")
    return Chunk(data, seq=None if seq is None else int(seq))


def _read_framed_chunks(read) -> Iterator[Chunk]:
    """Yield chunks from a framed byte stream until SHUTDOWN or EOF."""
    while True:
        try:
            op, _seq, meta, payload = read_frame(read)
        except ConnectionClosedError:
            return  # clean close at a frame boundary counts as EOS
        if op == Op.SHUTDOWN:
            return
        if op != Op.WRITE:
            raise StreamError(
                f"unexpected frame op {op!r} in chunk stream",
                code="STRM005")
        yield _decode_chunk(meta, payload)


def write_replay(path: str | Path, chunks: Iterable[Chunk | np.ndarray],
                 dtype="float32") -> int:
    """Record a chunk stream to *path* for later replay.

    Returns the number of chunks written.  Chunk order and explicit
    sequence numbers are preserved, so an out-of-order capture replays
    with the same lateness behaviour it had live.
    """
    dtype = np.dtype(dtype)
    count = 0
    with open(path, "wb") as fh:
        for item in chunks:
            chunk = item if isinstance(item, Chunk) else Chunk(item)
            fh.write(_chunk_frame(chunk, dtype))
            count += 1
        fh.write(encode_frame(Op.SHUTDOWN, 0, {"chunks": count}, b""))
    return count


class ReplayFileSource(StreamSource):
    """Replays a stream recorded with :func:`write_replay`."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: IO[bytes] | None = None

    def chunks(self) -> Iterator[Chunk]:
        self._fh = open(self.path, "rb")
        try:
            yield from _read_framed_chunks(self._fh.read)
        finally:
            self.close()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class SocketSource(StreamSource):
    """A live TCP chunk feed (one producer connection).

    Either wrap an already-connected socket, or use
    :meth:`listen` to bind an ephemeral port and accept the first
    producer that connects.  Producers send frames built by
    :func:`push_chunks` / :func:`_chunk_frame`.
    """

    def __init__(self, sock: socket_module.socket) -> None:
        self._sock = sock

    @classmethod
    def listen(cls, host: str = "127.0.0.1",
               port: int = 0) -> tuple["_PendingSocketSource", int]:
        """Bind *host:port* (0 = ephemeral); returns (source, port).

        The returned source accepts its producer lazily, on the first
        call to :meth:`chunks` — so the consumer can hand the port to
        a producer thread before iterating.
        """
        listener = socket_module.socket(socket_module.AF_INET,
                                        socket_module.SOCK_STREAM)
        listener.setsockopt(socket_module.SOL_SOCKET,
                            socket_module.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(1)
        return _PendingSocketSource(listener), listener.getsockname()[1]

    def chunks(self) -> Iterator[Chunk]:
        try:
            yield from _read_framed_chunks(self._recv_exact)
        finally:
            self.close()

    def _recv_exact(self, n: int) -> bytes:
        buf = bytearray()
        while len(buf) < n:
            part = self._sock.recv(n - len(buf))
            if not part:
                return bytes(buf)
            buf.extend(part)
        return bytes(buf)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class _PendingSocketSource(StreamSource):
    """A listening socket that becomes a SocketSource on first read."""

    def __init__(self, listener: socket_module.socket) -> None:
        self._listener = listener
        self._inner: SocketSource | None = None

    def chunks(self) -> Iterator[Chunk]:
        conn, _addr = self._listener.accept()
        self._listener.close()
        self._inner = SocketSource(conn)
        yield from self._inner.chunks()

    def close(self) -> None:
        if self._inner is not None:
            self._inner.close()
        else:
            try:
                self._listener.close()
            except OSError:
                pass


def push_chunks(sock: socket_module.socket,
                chunks: Iterable[Chunk | np.ndarray],
                dtype="float32") -> int:
    """Producer side of :class:`SocketSource`: send chunks then EOS."""
    dtype = np.dtype(dtype)
    count = 0
    for item in chunks:
        chunk = item if isinstance(item, Chunk) else Chunk(item)
        sock.sendall(_chunk_frame(chunk, dtype))
        count += 1
    sock.sendall(encode_frame(Op.SHUTDOWN, 0, {"chunks": count}, b""))
    return count
