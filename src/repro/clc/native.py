"""Native JIT execution tier: dialect kernels compiled to fused C.

The third execution engine (after the per-item interpreter and the
numpy batch engine of :mod:`repro.clc.batch`): the typechecked dialect
AST is lowered to one fused C function per kernel — real control flow
instead of masked lane compaction, no intermediate arrays — compiled
with the system C compiler, loaded through cffi, and driven over the
NDRange either in one sequential sweep or split across a thread pool
when the kernel's effect summary proves lanes independent.

Numeric contract
----------------

The per-item interpreter is the ground truth; the native tier must
match it bitwise on integers and within 4 ULP on float32.  The
interpreter executes Python/numpy scalar arithmetic, so the lowering
reproduces numpy's NEP-50 promotion *statically*: every expression is
assigned a :class:`Kind` — weak (Python ``bool``/``int``/``float``,
carried as ``int64_t``/``double``) or strong (a concrete numpy dtype,
carried as the exact-width C type) — and binary operations compute in
the carrier of the joined kind, where the join of mixed weak/strong
kinds is ``np.result_type`` over representative tokens.  Declared
locals coerce exactly like the interpreter's ``int()``/``float()``
(always weak); compound assignment does not coerce; integer ``/`` and
``%`` lower to C's truncating division and sign-of-dividend remainder,
which is precisely what the interpreter's ``_idiv``/``_imod`` compute.
Math built-ins get their result kind by evaluating the interpreter's
own numpy implementation on token values, so the table can never
drift.

Barrier kernels use a phase transformation (in the style of MCUDA's
deep fission): every scalar becomes a per-lane array, statement runs
between barriers become ``for (lane)`` loops, and group-uniform control
flow around barriers is hoisted to group level with conditions read
from lane 0.  Groups then execute sequentially, which reproduces the
interpreter's lockstep generator order exactly.

Blockers
--------

A kernel the lowering cannot take reports a structured blocker through
:func:`repro.clc.analysis.kernel_native_blockers` (never a silent
fallback):

- ``ND001`` — no usable C toolchain (compiler or cffi missing);
- ``ND002`` — struct types (the OSEM record kernels stay on batch);
- ``ND004`` — a construct outside the native subset (atomics in value
  position, non-literal array sizes, break/continue across a barrier,
  ...);
- ``ND005`` — barrier divergence (the BD001/BD002 findings);
- ``ND006`` — recursive helper functions.

``ND001`` is environmental, not structural: engine selection degrades
to the batch tier and records the blocker instead of failing the
build.  Set ``REPRO_CLC_CC`` to pick a compiler, ``REPRO_CLC_CC=``
(empty) to simulate an absent toolchain, and
``REPRO_CLC_NATIVE_THREADS`` to bound the slice driver's pool.
Compiled shared objects are cached on disk by
:mod:`repro.clc.cache`, keyed by the SHA-256 of the generated C
source, the dialect version and the toolchain id.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.clc import astnodes as ast
from repro.clc.builtins import (ATOMIC_FUNCTIONS, BUILTINS,
                                WORK_ITEM_FUNCTIONS)
from repro.clc.types import PointerType, ScalarType, StructType

__all__ = [
    "NativeKernel", "NativeLoweringError", "Toolchain", "find_toolchain",
    "toolchain_blockers", "lowering_blockers", "lower_kernel",
]


class NativeLoweringError(Exception):
    """A kernel (or its environment) the native tier must decline."""

    def __init__(self, code: str, message: str, line: int = 0) -> None:
        self.code = code
        self.message = message
        self.line = line
        super().__init__(f"[{code}] {message}")


# ---------------------------------------------------------------------------
# Kinds: the static image of numpy's NEP-50 value model
# ---------------------------------------------------------------------------

#: carrier C type per numpy dtype name
_C_TYPES: dict[str, str] = {
    "bool": "uint8_t", "int8": "int8_t", "uint8": "uint8_t",
    "int16": "int16_t", "uint16": "uint16_t", "int32": "int32_t",
    "uint32": "uint32_t", "int64": "int64_t", "uint64": "uint64_t",
    "float32": "float", "float64": "double",
}

_CAT_ORDER = {"bool": 0, "int": 1, "float": 2}


@dataclass(frozen=True)
class Kind:
    """Category + carrier of one scalar expression.

    ``weak`` kinds model Python scalars (the interpreter's ``int``/
    ``float``/``bool`` values); strong kinds model numpy scalars of a
    concrete dtype (buffer loads, typed kernel arguments).
    """

    category: str  # "bool" | "int" | "float"
    dtype: str     # numpy dtype name of the carrier
    weak: bool

    @property
    def ctype(self) -> str:
        return _C_TYPES[self.dtype]

    def token(self) -> Any:
        """The np.result_type token reproducing NEP-50 joins."""
        if self.weak:
            return {"bool": False, "int": 0, "float": 0.0}[self.category]
        return np.dtype(self.dtype)

    def sample(self) -> Any:
        """An in-domain runtime value of this kind (for builtin typing)."""
        if self.weak:
            return {"bool": True, "int": 1, "float": 0.5}[self.category]
        dt = np.dtype(self.dtype)
        if dt.kind == "b":
            return np.bool_(True)
        if dt.kind in "iu":
            return dt.type(1)
        return dt.type(0.5)


WEAK_BOOL = Kind("bool", "int64", True)
WEAK_INT = Kind("int", "int64", True)
WEAK_FLOAT = Kind("float", "float64", True)

_WEAK_BY_CAT = {"bool": WEAK_BOOL, "int": WEAK_INT, "float": WEAK_FLOAT}


def strong_kind(dtype: Union[np.dtype, str]) -> Kind:
    dt = np.dtype(dtype)
    cat = {"b": "bool", "i": "int", "u": "int", "f": "float"}.get(dt.kind)
    if cat is None:
        raise NativeLoweringError(
            "ND004", f"unsupported scalar dtype {dt} in native lowering")
    return Kind(cat, dt.name, False)


def join(a: Kind, b: Kind) -> Kind:
    """The kind of a value produced by combining *a* and *b* the way
    numpy would (NEP-50): weak pairs stay weak at the wider category;
    any strong operand resolves through ``np.result_type`` tokens."""
    if a == b:
        return a
    if a.weak and b.weak:
        cat = a.category if _CAT_ORDER[a.category] >= _CAT_ORDER[b.category] \
            else b.category
        return _WEAK_BY_CAT[cat]
    return strong_kind(np.result_type(a.token(), b.token()))


@dataclass(frozen=True)
class PtrKind:
    """A pointer value: base + remaining length (negative indices read
    from the end of the view, exactly like the interpreter's numpy
    slices)."""

    dtype: str  # pointee numpy dtype name

    @property
    def struct(self) -> str:
        return f"ptr_{self.dtype}"

    @property
    def ctype(self) -> str:
        return _C_TYPES[self.dtype]


AnyKind = Union[Kind, PtrKind]


def scalar_param_kind(ctype: ScalarType) -> Kind:
    return strong_kind(ctype.dtype())


def kind_from_value(value: Any) -> AnyKind:
    """The kind of one runtime kernel argument (compilation signature)."""
    if isinstance(value, np.ndarray):
        return PtrKind(value.dtype.name)
    if isinstance(value, np.generic):
        return strong_kind(value.dtype)
    if isinstance(value, bool):
        return WEAK_BOOL
    if isinstance(value, int):
        return WEAK_INT
    if isinstance(value, float):
        return WEAK_FLOAT
    raise NativeLoweringError(
        "ND004", f"unsupported kernel argument type {type(value).__name__}")


def _float_literal(value: float) -> str:
    """An exact C double literal (hex float form)."""
    if value != value:
        return "NAN"
    if value in (float("inf"), float("-inf")):
        return "INFINITY" if value > 0 else "(-INFINITY)"
    return float(value).hex()


# ---------------------------------------------------------------------------
# Toolchain discovery
# ---------------------------------------------------------------------------

_CFLAGS = ["-O2", "-shared", "-fPIC", "-fwrapv", "-ffp-contract=off", "-w"]


@dataclass(frozen=True)
class Toolchain:
    cc: str        # resolved compiler path
    version: str   # first line of --version
    id: str        # short stable identifier for cache keys


_PROBE_LOCK = threading.Lock()
_PROBE_CACHE: dict[str, Optional[Toolchain]] = {}


def _probe(path: str) -> Optional[Toolchain]:
    """Compile-check one candidate compiler; broken toolchains are
    treated as absent rather than crashing later at kernel build."""
    try:
        version = subprocess.run(
            [path, "--version"], capture_output=True, text=True,
            timeout=30).stdout.splitlines()[0].strip()
    except Exception:
        return None
    probe_src = "int repro_probe(void) { return 42; }\n"
    try:
        with tempfile.TemporaryDirectory(prefix="repro-cc-probe") as tmp:
            src = Path(tmp) / "probe.c"
            out = Path(tmp) / "probe.so"
            src.write_text(probe_src)
            result = subprocess.run(
                [path, *_CFLAGS, str(src), "-o", str(out), "-lm"],
                capture_output=True, timeout=60)
            if result.returncode != 0 or not out.exists():
                return None
    except Exception:
        return None
    real = os.path.realpath(path)
    digest = hashlib.sha256(f"{real}\n{version}".encode()).hexdigest()[:12]
    return Toolchain(cc=path, version=version, id=digest)


def find_toolchain() -> Optional[Toolchain]:
    """The usable C compiler, or None.

    ``REPRO_CLC_CC`` overrides discovery; setting it to the empty
    string simulates an absent toolchain (the CI fallback assertion).
    Probe results are memoized per process.
    """
    spec = os.environ.get("REPRO_CLC_CC")
    if spec is not None and spec.strip() == "":
        return None
    candidates = [spec] if spec else ["cc", "gcc", "clang"]
    for name in candidates:
        path = shutil.which(name)
        if path is None:
            continue
        with _PROBE_LOCK:
            if path not in _PROBE_CACHE:
                _PROBE_CACHE[path] = _probe(path)
            tc = _PROBE_CACHE[path]
        if tc is not None:
            return tc
    return None


def _cffi_available() -> bool:
    try:
        import cffi  # noqa: F401
    except Exception:
        return False
    return True


def toolchain_blockers() -> list[str]:
    """Environmental (non-structural) reasons the native tier is
    unavailable right now — empty when a kernel can actually compile."""
    blockers = []
    if not _cffi_available():
        blockers.append("[ND001] cffi is not importable — the native "
                        "tier cannot load compiled kernels")
    if find_toolchain() is None:
        blockers.append("[ND001] no usable C compiler (checked "
                        "REPRO_CLC_CC, cc, gcc, clang)")
    return blockers


# ---------------------------------------------------------------------------
# cffi loading and shared-object compilation
# ---------------------------------------------------------------------------

ENTRY_SYMBOL = "repro_native_entry"
_ENTRY_CDEF = (f"void {ENTRY_SYMBOL}(void **bufs, int64_t *lens, "
               "int64_t *meta, int64_t t0, int64_t t1);")

_FFI_LOCK = threading.Lock()
_FFI: Any = None
_LIB_CACHE: dict[str, Any] = {}


def _ffi() -> Any:
    global _FFI
    with _FFI_LOCK:
        if _FFI is None:
            import cffi
            ffi = cffi.FFI()
            ffi.cdef(_ENTRY_CDEF)
            _FFI = ffi
        return _FFI


def _load_entry(so_path: str) -> Any:
    """dlopen + symbol lookup, memoized per shared-object path."""
    with _FFI_LOCK:
        lib = _LIB_CACHE.get(so_path)
    if lib is None:
        lib = _ffi().dlopen(so_path)
        with _FFI_LOCK:
            _LIB_CACHE[so_path] = lib
    return getattr(lib, ENTRY_SYMBOL)


def compile_so(c_source: str, toolchain: Toolchain) -> str:
    """Compile *c_source* to a shared object, going through the
    on-disk artifact store when enabled; returns the .so path."""
    from repro.clc import cache

    digest = hashlib.sha256(c_source.encode()).hexdigest()
    cached = cache.native_load(digest, toolchain.id)
    if cached is not None:
        return cached

    def build(out_path: Path) -> None:
        with tempfile.TemporaryDirectory(prefix="repro-native") as tmp:
            src = Path(tmp) / "kernel.c"
            obj = Path(tmp) / "kernel.so"
            src.write_text(c_source)
            result = subprocess.run(
                [toolchain.cc, *_CFLAGS, str(src), "-o", str(obj), "-lm"],
                capture_output=True, text=True, timeout=300)
            if result.returncode != 0 or not obj.exists():
                raise NativeLoweringError(
                    "ND001", "C compilation failed:\n"
                    + (result.stderr or result.stdout or "")[-2000:])
            out_path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_out = tempfile.mkstemp(dir=out_path.parent,
                                           suffix=".so.tmp")
            os.close(fd)
            shutil.copyfile(obj, tmp_out)
            os.replace(tmp_out, out_path)

    return cache.native_store(digest, toolchain.id, build)


# ---------------------------------------------------------------------------
# C prelude shared by every generated kernel
# ---------------------------------------------------------------------------

_PRELUDE = """\
#include <stdint.h>
#include <string.h>
#include <math.h>

typedef struct {
    int64_t gid[3]; int64_t lid[3]; int64_t grp[3];
    int64_t gsz[3]; int64_t lsz[3]; int64_t dim;
} wi_t;

static void clc_decomp(int64_t t, const int64_t *dims, int64_t d,
                       int64_t *out) {
    int64_t k;
    for (k = 0; k < 3; ++k) out[k] = 0;
    for (k = d - 1; k >= 0; --k) { out[k] = t % dims[k]; t /= dims[k]; }
}

static void wi_fill(wi_t *wi, const int64_t *meta, int64_t g, int64_t l) {
    int64_t k, d = meta[0];
    clc_decomp(g, meta + 7, d, wi->grp);
    clc_decomp(l, meta + 4, d, wi->lid);
    for (k = 0; k < 3; ++k) {
        wi->gsz[k] = k < d ? meta[1 + k] : 1;
        wi->lsz[k] = k < d ? meta[4 + k] : 1;
        wi->gid[k] = wi->grp[k] * wi->lsz[k] + wi->lid[k];
    }
    wi->dim = d;
}

#define PW(P, I) ((I) >= 0 ? (I) : (P).n + (I))
#define PIDX(P, I) ((P).p[PW((P), (I))])
#define AW(N, I) ((I) >= 0 ? (I) : (N) + (I))
#define CLC_MIN(a, b) ((a) != (a) ? (a) : ((b) != (b) ? (b) : ((a) < (b) ? (a) : (b))))
#define CLC_MAX(a, b) ((a) != (a) ? (a) : ((b) != (b) ? (b) : ((a) > (b) ? (a) : (b))))
#define CLC_ABS(x) ((x) < 0 ? -(x) : (x))
#define CLC_SIGN(x) ((x) != (x) ? (x) : ((x) > 0 ? 1 : ((x) < 0 ? -1 : (x))))
"""

_LIBM_1 = {
    "sqrt": "sqrt", "fabs": "fabs", "exp": "exp", "exp2": "exp2",
    "log": "log", "log2": "log2", "log10": "log10", "sin": "sin",
    "cos": "cos", "tan": "tan", "asin": "asin", "acos": "acos",
    "atan": "atan", "floor": "floor", "ceil": "ceil", "trunc": "trunc",
    "round": "rint",
}
_LIBM_2 = {"pow": "pow", "atan2": "atan2", "fmod": "fmod",
           "hypot": "hypot", "copysign": "copysign"}

_CMP_OPS = {"<", ">", "<=", ">=", "==", "!="}
_SHIFT_OPS = {"<<", ">>"}
_BITWISE_OPS = {"&", "|", "^"}
_ARITH_OPS = {"+", "-", "*", "/"}

_BUILTIN_KIND_CACHE: dict[tuple, Kind] = {}


def _builtin_result_kind(name: str, arg_kinds: Sequence[Kind]) -> Kind:
    """Result kind of a math builtin, computed by evaluating the
    interpreter's own numpy implementation on token values — so the
    native tier can never disagree with per-item typing."""
    key = (name, tuple(arg_kinds))
    cached = _BUILTIN_KIND_CACHE.get(key)
    if cached is not None:
        return cached
    impl = BUILTINS[name].impl
    with np.errstate(all="ignore"):
        result = impl(*[k.sample() for k in arg_kinds])
    kind: Kind
    if isinstance(result, np.generic):
        kind = strong_kind(result.dtype)
    elif isinstance(result, bool):
        kind = WEAK_BOOL
    elif isinstance(result, int):
        kind = WEAK_INT
    else:
        kind = WEAK_FLOAT
    _BUILTIN_KIND_CACHE[key] = kind
    return kind


@dataclass
class _Val:
    text: str
    kind: AnyKind


@dataclass
class _Slot:
    """One scope-resolved variable (parameter or local declaration)."""

    name: str
    cname: str
    kind: Optional[AnyKind] = None
    declared: Optional[ScalarType] = None
    is_array: bool = False
    elem: str = ""           # array element dtype name
    size: int = 0
    addr_space: str = ""     # "" private, "local"
    is_param: bool = False


@dataclass
class _FnInstance:
    """One monomorphized lowering of a helper function."""

    cname: str
    sig: tuple
    ret: Optional[Kind] = None  # None while in progress / for void
    void: bool = False
    code: str = ""


@dataclass
class LoweredKernel:
    """Everything the runtime needs about one compiled specialization."""

    c_source: str
    group_mode: bool
    has_barrier: bool
    has_atomic: bool
    has_float_atomic: bool
    param_is_pointer: list[bool]
    #: staging numpy dtype per scalar param (None for pointer params)
    scalar_dtypes: list[Optional[np.dtype]]


def _err(code: str, message: str, node: Optional[ast.Node] = None
         ) -> NativeLoweringError:
    line = getattr(node, "line", 0) if node is not None else 0
    return NativeLoweringError(code, message, line)


def _contains_barrier(node: Any) -> bool:
    if isinstance(node, ast.Call) and node.name == "barrier":
        return True
    if isinstance(node, ast.Node):
        for f in vars(node).values():
            if _contains_barrier(f):
                return True
    elif isinstance(node, list):
        for item in node:
            if _contains_barrier(item):
                return True
    return False


class _UnitLowering:
    """Shared state while lowering one kernel specialization: helper
    instances, generated pointer-struct types, and safety flags."""

    def __init__(self, unit: ast.TranslationUnit) -> None:
        self.unit = unit
        self.functions = {f.name: f for f in unit.functions}
        self.instances: dict[tuple, _FnInstance] = {}
        self.instance_defs: list[str] = []
        self.in_progress: set[tuple] = set()
        self.ptr_dtypes: set[str] = set()
        self.has_atomic = False
        self.has_float_atomic = False
        self.counter = 0

    def ptr_struct(self, dtype: str) -> str:
        self.ptr_dtypes.add(dtype)
        return f"ptr_{dtype}"

    def instance(self, name: str, arg_kinds: tuple) -> _FnInstance:
        key = (name, arg_kinds)
        inst = self.instances.get(key)
        if inst is not None:
            if key in self.in_progress:
                raise _err("ND006",
                           f"recursive helper function {name!r} is not "
                           "supported by the native tier")
            return inst
        func = self.functions.get(name)
        if func is None:
            raise _err("ND004", f"unknown function {name!r}")
        self.counter += 1
        inst = _FnInstance(cname=f"fn_{name}_{self.counter}",
                           sig=arg_kinds)
        self.instances[key] = inst
        self.in_progress.add(key)
        try:
            low = _FnLowering(self, func, arg_kinds, kernel=False)
            low.lower_helper(inst)
        finally:
            self.in_progress.discard(key)
        self.instance_defs.append(inst.code)
        return inst

    def struct_defs(self) -> str:
        lines = []
        for dtype in sorted(self.ptr_dtypes):
            ct = _C_TYPES[dtype]
            lines.append(f"typedef struct {{ {ct} *p; int64_t n; }} "
                         f"ptr_{dtype};")
            lines.append(f"#define PADD_{dtype}(P, K) "
                         f"((ptr_{dtype}){{(P).p + (K), (P).n - (K)}})")
        return "\n".join(lines) + ("\n" if lines else "")


class _FnLowering:
    """Lowers one function (kernel or helper instance) to C.

    Runs a flow-insensitive kind fixpoint first (assignments join into
    their target slot until stable), then a single emission pass over
    the identical traversal; slots are matched across passes by
    deterministic creation order.
    """

    def __init__(self, ul: _UnitLowering, func: ast.FunctionDef,
                 arg_kinds: tuple, kernel: bool) -> None:
        self.ul = ul
        self.func = func
        self.arg_kinds = arg_kinds
        self.kernel = kernel
        self.group_mode = False
        if kernel:
            self.group_mode = (_contains_barrier(func.body)
                               or self._has_local_decl(func))
        self.slots: list[_Slot] = []
        self.param_slots: list[_Slot] = []
        self.cursor = 0
        self.scopes: list[dict[str, _Slot]] = []
        self.out: list[str] = []
        self.ind = ""
        self.lane = "L"
        self.changed = False
        self.emitting = False
        self.phase_label = 0
        self.cur_phase_end = ""
        self.in_phase = False
        self.loop_depth = 0
        self.ret_kind: Optional[Kind] = None
        self._setup_params()

    # -- setup / passes -----------------------------------------------------

    @staticmethod
    def _has_local_decl(func: ast.FunctionDef) -> bool:
        found = False

        def walk(node: Any) -> None:
            nonlocal found
            if isinstance(node, ast.DeclStmt) and node.address_space == "local":
                found = True
            if isinstance(node, ast.Node):
                for value in vars(node).values():
                    walk(value)
            elif isinstance(node, list):
                for item in node:
                    walk(item)

        walk(func.body)
        return found

    def _setup_params(self) -> None:
        params = self.func.params
        if len(self.arg_kinds) != len(params):
            raise _err("ND004",
                       f"{self.func.name}: expected {len(params)} "
                       f"arguments, got {len(self.arg_kinds)}")
        for i, (param, akind) in enumerate(zip(params, self.arg_kinds)):
            ctype = param.ctype
            if isinstance(ctype, StructType) or (
                    isinstance(ctype, PointerType)
                    and not isinstance(ctype.pointee, ScalarType)):
                raise _err("ND002",
                           f"struct-typed parameter {param.name!r} is not "
                           "supported by the native tier", param)
            slot = _Slot(name=param.name, cname=f"v{i}_{param.name}",
                         is_param=True)
            if isinstance(ctype, PointerType):
                if not isinstance(akind, PtrKind):
                    raise _err("ND004",
                               f"pointer parameter {param.name!r} bound to "
                               "a non-array argument", param)
                slot.kind = akind
                self.ul.ptr_struct(akind.dtype)
            else:
                if not isinstance(akind, Kind) \
                        or not isinstance(ctype, ScalarType):
                    raise _err("ND004",
                               f"scalar parameter {param.name!r} bound to "
                               "an array argument", param)
                slot.declared = ctype
                slot.kind = akind
            self.slots.append(slot)
            self.param_slots.append(slot)

    def _fixpoint(self) -> None:
        for _ in range(40):
            self.changed = False
            self._run_pass(emitting=False)
            if not self.changed:
                return
        raise _err("ND004",
                   f"{self.func.name}: kind inference did not converge")

    def _run_pass(self, emitting: bool) -> None:
        self.emitting = emitting
        self.cursor = len(self.param_slots)
        self.scopes = [{s.name: s for s in self.param_slots}]
        self.out = []
        self.ind = "    "
        self.lane = "L"
        self.phase_label = 0
        self.in_phase = False
        self.loop_depth = 0
        body = self.func.body.body if self.func.body is not None else []
        if self.kernel and self.group_mode:
            self._sync_block(body)
        else:
            self._stmts(body)

    # -- scope / slot helpers -----------------------------------------------

    def _declare(self, name: str, **kw: Any) -> _Slot:
        if self.cursor < len(self.slots):
            slot = self.slots[self.cursor]
        else:
            slot = _Slot(name=name, cname=f"v{len(self.slots)}_{name}")
            for key, value in kw.items():
                setattr(slot, key, value)
            self.slots.append(slot)
        self.cursor += 1
        self.scopes[-1][name] = slot
        return slot

    def _lookup(self, name: str, node: ast.Node) -> _Slot:
        for scope in reversed(self.scopes):
            slot = scope.get(name)
            if slot is not None:
                return slot
        raise _err("ND004", f"unknown identifier {name!r}", node)

    def _touch(self, slot: _Slot, kind: AnyKind) -> None:
        if isinstance(kind, PtrKind) or isinstance(slot.kind, PtrKind):
            return
        new = kind if slot.kind is None else join(slot.kind, kind)
        if new != slot.kind:
            slot.kind = new
            self.changed = True

    def _slot_kind(self, slot: _Slot) -> AnyKind:
        assert slot.kind is not None
        return slot.kind

    def _slot_ref(self, slot: _Slot) -> str:
        if self.group_mode:
            return f"{slot.cname}[{self.lane}]"
        return slot.cname

    def _array_base(self, slot: _Slot) -> str:
        if self.group_mode and slot.addr_space != "local":
            return f"({slot.cname} + (int64_t){self.lane} * {slot.size})"
        return slot.cname

    def _emit(self, line: str) -> None:
        self.out.append(f"{self.ind}{line}")

    # -- expressions ---------------------------------------------------------

    def _expr(self, expr: Optional[ast.Expr]) -> _Val:
        if expr is None:
            raise _err("ND004", "empty expression")
        if isinstance(expr, ast.IntLiteral):
            return _Val(f"INT64_C({expr.value})", WEAK_INT)
        if isinstance(expr, ast.FloatLiteral):
            return _Val(_float_literal(expr.value), WEAK_FLOAT)
        if isinstance(expr, ast.BoolLiteral):
            return _Val("1" if expr.value else "0", WEAK_BOOL)
        if isinstance(expr, ast.Identifier):
            return self._identifier(expr)
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.Binary):
            return self._binop(expr.op, self._expr(expr.left),
                               self._expr(expr.right), expr)
        if isinstance(expr, ast.Ternary):
            return self._ternary(expr)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Index):
            return self._index(expr)
        if isinstance(expr, ast.Cast):
            return self._cast(expr)
        if isinstance(expr, ast.Member):
            raise _err("ND002", "struct member access is not supported by "
                       "the native tier", expr)
        raise _err("ND004", f"unsupported expression "
                   f"{type(expr).__name__}", expr)

    def _identifier(self, expr: ast.Identifier) -> _Val:
        slot = self._lookup(expr.name, expr)
        if slot.is_array:
            struct = self.ul.ptr_struct(slot.elem)
            return _Val(f"(({struct}){{{self._array_base(slot)}, "
                        f"{slot.size}}})", PtrKind(slot.elem))
        return _Val(f"({self._slot_ref(slot)})", self._slot_kind(slot))

    def _unary(self, expr: ast.Unary) -> _Val:
        if expr.op == "&":
            raise _err("ND004", "address-of is only supported as an atomic "
                       "operand", expr)
        val = self._expr(expr.operand)
        if expr.op == "*":
            if not isinstance(val.kind, PtrKind):
                raise _err("ND004", "dereference of a non-pointer", expr)
            return _Val(f"PIDX({val.text}, 0)", strong_kind(val.kind.dtype))
        if not isinstance(val.kind, Kind):
            raise _err("ND004", f"unary {expr.op!r} on a pointer", expr)
        if expr.op == "+":
            return val
        if expr.op == "!":
            return _Val(f"(!({val.text}))", WEAK_BOOL)
        kind = val.kind
        if kind.category == "bool":
            if not kind.weak:
                raise _err("ND004", "arithmetic on a strong bool", expr)
            kind = WEAK_INT
        if expr.op == "-":
            return _Val(f"(-({kind.ctype})({val.text}))", kind)
        if expr.op == "~":
            if kind.category == "float":
                raise _err("ND004", "bitwise not on a float", expr)
            return _Val(f"(~({kind.ctype})({val.text}))", kind)
        raise _err("ND004", f"unsupported unary operator {expr.op!r}", expr)

    def _arith_kind(self, k: Kind, node: ast.Node) -> Kind:
        if k.category == "bool":
            if not k.weak:
                raise _err("ND004", "arithmetic on a strong bool", node)
            return WEAK_INT
        return k

    def _binop(self, op: str, left: _Val, right: _Val,
               node: ast.Node) -> _Val:
        if isinstance(left.kind, PtrKind) or isinstance(right.kind, PtrKind):
            if op == "+" and isinstance(left.kind, PtrKind) \
                    and isinstance(right.kind, Kind):
                ptr, offs = left, right
            elif op == "+" and isinstance(right.kind, PtrKind) \
                    and isinstance(left.kind, Kind):
                ptr, offs = right, left
            else:
                raise _err("ND004",
                           f"unsupported pointer operation {op!r}", node)
            assert isinstance(ptr.kind, PtrKind)
            self.ul.ptr_struct(ptr.kind.dtype)
            return _Val(f"PADD_{ptr.kind.dtype}({ptr.text}, "
                        f"(int64_t)({offs.text}))", ptr.kind)
        lk, rk = left.kind, right.kind
        assert isinstance(lk, Kind) and isinstance(rk, Kind)
        if op in ("&&", "||"):
            return _Val(f"(({left.text}) {op} ({right.text}))", WEAK_BOOL)
        if op in _CMP_OPS:
            ct = join(lk, rk).ctype
            res = WEAK_BOOL if (lk.weak and rk.weak) \
                else strong_kind(np.dtype(bool))
            return _Val(f"((({ct})({left.text})) {op} "
                        f"(({ct})({right.text})))", res)
        if op == "/" and lk.category != "float" and rk.category != "float":
            # the interpreter's _idiv: C truncating division on Python ints
            return _Val(f"((int64_t)({left.text}) / "
                        f"(int64_t)({right.text}))", WEAK_INT)
        if op == "%":
            # the interpreter's _imod: int casts, sign of the dividend
            return _Val(f"((int64_t)({left.text}) % "
                        f"(int64_t)({right.text}))", WEAK_INT)
        if op in _ARITH_OPS or op in _SHIFT_OPS:
            lk = self._arith_kind(lk, node)
            rk = self._arith_kind(rk, node)
            kind = join(lk, rk)
            if op in _SHIFT_OPS and kind.category == "float":
                raise _err("ND004", "shift on a float", node)
            ct = kind.ctype
            return _Val(f"((({ct})({left.text})) {op} "
                        f"(({ct})({right.text})))", kind)
        if op in _BITWISE_OPS:
            kind = join(lk, rk)
            if kind.category == "float":
                raise _err("ND004", "bitwise operator on a float", node)
            ct = kind.ctype
            return _Val(f"((({ct})({left.text})) {op} "
                        f"(({ct})({right.text})))", kind)
        raise _err("ND004", f"unsupported binary operator {op!r}", node)

    def _ternary(self, expr: ast.Ternary) -> _Val:
        cond = self._expr(expr.cond)
        then = self._expr(expr.then)
        other = self._expr(expr.otherwise)
        if isinstance(then.kind, PtrKind) or isinstance(other.kind, PtrKind):
            if then.kind != other.kind:
                raise _err("ND004", "mismatched pointer ternary", expr)
            return _Val(f"(({cond.text}) ? ({then.text}) : "
                        f"({other.text}))", then.kind)
        assert isinstance(then.kind, Kind) and isinstance(other.kind, Kind)
        kind = join(then.kind, other.kind)
        ct = kind.ctype
        return _Val(f"(({cond.text}) ? (({ct})({then.text})) : "
                    f"(({ct})({other.text})))", kind)

    def _cast(self, expr: ast.Cast) -> _Val:
        val = self._expr(expr.operand)
        target = expr.target_type
        if not isinstance(target, ScalarType) \
                or not isinstance(val.kind, Kind):
            raise _err("ND004", "unsupported cast", expr)
        if target.name == "bool":
            return _Val(f"((({val.text}) != 0) ? 1 : 0)", WEAK_BOOL)
        if target.is_float:
            return _Val(f"((double)({val.text}))", WEAK_FLOAT)
        return _Val(f"((int64_t)({val.text}))", WEAK_INT)

    def _index(self, expr: ast.Index) -> _Val:
        base = self._expr(expr.base)
        if not isinstance(base.kind, PtrKind):
            raise _err("ND004", "indexing a non-pointer value", expr)
        idx = self._expr(expr.index)
        if not isinstance(idx.kind, Kind):
            raise _err("ND004", "pointer used as an index", expr)
        return _Val(f"PIDX({base.text}, (int64_t)({idx.text}))",
                    strong_kind(base.kind.dtype))

    # -- calls ---------------------------------------------------------------

    _WI_FIELDS = {
        "get_global_id": "gid", "get_local_id": "lid",
        "get_group_id": "grp", "get_global_size": "gsz",
        "get_local_size": "lsz",
    }

    def _call(self, expr: ast.Call) -> _Val:
        name = expr.name
        if name in WORK_ITEM_FUNCTIONS:
            if name == "get_work_dim":
                return _Val("(wi->dim)", WEAK_INT)
            dim = self._expr(expr.args[0])
            dtext = f"(int64_t)({dim.text})"
            if name == "get_num_groups":
                return _Val(f"(wi->gsz[{dtext}] / wi->lsz[{dtext}])",
                            WEAK_INT)
            return _Val(f"(wi->{self._WI_FIELDS[name]}[{dtext}])", WEAK_INT)
        if name == "barrier":
            raise _err("ND005", "barrier in a position the phase "
                       "transformation cannot split (divergent or "
                       "value context)", expr)
        if name in ATOMIC_FUNCTIONS:
            raise _err("ND004", "atomic calls are only supported in "
                       "statement position", expr)
        if name in self.ul.functions:
            vals = [self._expr(a) for a in expr.args]
            inst = self.ul.instance(name, tuple(v.kind for v in vals))
            args = ", ".join(
                [f"({v.kind.struct})({v.text})" if isinstance(v.kind, PtrKind)
                 else f"({v.kind.ctype})({v.text})" for v in vals])
            sep = ", " if args else ""
            kind = inst.ret if inst.ret is not None else WEAK_INT
            return _Val(f"{inst.cname}(wi{sep}{args})", kind)
        if name in BUILTINS:
            vals = [self._expr(a) for a in expr.args]
            kinds = []
            for v in vals:
                if not isinstance(v.kind, Kind):
                    raise _err("ND004",
                               f"pointer argument to builtin {name!r}", expr)
                kinds.append(v.kind)
            out = _builtin_result_kind(name, kinds)
            return _Val(self._emit_builtin(name, vals, kinds, out, expr), out)
        raise _err("ND004", f"unknown function {name!r}", expr)

    def _emit_builtin(self, name: str, vals: list[_Val], kinds: list[Kind],
                      out: Kind, node: ast.Node) -> str:
        base = name[7:] if name.startswith("native_") \
            and name != "native_divide" else name
        oct_ = out.ctype
        texts = [v.text for v in vals]
        if base in ("rsqrt",):
            if out.dtype == "float32":
                return f"(1.0f / (float)sqrt((double)({texts[0]})))"
            return f"(1.0 / sqrt((double)({texts[0]})))"
        if base == "sign":
            return f"(CLC_SIGN(({oct_})({texts[0]})))"
        if base in ("min", "max", "fmin", "fmax"):
            macro = "CLC_MIN" if base in ("min", "fmin") else "CLC_MAX"
            return (f"({macro}(({oct_})({texts[0]}), "
                    f"({oct_})({texts[1]})))")
        if base == "abs":
            if out.category == "float":
                inner = f"fabs((double)({texts[0]}))"
                return f"(({oct_})({inner}))"
            return f"(CLC_ABS(({oct_})({texts[0]})))"
        if base == "clamp":
            inner_k = _builtin_result_kind("max", [kinds[0], kinds[1]])
            ict = inner_k.ctype
            inner = (f"CLC_MAX(({ict})({texts[0]}), "
                     f"({ict})({texts[1]}))")
            return (f"(CLC_MIN(({oct_})({inner}), "
                    f"({oct_})({texts[2]})))")
        if base in ("mad", "fma"):
            ab = self._binop("*", vals[0], vals[1], node)
            return self._binop("+", ab, vals[2], node).text
        if base == "native_divide":
            return f"((({oct_})({texts[0]})) / (({oct_})({texts[1]})))"
        if base == "isnan":
            return f"((({texts[0]}) != ({texts[0]})) ? 1 : 0)"
        if base == "isinf":
            return f"(isinf((double)({texts[0]})) ? 1 : 0)"
        if base == "fabs" and out.category != "float":
            return f"(CLC_ABS(({oct_})({texts[0]})))"
        if base == "fmod" and out.category != "float":
            return (f"((({oct_})({texts[0]})) % "
                    f"(({oct_})({texts[1]})))")
        if base == "pow" and out.category != "float":
            return (f"(({oct_})(pow((double)({texts[0]}), "
                    f"(double)({texts[1]}))))")
        if base in _LIBM_1:
            inner = f"{_LIBM_1[base]}((double)({texts[0]}))"
            if out.dtype == "float32":
                return f"((float)({inner}))"
            return f"({inner})"
        if base in _LIBM_2:
            inner = (f"{_LIBM_2[base]}((double)({texts[0]}), "
                     f"(double)({texts[1]}))")
            if out.dtype == "float32":
                return f"((float)({inner}))"
            return f"({inner})"
        raise _err("ND004", f"builtin {name!r} is not supported by the "
                   "native tier", node)

    # -- statements ----------------------------------------------------------

    def _stmts(self, stmts: Sequence[ast.Stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _block(self, stmt: ast.Stmt) -> None:
        self.scopes.append({})
        self._emit("{")
        self.ind += "    "
        if isinstance(stmt, ast.CompoundStmt):
            self._stmts(stmt.body)
        else:
            self._stmt(stmt)
        self.ind = self.ind[:-4]
        self._emit("}")
        self.scopes.pop()

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.DeclStmt):
            self._decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr_stmt(stmt)
        elif isinstance(stmt, ast.CompoundStmt):
            self._block(stmt)
        elif isinstance(stmt, ast.IfStmt):
            cond = self._expr(stmt.cond)
            self._emit(f"if ({cond.text})")
            self._block(stmt.then)
            if stmt.otherwise is not None:
                self._emit("else")
                self._block(stmt.otherwise)
        elif isinstance(stmt, ast.ForStmt):
            self.scopes.append({})
            self._emit("{")
            self.ind += "    "
            if stmt.init is not None:
                self._stmt(stmt.init)
            cond = self._expr(stmt.cond).text if stmt.cond is not None \
                else "1"
            step = self._expr_text(stmt.step) if stmt.step is not None else ""
            self._emit(f"for (; {cond}; {step})")
            self.loop_depth += 1
            self._block(stmt.body)
            self.loop_depth -= 1
            self.ind = self.ind[:-4]
            self._emit("}")
            self.scopes.pop()
        elif isinstance(stmt, ast.WhileStmt):
            cond = self._expr(stmt.cond)
            self._emit(f"while ({cond.text})")
            self.loop_depth += 1
            self._block(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.DoWhileStmt):
            self._emit("do")
            self.loop_depth += 1
            self._block(stmt.body)
            self.loop_depth -= 1
            cond = self._expr(stmt.cond)
            self._emit(f"while ({cond.text});")
        elif isinstance(stmt, ast.ReturnStmt):
            self._return(stmt)
        elif isinstance(stmt, ast.BreakStmt):
            self._jump_guard(stmt, "break")
            self._emit("break;")
        elif isinstance(stmt, ast.ContinueStmt):
            self._jump_guard(stmt, "continue")
            self._emit("continue;")
        else:
            raise _err("ND004",
                       f"unsupported statement {type(stmt).__name__}", stmt)

    def _jump_guard(self, stmt: ast.Stmt, word: str) -> None:
        if self.kernel and self.group_mode and self.in_phase \
                and self.loop_depth == 0:
            raise _err("ND005",
                       f"{word} would cross a barrier phase boundary", stmt)

    def _return(self, stmt: ast.ReturnStmt) -> None:
        if self.kernel:
            if stmt.value is not None:
                raise _err("ND004", "kernel return with a value", stmt)
            if self.group_mode:
                if not self.in_phase:
                    raise _err("ND005", "return in a position the phase "
                               "transformation cannot split", stmt)
                self._emit(f"{{ done_[L] = 1; goto {self.cur_phase_end}; }}")
            else:
                self._emit("return;")
            return
        if stmt.value is None:
            self._emit("return;")
            return
        val = self._expr(stmt.value)
        if not isinstance(val.kind, Kind):
            raise _err("ND004", "helper returns a pointer", stmt)
        self.ret_kind = val.kind if self.ret_kind is None \
            else join(self.ret_kind, val.kind)
        self._emit(f"return ({self.ret_kind.ctype})({val.text});")

    def _decl(self, stmt: ast.DeclStmt) -> None:
        base = stmt.base_type
        if not isinstance(base, ScalarType):
            raise _err("ND002", "struct declarations are not supported by "
                       "the native tier", stmt)
        for decl in stmt.declarators:
            if decl.array_size is not None:
                if not isinstance(decl.array_size, ast.IntLiteral):
                    raise _err("ND004", "array sizes must be integer "
                               "literals in the native tier", stmt)
                if decl.init is not None:
                    raise _err("ND004", "array initializers are not "
                               "supported by the native tier", stmt)
                if stmt.address_space == "local" and not self.kernel:
                    raise _err("ND004", "__local declaration inside a "
                               "helper function", stmt)
                slot = self._declare(decl.name, is_array=True,
                                     elem=base.dtype().name,
                                     size=int(decl.array_size.value),
                                     addr_space=stmt.address_space or "")
                self.ul.ptr_struct(slot.elem)
                if slot.addr_space != "local":
                    # per-item allocates a zeroed array each time the
                    # declaration executes
                    ct = _C_TYPES[slot.elem]
                    self._emit(f"memset({self._array_base(slot)}, 0, "
                               f"{slot.size} * sizeof({ct}));")
            elif decl.pointer:
                slot = self._declare(decl.name)
                if decl.init is not None:
                    val = self._expr(decl.init)
                    if not isinstance(val.kind, PtrKind):
                        raise _err("ND004", "pointer initialized from a "
                                   "non-pointer", stmt)
                    if slot.kind is None:
                        slot.kind = val.kind
                        self.changed = True
                    elif slot.kind != val.kind:
                        raise _err("ND004", "pointer rebinding changes the "
                                   "element type", stmt)
                    self._emit(f"{self._slot_ref(slot)} = {val.text};")
                else:
                    raise _err("ND004", "uninitialized pointer declaration",
                               stmt)
            else:
                slot = self._declare(decl.name, declared=base)
                cat = "bool" if base.name == "bool" else (
                    "int" if base.is_integer else "float")
                self._touch(slot, _WEAK_BY_CAT[cat])
                if decl.init is not None:
                    val = self._expr(decl.init)
                    self._store_scalar(slot, val, stmt)
                else:
                    self._emit(f"{self._slot_ref(slot)} = 0;")

    def _store_scalar(self, slot: _Slot, val: _Val, node: ast.Node) -> None:
        """Plain `=` coercion: the interpreter casts through the declared
        Python category (float() / int() / bool()) before narrowing."""
        if not isinstance(val.kind, Kind):
            raise _err("ND004", "pointer assigned to a scalar", node)
        assert slot.declared is not None
        cat = "bool" if slot.declared.name == "bool" else (
            "int" if slot.declared.is_integer else "float")
        self._touch(slot, _WEAK_BY_CAT[cat])
        kind = self._slot_kind(slot)
        assert isinstance(kind, Kind)
        ref = self._slot_ref(slot)
        if cat == "bool":
            self._emit(f"{ref} = (({val.text}) != 0) ? 1 : 0;")
        elif cat == "int":
            self._emit(f"{ref} = ({kind.ctype})((int64_t)({val.text}));")
        else:
            self._emit(f"{ref} = ({kind.ctype})((double)({val.text}));")

    def _expr_stmt(self, stmt: ast.ExprStmt) -> None:
        self._expr_stmt_inner(stmt.expr, stmt)

    def _expr_stmt_inner(self, expr: ast.Expr, node: ast.Node) -> None:
        if isinstance(expr, (ast.PreIncDec, ast.PostIncDec)):
            one = _Val("INT64_C(1)", WEAK_INT)
            op = "+" if expr.op == "++" else "-"
            self._emit(self._compound_text(expr.operand, op, one, node) + ";")
        elif isinstance(expr, ast.Assign):
            self._emit(self._assign_text(expr) + ";")
        elif isinstance(expr, ast.Binary) and expr.op == ",":
            self._expr_stmt_inner(expr.left, node)
            self._expr_stmt_inner(expr.right, node)
        elif isinstance(expr, ast.Call) and expr.name == "barrier":
            raise _err("ND005", "barrier in a position the phase "
                       "transformation cannot split", node)
        elif isinstance(expr, ast.Call) and expr.name in ATOMIC_FUNCTIONS:
            self._atomic_stmt(expr)
        else:
            val = self._expr(expr)
            self._emit(f"(void)({val.text});")

    def _expr_text(self, expr: ast.Expr) -> str:
        """Lower an expression used for side effects (for-step position)
        to a single C expression."""
        if isinstance(expr, (ast.PreIncDec, ast.PostIncDec)):
            one = _Val("INT64_C(1)", WEAK_INT)
            op = "+" if expr.op == "++" else "-"
            return self._compound_text(expr.operand, op, one, expr)
        if isinstance(expr, ast.Assign):
            return self._assign_text(expr)
        if isinstance(expr, ast.Binary) and expr.op == ",":
            return (f"{self._expr_text(expr.left)}, "
                    f"{self._expr_text(expr.right)}")
        return f"(void)({self._expr(expr).text})"

    def _assign_text(self, expr: ast.Assign) -> str:
        if expr.op == "=":
            target = expr.target
            val = self._expr(expr.value)
            if isinstance(target, ast.Identifier):
                slot = self._lookup(target.name, target)
                if slot.is_array:
                    raise _err("ND004", "assignment to an array", expr)
                if isinstance(slot.kind, PtrKind):
                    if val.kind != slot.kind:
                        raise _err("ND004", "pointer rebinding changes the "
                                   "element type", expr)
                    return f"{self._slot_ref(slot)} = {val.text}"
                return self._store_scalar_text(slot, val, expr)
            lval, elem = self._lvalue(target)
            if not isinstance(val.kind, Kind):
                raise _err("ND004", "pointer stored into a buffer", expr)
            if elem == "bool":
                return f"{lval} = ((({val.text}) != 0) ? 1 : 0)"
            return f"{lval} = ({_C_TYPES[elem]})({val.text})"
        op = expr.op[:-1]
        val = self._expr(expr.value)
        return self._compound_text(expr.target, op, val, expr)

    def _store_scalar_text(self, slot: _Slot, val: _Val,
                           node: ast.Node) -> str:
        assert slot.declared is not None
        cat = "bool" if slot.declared.name == "bool" else (
            "int" if slot.declared.is_integer else "float")
        self._touch(slot, _WEAK_BY_CAT[cat])
        kind = self._slot_kind(slot)
        assert isinstance(kind, Kind)
        ref = self._slot_ref(slot)
        if cat == "bool":
            return f"{ref} = ((({val.text}) != 0) ? 1 : 0)"
        if cat == "int":
            return f"{ref} = ({kind.ctype})((int64_t)({val.text}))"
        return f"{ref} = ({kind.ctype})((double)({val.text}))"

    def _compound_text(self, target: ast.Expr, op: str, val: _Val,
                       node: ast.Node) -> str:
        """Compound assignment / inc-dec: the interpreter applies the
        binary operator and stores the result UNcoerced."""
        if isinstance(target, ast.Identifier):
            slot = self._lookup(target.name, target)
            if slot.is_array or isinstance(slot.kind, PtrKind):
                raise _err("ND004", "compound assignment to a pointer",
                           node)
            cur = _Val(f"({self._slot_ref(slot)})", self._slot_kind(slot))
            res = self._binop(op, cur, val, node)
            assert isinstance(res.kind, Kind)
            self._touch(slot, res.kind)
            kind = self._slot_kind(slot)
            assert isinstance(kind, Kind)
            return (f"{self._slot_ref(slot)} = "
                    f"({kind.ctype})({res.text})")
        lval, elem = self._lvalue(target)
        cur = _Val(f"({lval})", strong_kind(np.dtype(elem)))
        res = self._binop(op, cur, val, node)
        if elem == "bool":
            return f"{lval} = ((({res.text}) != 0) ? 1 : 0)"
        return f"{lval} = ({_C_TYPES[elem]})({res.text})"

    def _lvalue(self, target: ast.Expr) -> tuple[str, str]:
        """Lower a buffer-store target to (C lvalue text, element dtype)."""
        if isinstance(target, ast.Unary) and target.op == "*":
            base = self._expr(target.operand)
            if not isinstance(base.kind, PtrKind):
                raise _err("ND004", "store through a non-pointer", target)
            return f"PIDX({base.text}, 0)", base.kind.dtype
        if isinstance(target, ast.Index):
            base = self._expr(target.base)
            if not isinstance(base.kind, PtrKind):
                raise _err("ND004", "store into a non-pointer", target)
            idx = self._expr(target.index)
            if not isinstance(idx.kind, Kind):
                raise _err("ND004", "pointer used as an index", target)
            return (f"PIDX({base.text}, (int64_t)({idx.text}))",
                    base.kind.dtype)
        raise _err("ND004", "unsupported assignment target", target)

    def _atomic_stmt(self, expr: ast.Call) -> None:
        ref = expr.args[0]
        if not (isinstance(ref, ast.Unary) and ref.op == "&"
                and isinstance(ref.operand, ast.Index)):
            raise _err("ND004", "atomic operand must be &buf[index]", expr)
        index = ref.operand
        base = self._expr(index.base)
        if not isinstance(base.kind, PtrKind):
            raise _err("ND004", "atomic on a non-pointer", expr)
        idx = self._expr(index.index)
        if not isinstance(idx.kind, Kind):
            raise _err("ND004", "pointer used as an atomic index", expr)
        if expr.name == "atomic_inc":
            amount = _Val("INT64_C(1)", WEAK_INT)
        else:
            amount = self._expr(expr.args[1])
            if not isinstance(amount.kind, Kind):
                raise _err("ND004", "pointer atomic amount", expr)
        elem = base.kind.dtype
        ct = _C_TYPES[elem]
        self.ul.has_atomic = True
        if np.dtype(elem).kind == "f":
            # no portable float atomic intrinsic; this forces the
            # launcher onto the sequential path
            self.ul.has_float_atomic = True
            op = "+=" if expr.name in ("atomic_add", "atomic_inc") else "-="
            self._emit(f"PIDX({base.text}, (int64_t)({idx.text})) "
                       f"{op} ({ct})({amount.text});")
            return
        if elem == "bool":
            raise _err("ND004", "atomic on a bool buffer", expr)
        intr = "__atomic_fetch_sub" if expr.name == "atomic_sub" \
            else "__atomic_fetch_add"
        ptr = base.text
        self._emit(f"(void){intr}(&({ptr}).p[PW(({ptr}), "
                   f"(int64_t)({idx.text}))], ({ct})({amount.text}), "
                   f"__ATOMIC_RELAXED);")

    # -- barrier phase transformation (group mode) ---------------------------

    def _lane0_expr(self, expr: ast.Expr) -> _Val:
        prev = self.lane
        self.lane = "0"
        try:
            return self._expr(expr)
        finally:
            self.lane = prev

    def _phase_begin(self) -> str:
        self.phase_label += 1
        label = f"ph{self.phase_label}_end"
        self._emit("for (int64_t L = 0; L < NL; ++L) {")
        self.ind += "    "
        self._emit("if (done_[L]) continue;")
        self._emit("wi_t wi_s; wi_fill(&wi_s, meta, g, L);")
        self._emit("const wi_t *wi = &wi_s; (void) wi;")
        self.cur_phase_end = label
        self.in_phase = True
        self.loop_depth = 0
        return label

    def _phase_end(self, label: str) -> None:
        self._emit(f"{label}: ;")
        self.in_phase = False
        self.ind = self.ind[:-4]
        self._emit("}")

    def _phase(self, stmts: Sequence[ast.Stmt]) -> None:
        label = self._phase_begin()
        for stmt in stmts:
            self._stmt(stmt)
        self._phase_end(label)

    def _phase_expr(self, expr: ast.Expr) -> None:
        label = self._phase_begin()
        self._expr_stmt_inner(expr, expr)
        self._phase_end(label)

    def _sync_group_block(self, stmt: ast.Stmt) -> None:
        self.scopes.append({})
        self._emit("{")
        self.ind += "    "
        if isinstance(stmt, ast.CompoundStmt):
            self._sync_block(stmt.body)
        else:
            self._sync_block([stmt])
        self.ind = self.ind[:-4]
        self._emit("}")
        self.scopes.pop()

    def _sync_block(self, stmts: Sequence[ast.Stmt]) -> None:
        """Emit a group-synchronous statement list: barrier-free runs
        become per-lane phase loops; control flow containing a barrier
        stays at group level with lane-0 (uniform) conditions."""
        buffered: list[ast.Stmt] = []

        def flush() -> None:
            if buffered:
                self._phase(list(buffered))
                buffered.clear()

        for stmt in stmts:
            if isinstance(stmt, ast.ExprStmt) \
                    and isinstance(stmt.expr, ast.Call) \
                    and stmt.expr.name == "barrier":
                flush()
            elif not _contains_barrier(stmt):
                buffered.append(stmt)
            elif isinstance(stmt, ast.CompoundStmt):
                flush()
                self._sync_group_block(stmt)
            elif isinstance(stmt, ast.IfStmt):
                flush()
                cond = self._lane0_expr(stmt.cond)
                self._emit(f"if ({cond.text})")
                self._sync_group_block(stmt.then)
                if stmt.otherwise is not None:
                    self._emit("else")
                    self._sync_group_block(stmt.otherwise)
            elif isinstance(stmt, ast.ForStmt):
                flush()
                self.scopes.append({})
                self._emit("{")
                self.ind += "    "
                if stmt.init is not None:
                    self._phase([stmt.init])
                self._emit("for (;;) {")
                self.ind += "    "
                if stmt.cond is not None:
                    cond = self._lane0_expr(stmt.cond)
                    self._emit(f"if (!({cond.text})) break;")
                self._sync_group_block(stmt.body)
                if stmt.step is not None:
                    self._phase_expr(stmt.step)
                self.ind = self.ind[:-4]
                self._emit("}")
                self.ind = self.ind[:-4]
                self._emit("}")
                self.scopes.pop()
            elif isinstance(stmt, ast.WhileStmt):
                flush()
                self._emit("for (;;) {")
                self.ind += "    "
                cond = self._lane0_expr(stmt.cond)
                self._emit(f"if (!({cond.text})) break;")
                self._sync_group_block(stmt.body)
                self.ind = self.ind[:-4]
                self._emit("}")
            else:
                flush()
                raise _err("ND005",
                           "barrier inside a "
                           f"{type(stmt).__name__} the phase "
                           "transformation cannot split", stmt)
        flush()

    # -- assembly ------------------------------------------------------------

    def _storage_decls(self) -> list[str]:
        lines: list[str] = []
        for slot in self.slots:
            if slot.is_param and not self.group_mode:
                continue
            if slot.is_array:
                ct = _C_TYPES[slot.elem]
                if self.group_mode and slot.addr_space != "local":
                    lines.append(f"{ct} {slot.cname}[NL * {slot.size}];")
                else:
                    lines.append(f"{ct} {slot.cname}[{slot.size}];")
                continue
            kind = slot.kind
            if kind is None:
                continue
            ct = kind.struct if isinstance(kind, PtrKind) else kind.ctype
            if self.group_mode:
                lines.append(f"{ct} {slot.cname}[NL];")
            else:
                lines.append(f"{ct} {slot.cname};")
        return lines

    def lower_helper(self, inst: _FnInstance) -> None:
        self._fixpoint()
        self._run_pass(emitting=True)
        rtype = self.func.return_type
        void = rtype.is_void
        if not void and self.ret_kind is None:
            raise _err("ND004",
                       f"helper {self.func.name!r} never returns a value")
        inst.void = void
        inst.ret = None if void else self.ret_kind
        params: list[str] = []
        seeds: list[str] = []
        for i, slot in enumerate(self.param_slots):
            kind = slot.kind
            if isinstance(kind, PtrKind):
                params.append(f"{kind.struct} in_{i}")
                seeds.append(f"    {kind.struct} {slot.cname} = in_{i};")
            else:
                assert isinstance(kind, Kind)
                sig_kind = self.arg_kinds[i]
                assert isinstance(sig_kind, Kind)
                params.append(f"{sig_kind.ctype} in_{i}")
                seeds.append(f"    {kind.ctype} {slot.cname} = "
                             f"({kind.ctype})in_{i};")
        ret_ct = "void" if void or inst.ret is None else inst.ret.ctype
        plist = ", ".join(["const wi_t *wi"] + params)
        code = [f"static {ret_ct} {inst.cname}({plist}) {{",
                "    (void) wi;"]
        code += seeds
        code += [f"    {line}" for line in self._storage_decls()]
        code += self.out
        code.append("}")
        inst.code = "\n".join(code)

    def lower_kernel_text(self) -> str:
        self._fixpoint()
        self._run_pass(emitting=True)
        body = list(self.out)
        unpack: list[str] = []
        for i, akind in enumerate(self.arg_kinds):
            if isinstance(akind, PtrKind):
                ct = _C_TYPES[akind.dtype]
                unpack.append(f"{akind.struct} a_{i} = {{ ({ct} *) "
                              f"bufs[{i}], lens[{i}] }};")
            else:
                assert isinstance(akind, Kind)
                unpack.append(f"{akind.ctype} p_{i} = "
                              f"*({akind.ctype} *) bufs[{i}];")
        lines: list[str] = []
        entry = (f"void {ENTRY_SYMBOL}(void **bufs, int64_t *lens, "
                 "int64_t *meta, int64_t t0, int64_t t1) {")
        if not self.group_mode:
            params: list[str] = []
            seeds: list[str] = []
            call_args = ["&wi_s"]
            for i, slot in enumerate(self.param_slots):
                kind = slot.kind
                if isinstance(kind, PtrKind):
                    params.append(f"{kind.struct} in_{i}")
                    seeds.append(f"    {kind.struct} {slot.cname} = "
                                 f"in_{i};")
                    call_args.append(f"a_{i}")
                else:
                    assert isinstance(kind, Kind)
                    akind = self.arg_kinds[i]
                    assert isinstance(akind, Kind)
                    params.append(f"{akind.ctype} in_{i}")
                    seeds.append(f"    {kind.ctype} {slot.cname} = "
                                 f"({kind.ctype})in_{i};")
                    call_args.append(f"p_{i}")
            plist = ", ".join(["const wi_t *wi"] + params)
            lines.append(f"static void k_body({plist}) {{")
            lines.append("    (void) wi;")
            lines += seeds
            lines += [f"    {line}" for line in self._storage_decls()]
            lines += body
            lines.append("}")
            lines.append("")
            lines.append(entry)
            lines += [f"    {u}" for u in unpack]
            lines.append("    int64_t NL = meta[10];")
            lines.append("    (void) lens;")
            lines.append("    for (int64_t t = t0; t < t1; ++t) {")
            lines.append("        wi_t wi_s; "
                         "wi_fill(&wi_s, meta, t / NL, t % NL);")
            lines.append(f"        k_body({', '.join(call_args)});")
            lines.append("    }")
            lines.append("}")
        else:
            lines.append(entry)
            lines += [f"    {u}" for u in unpack]
            lines.append("    int64_t NL = meta[10];")
            lines.append("    (void) lens;")
            lines.append("    for (int64_t g = t0; g < t1; ++g) {")
            lines.append("    wi_t wi0_s; wi_fill(&wi0_s, meta, g, 0);")
            lines.append("    const wi_t *wi = &wi0_s; (void) wi;")
            lines.append("    uint8_t done_[NL]; "
                         "memset(done_, 0, (size_t)NL);")
            lines += [f"    {line}" for line in self._storage_decls()]
            for slot in self.slots:
                if slot.is_array and slot.addr_space == "local":
                    lines.append(f"    memset({slot.cname}, 0, "
                                 f"sizeof({slot.cname}));")
            lines.append("    for (int64_t Ls_ = 0; Ls_ < NL; ++Ls_) {")
            for i, slot in enumerate(self.param_slots):
                kind = slot.kind
                if isinstance(kind, PtrKind):
                    lines.append(f"        {slot.cname}[Ls_] = a_{i};")
                else:
                    assert isinstance(kind, Kind)
                    lines.append(f"        {slot.cname}[Ls_] = "
                                 f"({kind.ctype})p_{i};")
            lines.append("    }")
            lines += body
            lines.append("    }")
            lines.append("}")
        return "\n".join(lines)


def lower_kernel(unit: ast.TranslationUnit, func: ast.FunctionDef,
                 arg_kinds: Sequence[AnyKind]) -> "LoweredKernel":
    """Lower one kernel (specialized to concrete argument kinds) to a
    complete C translation unit."""
    ul = _UnitLowering(unit)
    low = _FnLowering(ul, func, tuple(arg_kinds), kernel=True)
    kernel_text = low.lower_kernel_text()
    parts = [_PRELUDE, ul.struct_defs()]
    parts += ul.instance_defs
    parts.append(kernel_text)
    scalar_dtypes: list[Optional[np.dtype]] = []
    for kind in arg_kinds:
        if isinstance(kind, PtrKind):
            scalar_dtypes.append(None)
        else:
            scalar_dtypes.append(np.dtype(kind.dtype))
    return LoweredKernel(
        c_source="\n".join(parts),
        group_mode=low.group_mode,
        has_barrier=_contains_barrier(func.body),
        has_atomic=ul.has_atomic,
        has_float_atomic=ul.has_float_atomic,
        param_is_pointer=[isinstance(k, PtrKind) for k in arg_kinds],
        scalar_dtypes=scalar_dtypes,
    )


def declared_signature(func: ast.FunctionDef) -> tuple:
    """The static specialization used for blocker detection: declared
    pointee dtypes for pointers, strong declared dtypes for scalars."""
    kinds: list[AnyKind] = []
    for param in func.params:
        ctype = param.ctype
        if isinstance(ctype, PointerType):
            if not isinstance(ctype.pointee, ScalarType):
                raise _err("ND002",
                           f"struct-typed parameter {param.name!r} is not "
                           "supported by the native tier", param)
            kinds.append(PtrKind(ctype.pointee.dtype().name))
        elif isinstance(ctype, ScalarType):
            kinds.append(strong_kind(ctype.dtype()))
        else:
            raise _err("ND002",
                       f"struct-typed parameter {param.name!r} is not "
                       "supported by the native tier", param)
    return tuple(kinds)


def lowering_blockers(unit: ast.TranslationUnit,
                      func: ast.FunctionDef) -> list[str]:
    """Structural native-tier blockers for one kernel (ND002/ND004/ND005/
    ND006), found by attempting the lowering against the declared
    signature.  Environmental (toolchain) blockers are reported
    separately by :func:`toolchain_blockers`."""
    try:
        lower_kernel(unit, func, declared_signature(func))
    except NativeLoweringError as exc:
        where = f" (line {exc.line})" if exc.line else ""
        return [f"{func.name}: [{exc.code}] {exc.message}{where}"]
    return []


# ---------------------------------------------------------------------------
# runtime launcher
# ---------------------------------------------------------------------------

_PARALLEL_MIN_LANES = 4096

_POOL_LOCK = threading.Lock()
_POOL: Optional[ThreadPoolExecutor] = None


def _thread_pool() -> ThreadPoolExecutor:
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=max(1, os.cpu_count() or 1),
                thread_name_prefix="repro-native")
        return _POOL


def native_workers() -> int:
    """Thread count for parallel native launches
    (``REPRO_CLC_NATIVE_THREADS`` override, else the CPU count)."""
    spec = os.environ.get("REPRO_CLC_NATIVE_THREADS", "").strip()
    if spec:
        try:
            return max(1, int(spec))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


@dataclass
class _Variant:
    entry: Any
    lowered: LoweredKernel
    parallel_ok: bool


class NativeKernel:
    """A kernel compiled to fused, multi-threaded C; its call signature
    matches the per-item launcher (``launcher(args, gsize, lsize)``), so
    the OpenCL layer can plug any engine into
    :class:`repro.ocl.program.Kernel`.

    Lowering is specialized per argument-kind signature (buffer dtypes +
    scalar weak/strong kinds) and the resulting shared objects are
    memoized here and in the on-disk artifact cache.
    """

    def __init__(self, unit: ast.TranslationUnit, func: ast.FunctionDef,
                 toolchain: Toolchain) -> None:
        self.unit = unit
        self.func = func
        self.name = func.name
        self.toolchain = toolchain
        self._variants: dict[tuple, _Variant] = {}
        self._effects: Any = None
        self._effects_ready = False

    # -- specialization -----------------------------------------------------

    def _signature(self, args: Sequence[Any]) -> tuple:
        kinds: list[AnyKind] = []
        for param, arg in zip(self.func.params, args):
            if isinstance(param.ctype, PointerType):
                kinds.append(kind_from_value(np.asarray(arg)))
            else:
                kinds.append(kind_from_value(arg))
        return tuple(kinds)

    def _variant(self, sig: tuple) -> _Variant:
        variant = self._variants.get(sig)
        if variant is None:
            lowered = lower_kernel(self.unit, self.func, sig)
            so_path = compile_so(lowered.c_source, self.toolchain)
            entry = _load_entry(so_path)
            variant = _Variant(entry, lowered, self._parallel_ok(lowered))
            self._variants[sig] = variant
        return variant

    def _kernel_effects(self) -> Any:
        if not self._effects_ready:
            self._effects_ready = True
            try:
                from repro.analysis.effects import unit_effects
                self._effects = unit_effects(self.unit).get(self.name)
            except Exception:
                self._effects = None
        return self._effects

    def _parallel_ok(self, lowered: LoweredKernel) -> bool:
        if lowered.group_mode or lowered.has_float_atomic:
            return False
        for param in self.func.params:
            space = param.address_space or getattr(
                param.ctype, "address_space", "")
            if space == "local":
                return False
        effects = self._kernel_effects()
        if effects is None or not effects.precise \
                or not effects.uses_work_item_ids:
            return False
        for param in self.func.params:
            if not isinstance(param.ctype, PointerType):
                continue
            arg_eff = effects.args.get(param.name)
            if arg_eff is None:
                return False
            if not arg_eff.writes.is_empty and not arg_eff.writes.is_own:
                return False
            if not arg_eff.effective_writes.is_empty:
                if not (arg_eff.reads.is_empty or arg_eff.reads.is_own):
                    return False
        return True

    def _overlap_hazard(self, args: Sequence[Any]) -> bool:
        effects = self._kernel_effects()
        arrays: list[tuple[int, np.ndarray, bool]] = []
        for i, (param, arg) in enumerate(zip(self.func.params, args)):
            if not isinstance(param.ctype, PointerType):
                continue
            arg_eff = effects.args.get(param.name) if effects else None
            written = bool(arg_eff
                           and not arg_eff.effective_writes.is_empty)
            arrays.append((i, np.asarray(arg), written))
        for i, arr, written in arrays:
            if not written:
                continue
            for j, other, _ in arrays:
                if i != j and np.may_share_memory(arr, other):
                    return True
        return False

    # -- launch -------------------------------------------------------------

    def __call__(self, args: Sequence[Any], gsize: Sequence[int],
                 lsize: Sequence[int]) -> None:
        from repro.errors import InterpError
        func = self.func
        if len(args) != len(func.params):
            raise InterpError(f"kernel {func.name} expects "
                              f"{len(func.params)} args, got {len(args)}")
        gdims = [int(g) for g in gsize]
        ldims = [int(sz) for sz in lsize]
        if len(gdims) != len(ldims) or not 1 <= len(gdims) <= 3:
            raise InterpError("native engine supports 1-3 dimensional "
                              "NDRanges with matching local size")
        ngrp = [g // max(1, sz) for g, sz in zip(gdims, ldims)]
        lanes_per_group = 1
        for sz in ldims:
            lanes_per_group *= sz
        num_groups = 1
        for n in ngrp:
            num_groups *= n
        if lanes_per_group == 0 or num_groups == 0:
            return
        variant = self._variant(self._signature(args))
        lowered = variant.lowered
        ffi = _ffi()
        nargs = len(args)
        bufs = ffi.new("void *[]", max(1, nargs))
        lens = np.zeros(max(1, nargs), dtype=np.int64)
        keepalive: list[Any] = []
        copyback: list[tuple[np.ndarray, np.ndarray]] = []
        for i, arg in enumerate(args):
            if lowered.param_is_pointer[i]:
                arr = np.asarray(arg)
                if not arr.flags.c_contiguous:
                    contig = np.ascontiguousarray(arr)
                    if arr.flags.writeable:
                        copyback.append((arr, contig))
                    arr = contig
                cbuf = ffi.from_buffer("char[]", arr,
                                       require_writable=bool(
                                           arr.flags.writeable))
                keepalive.append(arr)
                keepalive.append(cbuf)
                bufs[i] = cbuf
                lens[i] = arr.size
            else:
                staged = np.zeros(1, dtype=lowered.scalar_dtypes[i])
                staged[0] = arg
                cbuf = ffi.from_buffer("char[]", staged,
                                       require_writable=False)
                keepalive.append(staged)
                keepalive.append(cbuf)
                bufs[i] = cbuf
                lens[i] = 1
        meta = np.zeros(12, dtype=np.int64)
        meta[0] = len(gdims)
        for d in range(3):
            meta[1 + d] = gdims[d] if d < len(gdims) else 1
            meta[4 + d] = ldims[d] if d < len(ldims) else 1
            meta[7 + d] = ngrp[d] if d < len(ngrp) else 1
        meta[10] = lanes_per_group
        meta[11] = num_groups
        lens_buf = ffi.from_buffer("int64_t[]", lens)
        meta_buf = ffi.from_buffer("int64_t[]", meta)
        total = num_groups if lowered.group_mode \
            else num_groups * lanes_per_group
        workers = native_workers()
        parallel = (variant.parallel_ok and workers > 1
                    and total >= _PARALLEL_MIN_LANES
                    and not self._overlap_hazard(args))
        if parallel:
            chunk = -(-total // workers)
            spans = [(start, min(start + chunk, total))
                     for start in range(0, total, chunk)]
            pool = _thread_pool()
            futures = [pool.submit(variant.entry, bufs, lens_buf,
                                   meta_buf, start, stop)
                       for start, stop in spans]
            for future in futures:
                future.result()
        else:
            variant.entry(bufs, lens_buf, meta_buf, 0, total)
        for original, contig in copyback:
            np.copyto(original, contig)
        del keepalive
