"""Tokenizer for the mini OpenCL-C dialect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import LexError

KEYWORDS = {
    "if", "else", "for", "while", "do", "return", "break", "continue",
    "struct", "typedef", "const", "void", "true", "false",
    "kernel", "__kernel", "global", "__global", "local", "__local",
    "private", "__private", "constant", "__constant", "unsigned", "signed",
}

# Longest first so the scanner is greedy.
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^", "?",
    ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]


@dataclass(frozen=True)
class Token:
    kind: str  # "id", "keyword", "int", "float", "op", "eof"
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, raising :class:`LexError` on invalid input.

    Object-like ``#define NAME replacement`` macros are expanded
    (single pass, no function-like macros, no redefinition), covering
    the constant-definition usage OpenCL kernels rely on.
    """
    source, macros = _strip_defines(source)
    tokens = list(_scan(source))
    if not macros:
        return tokens
    expanded: list[Token] = []
    for tok in tokens:
        if tok.kind == "id" and tok.text in macros:
            for rep in macros[tok.text]:
                expanded.append(Token(rep.kind, rep.text, tok.line,
                                      tok.col))
        else:
            expanded.append(tok)
    return expanded


def _strip_defines(source: str) -> tuple[str, dict[str, list[Token]]]:
    """Remove #define lines, returning blanked source + macro table."""
    macros: dict[str, list[Token]] = {}
    out_lines = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.lstrip()
        if not stripped.startswith("#define"):
            out_lines.append(line)
            continue
        body = stripped[len("#define"):].strip()
        parts = body.split(None, 1)
        if not parts:
            raise LexError("#define needs a name", lineno, 1)
        name = parts[0]
        if "(" in name:
            raise LexError("function-like macros are not supported",
                           lineno, 1)
        if not (name[0].isalpha() or name[0] == "_") \
                or not all(c.isalnum() or c == "_" for c in name):
            raise LexError(f"invalid macro name {name!r}", lineno, 1)
        if name in macros:
            raise LexError(f"macro {name!r} redefined", lineno, 1)
        replacement = parts[1] if len(parts) > 1 else ""
        rep_tokens = [t for t in _scan(replacement) if t.kind != "eof"]
        for tok in rep_tokens:
            if tok.kind == "id" and tok.text in macros:
                raise LexError(
                    f"macro {name!r} refers to macro {tok.text!r}; "
                    "nested expansion is not supported", lineno, 1)
        macros[name] = rep_tokens
        out_lines.append("")  # keep line numbers stable
    return "\n".join(out_lines), macros


def _scan(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        # whitespace
        if ch in " \t\r\n":
            advance(1)
            continue
        # comments
        if source.startswith("//", i):
            end = source.find("\n", i)
            advance((end if end != -1 else n) - i)
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError("unterminated block comment", line, col)
            advance(end + 2 - i)
            continue
        # preprocessor: #pragma is skipped; #define handled by tokenize()
        if ch == "#":
            end = source.find("\n", i)
            directive = source[i:(end if end != -1 else n)]
            if not directive.startswith("#pragma"):
                raise LexError(f"unsupported preprocessor directive: "
                               f"{directive.split()[0]}", line, col)
            advance((end if end != -1 else n) - i)
            continue
        tok_line, tok_col = line, col
        # numbers
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            if source.startswith(("0x", "0X"), i):
                j = i + 2
                while j < n and (source[j] in "0123456789abcdefABCDEF"):
                    j += 1
                text = source[i:j]
                suffix = ""
                while j < n and source[j] in "uUlL":
                    suffix += source[j].lower()
                    j += 1
                advance(j - i)
                yield Token("int", text + suffix, tok_line, tok_col)
                continue
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == ".":
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and source[k].isdigit():
                    is_float = True
                    j = k
                    while j < n and source[j].isdigit():
                        j += 1
            suffix = ""
            while j < n and source[j] in "fFuUlL":
                suffix += source[j].lower()
                j += 1
            if "f" in suffix:
                is_float = True
            text = source[i:j]
            advance(j - i)
            yield Token("float" if is_float else "int", text, tok_line, tok_col)
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            advance(j - i)
            kind = "keyword" if text in KEYWORDS else "id"
            yield Token(kind, text, tok_line, tok_col)
            continue
        # operators / punctuation
        for op in OPERATORS:
            if source.startswith(op, i):
                advance(len(op))
                yield Token("op", op, tok_line, tok_col)
                break
        else:
            raise LexError(f"invalid character {ch!r}", line, col)
    yield Token("eof", "", line, col)
