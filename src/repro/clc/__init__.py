"""A miniature OpenCL-C compiler.

This package gives the simulated OpenCL runtime (:mod:`repro.ocl`) its
"compile kernels at runtime from source strings" capability, which is
central to SkelCL's design: user functions arrive as plain strings, are
merged with skeleton templates, and the merged source is built by the
underlying OpenCL implementation.

Pipeline: :func:`repro.clc.lexer.tokenize` →
:func:`repro.clc.parser.parse` → :func:`repro.clc.typecheck.typecheck` →
:func:`repro.clc.codegen.generate` (per-work-item Python), with
:func:`repro.clc.vectorize.try_vectorize` as a fast path for
straight-line elementwise functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clc import analysis, astnodes
from repro.clc.codegen import CompiledFunction, CompiledUnit, generate
from repro.clc.parser import parse, parse_function
from repro.clc.typecheck import typecheck
from repro.clc.types import (BOOL, CHAR, DOUBLE, FLOAT, INT, LONG,
                             PointerType, SCALAR_TYPES, ScalarType,
                             StructType, UINT, ULONG, VOID, dtype_to_ctype)
from repro.clc.vectorize import try_vectorize

__all__ = [
    "compile_source", "Program", "CompiledFunction", "CompiledUnit",
    "parse", "parse_function", "typecheck", "try_vectorize",
    "ScalarType", "StructType", "PointerType", "dtype_to_ctype",
    "BOOL", "CHAR", "INT", "UINT", "LONG", "ULONG", "FLOAT", "DOUBLE",
    "VOID", "SCALAR_TYPES", "astnodes", "analysis",
]


@dataclass
class Program:
    """A fully compiled translation unit plus its analysis products."""

    source: str
    unit: "astnodes.TranslationUnit"
    compiled: CompiledUnit
    #: per-function static op estimate (per work item)
    op_counts: dict[str, float] = field(default_factory=dict)
    #: kernel name -> (BatchKernel | None, blockers) — see batch_kernel
    _batch: dict = field(default_factory=dict, repr=False)
    #: kernel name -> (NativeKernel | None, blockers) — see native_kernel
    _native: dict = field(default_factory=dict, repr=False)

    @property
    def kernels(self) -> dict[str, CompiledFunction]:
        return self.compiled.kernels

    @property
    def functions(self) -> dict[str, CompiledFunction]:
        return self.compiled.functions

    def batch_kernel(self, name: str):
        """The whole-NDRange evaluator for kernel *name*, plus why not.

        Returns ``(batch_kernel, blockers)``: the first element is a
        :class:`repro.clc.batch.BatchKernel` when the batch engine can
        lower the kernel, else ``None`` with a non-empty list of
        human-readable blockers (the engine-selection report — there
        are no silent fallbacks).
        """
        cached = self._batch.get(name)
        if cached is not None:
            return cached
        from repro.clc.analysis import kernel_engine_blockers
        func = next((f for f in self.unit.functions
                     if f.name == name and f.is_kernel), None)
        if func is None:
            raise KeyError(f"no kernel named {name!r}")
        blockers = kernel_engine_blockers(self.unit, func)
        kernel = None
        if not blockers:
            from repro.clc.batch import BatchKernel
            kernel = BatchKernel(self.unit, func)
        result = (kernel, blockers)
        self._batch[name] = result
        return result

    def native_kernel(self, name: str):
        """The fused-C JIT evaluator for kernel *name*, plus why not.

        Returns ``(native_kernel, blockers)``: the first element is a
        :class:`repro.clc.native.NativeKernel` when the native tier can
        lower the kernel *and* a C toolchain + cffi are available, else
        ``None`` with a non-empty list of blockers.  Structural
        blockers (ND002/ND004/ND005/ND006, barrier divergence) come
        first; environmental ones (ND001: no compiler, no cffi) are
        appended so callers can distinguish "this kernel can never run
        native" from "this machine cannot run native today".
        """
        cached = self._native.get(name)
        if cached is not None:
            return cached
        from repro.clc import native
        from repro.clc.analysis import kernel_native_blockers
        func = next((f for f in self.unit.functions
                     if f.name == name and f.is_kernel), None)
        if func is None:
            raise KeyError(f"no kernel named {name!r}")
        blockers = kernel_native_blockers(self.unit, func)
        blockers += native.toolchain_blockers()
        kernel = None
        if not blockers:
            toolchain = native.find_toolchain()
            assert toolchain is not None
            kernel = native.NativeKernel(self.unit, func, toolchain)
        result = (kernel, blockers)
        self._native[name] = result
        return result


def compile_source(source: str, use_cache: bool | None = None) -> Program:
    """Compile dialect source into executable Python functions.

    Results are memoized on disk (:mod:`repro.clc.cache`) keyed by the
    source hash and dialect version; *use_cache* overrides the
    ``REPRO_CLC_CACHE`` environment gate.  Raises
    :class:`repro.errors.LexError`,
    :class:`repro.errors.ParseError`, or
    :class:`repro.errors.TypeCheckError` on invalid source.
    """
    from repro.clc import cache

    if use_cache is None:
        use_cache = cache.cache_enabled()
    if use_cache:
        entry = cache.load(source)
        if entry is not None:
            from repro.clc.codegen import materialize
            unit = entry["unit"]
            op_counts = entry["op_counts"]
            compiled = materialize(unit, op_counts,
                                   entry["python_source"])
            return Program(source=source, unit=unit, compiled=compiled,
                           op_counts=dict(op_counts))
    unit = parse(source)
    checker = typecheck(unit)
    compiled = generate(unit, checker.op_counts)
    if use_cache:
        cache.store(source, unit, dict(checker.op_counts),
                    compiled.python_source)
    return Program(source=source, unit=unit, compiled=compiled,
                   op_counts=dict(checker.op_counts))
