"""A miniature OpenCL-C compiler.

This package gives the simulated OpenCL runtime (:mod:`repro.ocl`) its
"compile kernels at runtime from source strings" capability, which is
central to SkelCL's design: user functions arrive as plain strings, are
merged with skeleton templates, and the merged source is built by the
underlying OpenCL implementation.

Pipeline: :func:`repro.clc.lexer.tokenize` →
:func:`repro.clc.parser.parse` → :func:`repro.clc.typecheck.typecheck` →
:func:`repro.clc.codegen.generate` (per-work-item Python), with
:func:`repro.clc.vectorize.try_vectorize` as a fast path for
straight-line elementwise functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clc import analysis, astnodes
from repro.clc.codegen import CompiledFunction, CompiledUnit, generate
from repro.clc.parser import parse, parse_function
from repro.clc.typecheck import typecheck
from repro.clc.types import (BOOL, CHAR, DOUBLE, FLOAT, INT, LONG,
                             PointerType, SCALAR_TYPES, ScalarType,
                             StructType, UINT, ULONG, VOID, dtype_to_ctype)
from repro.clc.vectorize import try_vectorize

__all__ = [
    "compile_source", "Program", "CompiledFunction", "CompiledUnit",
    "parse", "parse_function", "typecheck", "try_vectorize",
    "ScalarType", "StructType", "PointerType", "dtype_to_ctype",
    "BOOL", "CHAR", "INT", "UINT", "LONG", "ULONG", "FLOAT", "DOUBLE",
    "VOID", "SCALAR_TYPES", "astnodes", "analysis",
]


@dataclass
class Program:
    """A fully compiled translation unit plus its analysis products."""

    source: str
    unit: "astnodes.TranslationUnit"
    compiled: CompiledUnit
    #: per-function static op estimate (per work item)
    op_counts: dict[str, float] = field(default_factory=dict)

    @property
    def kernels(self) -> dict[str, CompiledFunction]:
        return self.compiled.kernels

    @property
    def functions(self) -> dict[str, CompiledFunction]:
        return self.compiled.functions


def compile_source(source: str) -> Program:
    """Compile dialect source into executable Python functions.

    Raises :class:`repro.errors.LexError`,
    :class:`repro.errors.ParseError`, or
    :class:`repro.errors.TypeCheckError` on invalid source.
    """
    unit = parse(source)
    checker = typecheck(unit)
    compiled = generate(unit, checker.op_counts)
    return Program(source=source, unit=unit, compiled=compiled,
                   op_counts=dict(checker.op_counts))
