"""Batched whole-NDRange execution engine for the OpenCL-C dialect.

The per-work-item engine (:mod:`repro.clc.codegen`) runs one Python
function call per work item — faithful but far too slow for paper-scale
NDRanges.  This module interprets a ``__kernel`` function *once* over
the entire NDRange with numpy arrays holding one element per work item
("lanes"):

- ``if``/ternary become predicated execution: an active-lane mask is
  threaded through every statement and divergent stores merge via
  ``np.where``/masked assignment;
- ``for``/``while``/``do-while`` loops iterate until every lane has
  exited (with an iteration-cap guard against runaway kernels);
- pointer reads become fancy-indexing gathers, pointer writes become
  scatter stores (``np.add.at``-family ufuncs for compound updates and
  atomics, so colliding lanes stay correct);
- work-item builtins (``get_global_id`` …) are precomputed index
  arrays;
- user helper functions are evaluated inline on whole lane arrays;
- barrier kernels run group-batched: every statement completes for all
  lanes before the next starts, which for barrier-divergence-free
  kernels (checked statically — see
  :func:`repro.clc.analysis.driver.kernel_engine_blockers`) is
  equivalent to per-group lockstep rounds; ``__local`` arrays are
  shaped ``(groups, local_size)`` and indexed per lane by group.

Numeric model: the engine mirrors the per-item engine's semantics
exactly — including NEP-50 "weak" Python scalars — so results are
bitwise identical for integer kernels and within float rounding
otherwise.  Each lane value is a :class:`Lanes` carrying a ``weak``
flag: per-item locals are Python ints/floats (weak under NEP 50), so a
batched lane array that *represents* weak values must be manually
promoted against strong (numpy-typed) operands via
``np.result_type(strong_dtype, 0 / 0.0 / False)``.  Known deliberate
divergence: weak integer lanes are int64 (per-item uses arbitrary
precision Python ints), and invalid operations on *inactive* lanes are
computed-but-discarded under ``np.errstate(all='ignore')``.
"""

from __future__ import annotations

import math
import operator
import os
from collections import OrderedDict
from typing import Any, Callable, Sequence

import numpy as np

from repro.clc import astnodes as ast
from repro.clc.builtins import (ATOMIC_FUNCTIONS, BUILTINS,
                                WORK_ITEM_FUNCTIONS)
from repro.clc.types import PointerType, ScalarType, StructType
from repro.errors import ClcError, InterpError

#: guard against loops whose exit condition never converges
LOOP_CAP = 10_000_000

Mask = Any  # None (all lanes active) or a (N,) bool ndarray


# -- lane values ---------------------------------------------------------------

class Lanes:
    """A per-lane scalar value.

    ``data`` is a Python scalar (uniform, weak), a numpy scalar
    (uniform, strong) or a ``(N,)`` array; ``weak`` tracks NEP-50
    promotion strength (True mirrors a per-item Python int/float/bool).
    Struct values are ``(N,)`` structured arrays (never weak).
    Instances are immutable by convention: masked stores build new data
    rather than writing in place (struct member stores are the one
    deliberate exception, mirroring per-item aliasing).
    """

    __slots__ = ("data", "weak")

    def __init__(self, data: Any, weak: bool) -> None:
        self.data = data
        self.weak = weak

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Lanes({self.data!r}, weak={self.weak})"


class GlobalPtr:
    """A pointer into a ``__global`` buffer: 1-D base view + offset.

    ``offset`` is a Python int (uniform) or a per-lane int64 array.
    Negative element indices mirror the per-item engine, which models
    ``p + c`` as the Python slice ``base[c:]`` — so a negative index
    resolves from the *end* of the buffer, independent of the offset.
    """

    __slots__ = ("base", "offset")

    def __init__(self, base: np.ndarray, offset: Any = 0) -> None:
        self.base = base
        self.offset = offset

    def shifted(self, delta: Any) -> "GlobalPtr":
        return GlobalPtr(self.base, self.offset + delta)


class PrivateArray:
    """A per-lane private array: shape ``(N, size)``."""

    __slots__ = ("arr",)

    def __init__(self, arr: np.ndarray) -> None:
        self.arr = arr


class GroupArray:
    """A work-group-shared (``__local``) array: shape ``(G, size)``,
    indexed per lane through the lane→group map."""

    __slots__ = ("arr",)

    def __init__(self, arr: np.ndarray) -> None:
        self.arr = arr


# -- NEP-50 weak/strong coercion ----------------------------------------------

def _is_weak_scalar(x: Any) -> bool:
    return isinstance(x, (bool, int, float)) and not isinstance(x, np.generic)


def _weak_token(data: Any) -> Any:
    """The Python-scalar token standing in for a weak array in
    ``np.result_type`` (0 for ints, 0.0 for floats, False for bools)."""
    kind = data.dtype.kind if isinstance(data, np.ndarray) else (
        "b" if isinstance(data, bool) else
        "i" if isinstance(data, int) else "f")
    if kind == "b":
        return False
    if kind in "iu":
        return 0
    return 0.0


def _coerce_pair(a: Lanes, b: Lanes) -> tuple[Any, Any, bool]:
    """Raw operands for a binary numpy op, mirroring per-item NEP-50
    behaviour.  Weak Python scalars are left alone (numpy handles them
    natively); a weak value materialized as an *array* would wrongly
    count as strong, so it is pre-cast against the strong side."""
    ad, bd = a.data, b.data
    weak = a.weak and b.weak
    if a.weak and not b.weak and isinstance(ad, np.ndarray):
        tgt = np.result_type(np.asarray(bd).dtype, _weak_token(ad))
        if ad.dtype != tgt:
            ad = ad.astype(tgt)
    if b.weak and not a.weak and isinstance(bd, np.ndarray):
        tgt = np.result_type(np.asarray(ad).dtype, _weak_token(bd))
        if bd.dtype != tgt:
            bd = bd.astype(tgt)
    return ad, bd, weak


def _coerce_args(values: list[Lanes]) -> list[Any]:
    """Coerce builtin-call arguments collectively (same rule as
    :func:`_coerce_pair`, across all strong operands)."""
    strong = [np.asarray(v.data).dtype for v in values if not v.weak]
    if not strong:
        return [v.data for v in values]
    base = np.result_type(*strong)
    out: list[Any] = []
    for v in values:
        d = v.data
        if v.weak and isinstance(d, np.ndarray):
            tgt = np.result_type(base, _weak_token(d))
            if d.dtype != tgt:
                d = d.astype(tgt)
        out.append(d)
    return out


# -- masks ---------------------------------------------------------------------

def _mask_any(mask: Mask) -> bool:
    return mask is None or bool(mask.any())


def _mask_full(mask: Mask, n: int) -> np.ndarray:
    return np.ones(n, dtype=bool) if mask is None else mask


def _mask_and(mask: Mask, cond: np.ndarray) -> np.ndarray:
    return cond if mask is None else mask & cond


def _mask_norm(mask: Mask) -> Mask:
    if mask is not None and bool(mask.all()):
        return None
    return mask


# -- C numeric helpers over lanes ---------------------------------------------

def _to_i64(data: Any) -> Any:
    """Truncate-toward-zero to int (mirrors per-item ``int(x)``).
    Arrays become int64; scalars become Python ints (weak)."""
    if isinstance(data, np.ndarray):
        if data.dtype.kind == "f":
            data = np.trunc(data)
        if data.dtype == np.int64:
            return data
        return data.astype(np.int64)
    return int(data)


def _idiv_lanes(a: Lanes, b: Lanes) -> Lanes:
    """C integer division (truncation toward zero); mirrors the
    per-item ``_idiv`` helper, which returns a weak Python int."""
    ad, bd = _to_i64(a.data), _to_i64(b.data)
    if isinstance(ad, np.ndarray) or isinstance(bd, np.ndarray):
        ad_min = ad.min() if isinstance(ad, np.ndarray) and ad.size \
            else ad
        bd_min = bd.min() if isinstance(bd, np.ndarray) and bd.size \
            else bd
        if np.all(ad_min >= 0) and np.all(bd_min > 0):
            # non-negative operands: truncation == floor, one pass
            return Lanes(np.floor_divide(ad, bd), True)
        q = np.floor_divide(np.abs(ad), np.abs(bd))
        return Lanes(np.where((np.asarray(ad) < 0) != (np.asarray(bd) < 0),
                              -q, q), True)
    q = abs(ad) // abs(bd)
    return Lanes(-q if (ad < 0) != (bd < 0) else q, True)


def _imod_lanes(a: Lanes, b: Lanes) -> Lanes:
    """C modulo (sign of the dividend); truncates float operands to
    ints first, exactly like the per-item ``_imod``."""
    ad, bd = _to_i64(a.data), _to_i64(b.data)
    q = _idiv_lanes(Lanes(ad, True), Lanes(bd, True)).data
    return Lanes(ad - q * bd, True)


_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add, "-": operator.sub, "*": operator.mul,
    "/": operator.truediv,
    "==": operator.eq, "!=": operator.ne, "<": operator.lt,
    ">": operator.gt, "<=": operator.le, ">=": operator.ge,
    "&": operator.and_, "|": operator.or_, "^": operator.xor,
    "<<": operator.lshift, ">>": operator.rshift,
    # only reachable from compound assignment on non-integer operands,
    # where per-item uses the plain Python operator (Binary "%" always
    # routes through the C-semantics helper instead)
    "%": operator.mod,
}

#: compound pointer-store operators with an exact scatter ufunc
_SCATTER_UFUNCS: dict[str, np.ufunc] = {
    "+": np.add, "-": np.subtract, "*": np.multiply, "/": np.divide,
}


# -- execution frames ----------------------------------------------------------

class _LoopFrame:
    """Break/continue accumulators for one loop nesting level
    (``None`` until the statement actually executes — most loop
    iterations never break or continue, and a loop frame is built
    per iteration)."""

    __slots__ = ("break_mask", "continue_mask")

    def __init__(self, n: int) -> None:
        self.break_mask: np.ndarray | None = None
        self.continue_mask: np.ndarray | None = None


class _FuncFrame:
    """One function invocation: its flat environment and return state."""

    __slots__ = ("env", "ret_parts", "ret_mask", "loops")

    def __init__(self, env: dict[str, Any], n: int) -> None:
        self.env = env
        self.ret_parts: list[tuple[Mask, Any]] = []
        self.ret_mask = np.zeros(n, dtype=bool)
        self.loops: list[_LoopFrame] = []


#: lane counts below this are not worth the compaction bookkeeping
COMPACT_MIN = 4096
#: compact a loop once fewer than this fraction of lanes remain live
COMPACT_FRACTION = 0.5


class _CompactRecord:
    """Undo record for one level of active-lane compaction.

    Inside a long-running loop most lanes eventually exit but keep
    paying for full-width array arithmetic.  Compaction restricts the
    interpreter — the work-item id arrays and the *current* frame's
    environment; outer frames are unreachable until this frame pops —
    to the live lanes, runs the remaining iterations on the smaller
    arrays, and scatter-merges the results back.  ``idx`` is sorted
    ascending so lane order (and therefore scatter-collision
    resolution) is preserved; records nest LIFO.
    """

    __slots__ = ("idx", "n", "grp_lin", "grp", "lid", "gid",
                 "env", "ret_mask", "ret_len", "writeback", "restore")

    def __init__(self, idx: np.ndarray, n: int, grp_lin: np.ndarray,
                 grp: list, lid: list, gid: list, env: dict[str, Any],
                 ret_mask: np.ndarray, ret_len: int) -> None:
        self.idx = idx
        self.n = n
        self.grp_lin = grp_lin
        self.grp = grp
        self.lid = lid
        self.gid = gid
        self.env = env
        self.ret_mask = ret_mask
        self.ret_len = ret_len
        #: in-place-mutated arrays (structs, private arrays) needing
        #: ``orig[idx] = compacted`` on expansion
        self.writeback: list[tuple[np.ndarray, np.ndarray]] = []
        #: id(compacted value) -> (compacted value, original value);
        #: the strong reference prevents id reuse after GC
        self.restore: dict[int, tuple[Any, Any]] = {}


class _IndexSpace:
    """Precomputed per-lane index arrays for one (gsize, lsize) NDRange.

    Building these is the dominant per-launch cost for large NDRanges,
    and skeletons launch the same range over and over — so completed
    spaces are memoized in :data:`_INDEX_SPACE_CACHE`.  The arrays are
    frozen (non-writeable) because every cached launch shares them.
    """

    __slots__ = ("gsize", "lsize", "ngrp", "num_groups", "group_lanes",
                 "n", "grp_lin", "grp", "lid", "gid")

    def __init__(self, gsize: tuple[int, ...],
                 lsize: tuple[int, ...]) -> None:
        self.gsize = gsize
        self.lsize = lsize
        self.ngrp = tuple(g // l for g, l in zip(gsize, lsize))
        self.num_groups = math.prod(self.ngrp)
        self.group_lanes = math.prod(lsize)
        self.n = self.num_groups * self.group_lanes
        grp_idx = np.arange(self.num_groups)
        lid_idx = np.arange(self.group_lanes)
        # lane order is group-major, row-major within each, matching the
        # per-item launcher's np.ndindex iteration exactly (scatter
        # collisions resolve to the same "last lane wins")
        self.grp_lin = np.repeat(grp_idx, self.group_lanes)
        lid_lin = np.tile(lid_idx, self.num_groups)
        grp_md = np.unravel_index(grp_idx, self.ngrp)
        lid_md = np.unravel_index(lid_idx, self.lsize)
        self.grp = [grp_md[d][self.grp_lin] for d in range(len(self.ngrp))]
        self.lid = [lid_md[d][lid_lin] for d in range(len(self.lsize))]
        self.gid = [self.grp[d] * self.lsize[d] + self.lid[d]
                    for d in range(len(self.gsize))]
        for arr in [self.grp_lin, *self.grp, *self.lid, *self.gid]:
            arr.flags.writeable = False


#: LRU cache of index spaces, bounded by total lanes so paper-scale
#: ranges (~1.5M lanes each) keep a handful of entries, not gigabytes
_INDEX_SPACE_CACHE: "OrderedDict[tuple, _IndexSpace]" = OrderedDict()
_INDEX_SPACE_MAX_LANES = int(
    os.environ.get("REPRO_CLC_INDEX_CACHE_LANES", 8_000_000))


def _index_space(gsize: tuple[int, ...],
                 lsize: tuple[int, ...]) -> _IndexSpace:
    key = (gsize, lsize)
    space = _INDEX_SPACE_CACHE.get(key)
    if space is not None:
        _INDEX_SPACE_CACHE.move_to_end(key)
        return space
    space = _IndexSpace(gsize, lsize)
    if space.n <= _INDEX_SPACE_MAX_LANES:
        _INDEX_SPACE_CACHE[key] = space
        total = sum(s.n for s in _INDEX_SPACE_CACHE.values())
        while total > _INDEX_SPACE_MAX_LANES and len(_INDEX_SPACE_CACHE) > 1:
            _, evicted = _INDEX_SPACE_CACHE.popitem(last=False)
            total -= evicted.n
    return space


class _Interp:
    """Interprets one kernel launch over the whole NDRange."""

    def __init__(self, functions: dict[str, ast.FunctionDef],
                 gsize: Sequence[int], lsize: Sequence[int]) -> None:
        self.functions = functions
        space = _index_space(tuple(int(g) for g in gsize),
                             tuple(int(l) for l in lsize))
        self.gsize = space.gsize
        self.lsize = space.lsize
        self.ngrp = space.ngrp
        self.num_groups = space.num_groups
        self.group_lanes = space.group_lanes
        self.n = space.n
        self.grp_lin = space.grp_lin
        self.grp = space.grp
        self.lid = space.lid
        self.gid = space.gid
        self.local_param_arrays: list[tuple[np.ndarray, GroupArray]] = []

    # -- small helpers ---------------------------------------------------------

    def _expand(self, data: Any) -> np.ndarray:
        """Broadcast a uniform value to a (N,) array."""
        if isinstance(data, np.ndarray) and data.ndim > 0:
            return data
        if isinstance(data, np.void):
            out = np.empty(self.n, dtype=data.dtype)
            out[:] = data
            return out
        return np.full(self.n, data)

    def _select(self, cond: np.ndarray, a: Lanes, b: Lanes) -> Lanes:
        """Per-lane ``cond ? a : b`` with NEP-50-faithful promotion."""
        ad, bd, weak = _coerce_pair(a, b)
        dt = ad.dtype if isinstance(ad, np.ndarray) else None
        if (dt is not None and dt.kind == "V") or (
                isinstance(bd, np.ndarray) and bd.dtype.kind == "V") \
                or isinstance(ad, np.void) or isinstance(bd, np.void):
            out = self._expand(bd).copy()
            out[cond] = self._expand(ad)[cond]
            return Lanes(out, False)
        return Lanes(np.where(cond, ad, bd), weak)

    def _truthy(self, value: Lanes) -> Any:
        """Python bool for uniform values, (N,) bool array otherwise."""
        d = value.data
        if isinstance(d, np.ndarray) and d.ndim > 0:
            return d if d.dtype == np.bool_ else d.astype(bool)
        return bool(d)

    def _index_data(self, idx: Lanes) -> Any:
        """An index operand: per-item wraps every index in ``int()``."""
        return _to_i64(idx.data)

    def _abs_index(self, ptr: GlobalPtr, idx: Any) -> Any:
        """Absolute buffer index for an element index relative to the
        pointer, mirroring per-item slice-view semantics for negative
        indices (they resolve from the buffer end)."""
        size = ptr.base.shape[0]
        if isinstance(idx, np.ndarray) or isinstance(ptr.offset, np.ndarray):
            if (isinstance(idx, np.ndarray) and idx.size
                    and not isinstance(ptr.offset, np.ndarray)
                    and idx.min() >= 0):
                # non-negative indices (the common case): skip np.where
                return idx if ptr.offset == 0 else ptr.offset + idx
            return np.where(np.asarray(idx) >= 0,
                            ptr.offset + np.asarray(idx),
                            size + np.asarray(idx))
        return ptr.offset + idx if idx >= 0 else size + idx

    def _coerce_scalar(self, ctype: ScalarType, value: Lanes) -> Lanes:
        """Mirror the per-item ``_scalar_coerce``: bool()/int()/float()
        on scalars; the batched analogue yields weak lanes."""
        d = value.data
        if ctype.name == "bool":
            if isinstance(d, np.ndarray):
                return Lanes(d if d.dtype == np.bool_ else d.astype(bool),
                             True)
            return Lanes(bool(d), True)
        if ctype.is_integer:
            return Lanes(_to_i64(d), True)
        if isinstance(d, np.ndarray):
            return Lanes(d if d.dtype == np.float64
                         else d.astype(np.float64), True)
        return Lanes(float(d), True)

    def _frame(self) -> _FuncFrame:
        return self._frames[-1]

    # -- statement execution ---------------------------------------------------

    def run_kernel(self, func: ast.FunctionDef, env: dict[str, Any]) -> None:
        frame = _FuncFrame(env, self.n)
        self._frames: list[_FuncFrame] = [frame]
        with np.errstate(all="ignore"):
            self.exec_block(func.body.body if func.body else [], None)

    def exec_block(self, stmts: Sequence[ast.Stmt], mask: Mask) -> Mask:
        alive = _mask_any(mask)
        for stmt in stmts:
            if not alive:
                break
            new = self.exec_stmt(stmt, mask)
            if new is not mask:
                mask = new
                alive = _mask_any(mask)
        return mask

    def exec_stmt(self, stmt: ast.Stmt, mask: Mask) -> Mask:
        if isinstance(stmt, ast.CompoundStmt):
            return self.exec_block(stmt.body, mask)
        if isinstance(stmt, ast.DeclStmt):
            self._exec_decl(stmt, mask)
            return mask
        if isinstance(stmt, ast.ExprStmt):
            self._exec_expr_stmt(stmt.expr, mask)
            return mask
        if isinstance(stmt, ast.IfStmt):
            return self._exec_if(stmt, mask)
        if isinstance(stmt, ast.WhileStmt):
            return self._exec_while(stmt, mask)
        if isinstance(stmt, ast.ForStmt):
            return self._exec_for(stmt, mask)
        if isinstance(stmt, ast.DoWhileStmt):
            return self._exec_do_while(stmt, mask)
        if isinstance(stmt, ast.ReturnStmt):
            frame = self._frame()
            value = (self.eval(stmt.value, mask)
                     if stmt.value is not None else None)
            if value is not None:
                frame.ret_parts.append((mask, value))
            frame.ret_mask |= _mask_full(mask, self.n)
            return np.zeros(self.n, dtype=bool)
        if isinstance(stmt, ast.BreakStmt):
            loop = self._frame().loops[-1]
            full = _mask_full(mask, self.n)
            loop.break_mask = (full.copy() if loop.break_mask is None
                               else loop.break_mask | full)
            return np.zeros(self.n, dtype=bool)
        if isinstance(stmt, ast.ContinueStmt):
            loop = self._frame().loops[-1]
            full = _mask_full(mask, self.n)
            loop.continue_mask = (full.copy()
                                  if loop.continue_mask is None
                                  else loop.continue_mask | full)
            return np.zeros(self.n, dtype=bool)
        raise ClcError(f"batch engine: unsupported statement "
                       f"{type(stmt).__name__}", stmt.line, stmt.col)

    def _post_loop_mask(self, entry: Mask, before_ret: np.ndarray) -> Mask:
        """Lanes surviving a loop: everything that entered except lanes
        that returned *during* the loop."""
        frame = self._frame()
        returned = frame.ret_mask & ~before_ret
        if not returned.any():
            return entry
        return _mask_full(entry, self.n) & ~returned

    # -- active-lane compaction ------------------------------------------------

    def _loop_compact(self, live: Mask,
                      records: list[_CompactRecord]) -> Mask:
        """Shrink the lane space to the live lanes when enough have
        left the loop; undone by :meth:`_expand_lanes` in LIFO order."""
        if live is None or self.n < COMPACT_MIN:
            return live
        count = int(np.count_nonzero(live))
        if count == 0 or count >= self.n * COMPACT_FRACTION:
            return live
        records.append(self._compact_lanes(np.flatnonzero(live)))
        return None

    def _compact_lanes(self, idx: np.ndarray) -> _CompactRecord:
        frame = self._frame()
        rec = _CompactRecord(idx, self.n, self.grp_lin, self.grp,
                             self.lid, self.gid, frame.env,
                             frame.ret_mask, len(frame.ret_parts))
        self.n = int(idx.shape[0])
        self.grp_lin = self.grp_lin[idx]
        self.grp = [a[idx] for a in self.grp]
        self.lid = [a[idx] for a in self.lid]
        self.gid = [a[idx] for a in self.gid]
        seen: dict[int, Any] = {}
        frame.env = {name: self._compact_value(v, idx, seen, rec)
                     for name, v in rec.env.items()}
        frame.ret_mask = np.zeros(self.n, dtype=bool)
        return rec

    def _compact_value(self, val: Any, idx: np.ndarray,
                       seen: dict[int, Any],
                       rec: _CompactRecord) -> Any:
        """Restrict one environment value to the lanes in ``idx``.
        ``seen`` dedups by underlying array identity so aliased
        bindings stay aliased in the compacted space."""
        new: Any
        if isinstance(val, Lanes):
            d = val.data
            if isinstance(d, np.ndarray) and d.ndim > 0:
                comp = seen.get(id(d))
                if comp is None:
                    comp = d[idx]
                    seen[id(d)] = comp
                    if d.dtype.kind == "V":
                        # structs are mutated in place (member stores)
                        rec.writeback.append((d, comp))
                new = Lanes(comp, val.weak)
            else:
                new = val  # uniform scalar: nothing lane-indexed
        elif isinstance(val, PrivateArray):
            comp = seen.get(id(val.arr))
            if comp is None:
                comp = val.arr[idx]
                seen[id(val.arr)] = comp
                rec.writeback.append((val.arr, comp))
            new = PrivateArray(comp)
        elif isinstance(val, GlobalPtr) and isinstance(val.offset,
                                                       np.ndarray):
            comp = seen.get(id(val.offset))
            if comp is None:
                comp = val.offset[idx]
                seen[id(val.offset)] = comp
            new = GlobalPtr(val.base, comp)
        else:
            # GroupArrays (group-dimensioned, not lane-dimensioned),
            # uniform pointers, and anything else pass through
            new = val
        rec.restore[id(new)] = (new, val)
        return new

    def _expand_lanes(self, rec: _CompactRecord) -> None:
        """Undo one compaction level: restore the full lane space and
        scatter-merge everything the compacted run produced."""
        frame = self._frame()
        comp_env = frame.env
        comp_ret = frame.ret_mask
        comp_parts = frame.ret_parts[rec.ret_len:]
        del frame.ret_parts[rec.ret_len:]
        self.n = rec.n
        self.grp_lin = rec.grp_lin
        self.grp, self.lid, self.gid = rec.grp, rec.lid, rec.gid
        idx = rec.idx
        for orig, comp in rec.writeback:
            orig[idx] = comp
        full_ret = rec.ret_mask
        if comp_ret.any():
            full_ret[idx[comp_ret]] = True
        frame.ret_mask = full_ret
        for m, v in comp_parts:
            fm = np.zeros(rec.n, dtype=bool)
            fm[idx if m is None else idx[m]] = True
            frame.ret_parts.append((fm, self._scatter_value(v, None, idx)))
        new_env = dict(rec.env)
        for name, comp in comp_env.items():
            entry = rec.restore.get(id(comp))
            if entry is not None and entry[0] is comp:
                # binding unchanged during the compacted run (any
                # in-place struct/private mutation was written back)
                new_env[name] = entry[1]
            else:
                new_env[name] = self._scatter_value(
                    comp, rec.env.get(name), idx)
        frame.env = new_env

    def _scatter_value(self, comp: Any, old: Any,
                       idx: np.ndarray) -> Any:
        """Merge a compacted value back into the full lane space:
        lanes in ``idx`` take the compacted result, the rest keep
        their pre-compaction value (zeros when the name was first
        bound inside the compacted region — such lanes never read it)."""
        if isinstance(comp, Lanes):
            d = comp.data
            dt = (d.dtype if isinstance(d, np.ndarray)
                  else np.asarray(d).dtype)
            if dt.kind == "V":
                if isinstance(old, Lanes):
                    full = self._expand(old.data).copy()
                else:
                    full = np.zeros(self.n, dtype=dt)
                full[idx] = d
                return Lanes(full, False)
            if isinstance(old, Lanes):
                ad, bd, weak = _coerce_pair(comp, old)
                full = np.asarray(self._expand(bd))
                tgt = np.result_type(full.dtype, np.asarray(ad).dtype)
                full = full.astype(tgt) if full.dtype != tgt \
                    else full.copy()
                full[idx] = ad
                return Lanes(full, weak)
            full = np.zeros(self.n, dtype=dt)
            full[idx] = d
            return Lanes(full, comp.weak)
        if isinstance(comp, PrivateArray):
            if isinstance(old, PrivateArray):
                full = old.arr.copy()
            else:
                full = np.zeros((self.n,) + comp.arr.shape[1:],
                                dtype=comp.arr.dtype)
            full[idx] = comp.arr
            return PrivateArray(full)
        if isinstance(comp, GlobalPtr) and isinstance(comp.offset,
                                                      np.ndarray):
            if isinstance(old, GlobalPtr):
                off = np.full(self.n, 0, dtype=comp.offset.dtype)
                off[:] = old.offset
            else:
                off = np.zeros(self.n, dtype=comp.offset.dtype)
            off[idx] = comp.offset
            return GlobalPtr(comp.base, off)
        return comp

    def _exec_if(self, stmt: ast.IfStmt, mask: Mask) -> Mask:
        cond = self._truthy(self.eval(stmt.cond, mask))
        if isinstance(cond, bool):
            if cond:
                return self.exec_stmt(stmt.then, mask)
            if stmt.otherwise is not None:
                return self.exec_stmt(stmt.otherwise, mask)
            return mask
        then_mask = _mask_norm(_mask_and(mask, cond))
        else_mask = _mask_norm(_mask_and(mask, ~cond))
        out_then = then_mask
        if _mask_any(then_mask):
            out_then = self.exec_stmt(stmt.then, then_mask)
        out_else = else_mask
        if stmt.otherwise is not None and _mask_any(else_mask):
            out_else = self.exec_stmt(stmt.otherwise, else_mask)
        return _mask_norm(_mask_full(out_then, self.n)
                          | _mask_full(out_else, self.n))

    def _exec_while(self, stmt: ast.WhileStmt, mask: Mask) -> Mask:
        frame = self._frame()
        before_ret = frame.ret_mask.copy()
        live = mask
        iterations = 0
        records: list[_CompactRecord] = []
        try:
            while True:
                cond = self._truthy(self.eval(stmt.cond, live))
                if isinstance(cond, bool):
                    if not cond:
                        break
                else:
                    live = _mask_norm(_mask_and(live, cond))
                if not _mask_any(live):
                    break
                live = self._loop_compact(live, records)
                iterations += 1
                if iterations > LOOP_CAP:
                    raise InterpError(
                        f"batch engine: loop exceeded {LOOP_CAP} "
                        f"iterations (line {stmt.line})")
                loop = _LoopFrame(self.n)
                frame.loops.append(loop)
                after = self.exec_stmt(stmt.body, live)
                frame.loops.pop()
                if loop.continue_mask is None:
                    live = after
                else:
                    live = _mask_norm(_mask_full(after, self.n)
                                      | loop.continue_mask)
                if not _mask_any(live):
                    break
        finally:
            for rec in reversed(records):
                self._expand_lanes(rec)
        return self._post_loop_mask(mask, before_ret)

    def _exec_for(self, stmt: ast.ForStmt, mask: Mask) -> Mask:
        frame = self._frame()
        before_ret = frame.ret_mask.copy()
        if stmt.init is not None:
            self.exec_stmt(stmt.init, mask)
        live = mask
        iterations = 0
        records: list[_CompactRecord] = []
        try:
            while True:
                if stmt.cond is not None:
                    cond = self._truthy(self.eval(stmt.cond, live))
                    if isinstance(cond, bool):
                        if not cond:
                            break
                    else:
                        live = _mask_norm(_mask_and(live, cond))
                if not _mask_any(live):
                    break
                live = self._loop_compact(live, records)
                iterations += 1
                if iterations > LOOP_CAP:
                    raise InterpError(
                        f"batch engine: loop exceeded {LOOP_CAP} "
                        f"iterations (line {stmt.line})")
                loop = _LoopFrame(self.n)
                frame.loops.append(loop)
                after = self.exec_stmt(stmt.body, live)
                frame.loops.pop()
                # C `continue` runs the step expression too
                if loop.continue_mask is None:
                    live = after
                else:
                    live = _mask_norm(_mask_full(after, self.n)
                                      | loop.continue_mask)
                if stmt.step is not None and _mask_any(live):
                    self._exec_expr_stmt(stmt.step, live)
                if not _mask_any(live):
                    break
        finally:
            for rec in reversed(records):
                self._expand_lanes(rec)
        return self._post_loop_mask(mask, before_ret)

    def _exec_do_while(self, stmt: ast.DoWhileStmt, mask: Mask) -> Mask:
        frame = self._frame()
        before_ret = frame.ret_mask.copy()
        live = mask
        iterations = 0
        records: list[_CompactRecord] = []
        try:
            while _mask_any(live):
                live = self._loop_compact(live, records)
                iterations += 1
                if iterations > LOOP_CAP:
                    raise InterpError(
                        f"batch engine: loop exceeded {LOOP_CAP} "
                        f"iterations (line {stmt.line})")
                loop = _LoopFrame(self.n)
                frame.loops.append(loop)
                after = self.exec_stmt(stmt.body, live)
                frame.loops.pop()
                if loop.continue_mask is None:
                    live = after
                else:
                    live = _mask_norm(_mask_full(after, self.n)
                                      | loop.continue_mask)
                if not _mask_any(live):
                    break
                cond = self._truthy(self.eval(stmt.cond, live))
                if isinstance(cond, bool):
                    if not cond:
                        break
                else:
                    live = _mask_norm(_mask_and(live, cond))
        finally:
            for rec in reversed(records):
                self._expand_lanes(rec)
        return self._post_loop_mask(mask, before_ret)

    # -- declarations ----------------------------------------------------------

    def _exec_decl(self, stmt: ast.DeclStmt, mask: Mask) -> None:
        env = self._frame().env
        for decl in stmt.declarators:
            base = stmt.base_type
            if decl.array_size is not None:
                if not isinstance(decl.array_size, ast.IntLiteral):
                    raise ClcError("batch engine: array size must be a "
                                   "literal", stmt.line, stmt.col)
                size = decl.array_size.value
                dtype = self._decl_dtype(base, stmt)
                if stmt.address_space == "local":
                    # __local arrays allocate once per group (per-item
                    # uses wg.setdefault): re-entry is a no-op
                    if decl.name not in env:
                        env[decl.name] = GroupArray(np.zeros(
                            (self.num_groups, size), dtype=dtype))
                else:
                    if decl.name in env and mask is not None:
                        old = env[decl.name]
                        assert isinstance(old, PrivateArray)
                        old.arr[mask] = 0
                    else:
                        env[decl.name] = PrivateArray(np.zeros(
                            (self.n, size), dtype=dtype))
                continue
            if decl.pointer:
                if decl.init is None:
                    raise ClcError(
                        "batch engine: pointer declaration without "
                        "initializer", stmt.line, stmt.col)
                env[decl.name] = self.eval(decl.init, mask)
                continue
            if isinstance(base, StructType):
                dtype = base.dtype()
                if decl.init is not None:
                    init = self.eval(decl.init, mask)
                    fresh = np.zeros(self.n, dtype=dtype)
                    fresh[...] = self._expand(init.data)
                    value = Lanes(fresh, False)
                else:
                    value = Lanes(np.zeros(self.n, dtype=dtype), False)
            else:
                assert isinstance(base, ScalarType)
                if decl.init is not None:
                    value = self._coerce_scalar(
                        base, self.eval(decl.init, mask))
                else:
                    value = Lanes(0.0 if base.is_float else 0, True)
            if decl.name in env and mask is not None:
                env[decl.name] = self._select(mask, value, env[decl.name])
            else:
                env[decl.name] = value

    def _decl_dtype(self, base: Any, stmt: ast.DeclStmt) -> np.dtype:
        if isinstance(base, (ScalarType, StructType)):
            return base.dtype()
        raise ClcError(f"batch engine: cannot allocate array of {base}",
                       stmt.line, stmt.col)

    # -- expression statements -------------------------------------------------

    def _exec_expr_stmt(self, expr: ast.Expr, mask: Mask) -> None:
        if isinstance(expr, ast.Assign):
            self._exec_assign(expr, mask)
            return
        if isinstance(expr, (ast.PreIncDec, ast.PostIncDec)):
            delta = ast.IntLiteral(value=1, line=expr.line, col=expr.col)
            delta.ctype = expr.operand.ctype
            synth = ast.Assign(op="+=" if expr.op == "++" else "-=",
                               target=expr.operand, value=delta,
                               line=expr.line, col=expr.col)
            synth.ctype = expr.ctype
            self._exec_assign(synth, mask)
            return
        if isinstance(expr, ast.Binary) and expr.op == ",":
            self._exec_expr_stmt(expr.left, mask)
            self._exec_expr_stmt(expr.right, mask)
            return
        if isinstance(expr, ast.Call):
            if expr.name == "barrier":
                # statement-level lockstep subsumes the barrier for
                # divergence-free kernels (divergent ones are blocked)
                return
            if expr.name in ATOMIC_FUNCTIONS:
                self._exec_atomic(expr, mask)
                return
            self.eval(expr, mask)  # user function / builtin side effects
            return
        self.eval(expr, mask)

    def _exec_atomic(self, expr: ast.Call, mask: Mask) -> None:
        addr = expr.args[0]
        assert isinstance(addr, ast.Unary) and isinstance(
            addr.operand, ast.Index)
        ptr = self.eval(addr.operand.base, mask)
        if not isinstance(ptr, GlobalPtr):
            raise InterpError("batch engine: atomic on a non-global "
                              "pointer")
        idx = self._abs_index(
            ptr, self._index_data(self.eval(addr.operand.index, mask)))
        if expr.name == "atomic_inc":
            value: Any = 1
        else:
            value = self.eval(expr.args[1], mask).data
        ufunc = np.add if expr.name in ("atomic_add", "atomic_inc") \
            else np.subtract
        idx_arr = np.broadcast_to(np.asarray(idx), (self.n,))
        val_arr = np.broadcast_to(np.asarray(value), (self.n,))
        if mask is None:
            ufunc.at(ptr.base, idx_arr, val_arr)
        else:
            ufunc.at(ptr.base, idx_arr[mask], val_arr[mask])

    # -- assignment / stores ---------------------------------------------------

    def _exec_assign(self, expr: ast.Assign, mask: Mask) -> None:
        target = expr.target
        if isinstance(target, ast.Unary) and target.op == "*":
            zero = ast.IntLiteral(value=0, line=target.line, col=target.col)
            from repro.clc.types import INT
            zero.ctype = INT
            target = ast.Index(base=target.operand, index=zero,
                               line=target.line, col=target.col)
            target.ctype = expr.target.ctype
        if isinstance(target, ast.Identifier):
            self._assign_local(expr, target, mask)
            return
        if isinstance(target, ast.Index):
            self._assign_indexed(expr, target, mask)
            return
        if isinstance(target, ast.Member):
            self._assign_member(expr, target, mask)
            return
        raise ClcError("batch engine: unsupported assignment target",
                       expr.line, expr.col)

    def _compound_value(self, op: str, old: Lanes, new: Lanes,
                        target_t: Any, value_t: Any) -> Lanes:
        """Mirror per-item compound assignment: int `/=` and `%=` use C
        truncating helpers; everything else is the plain Python
        operator with no result coercion."""
        both_int = (target_t is not None and target_t.is_integer
                    and value_t is not None and value_t.is_integer)
        if op == "/" and both_int:
            return _idiv_lanes(old, new)
        if op == "%" and both_int:
            return _imod_lanes(old, new)
        ad, bd, weak = _coerce_pair(old, new)
        return Lanes(_BINOPS[op](ad, bd), weak)

    def _assign_local(self, expr: ast.Assign, target: ast.Identifier,
                      mask: Mask) -> None:
        env = self._frame().env
        value = self.eval(expr.value, mask)
        ttype = target.ctype
        if expr.op == "=":
            if isinstance(value, (GlobalPtr, PrivateArray, GroupArray)):
                raise ClcError("batch engine: pointer reassignment is "
                               "not supported", expr.line, expr.col)
            if isinstance(ttype, StructType):
                old = env.get(target.name)
                fresh = np.zeros(self.n, dtype=ttype.dtype())
                fresh[...] = self._expand(value.data)
                if mask is not None and isinstance(old, Lanes):
                    merged = old.data.copy()
                    merged[mask] = fresh[mask]
                    env[target.name] = Lanes(merged, False)
                else:
                    env[target.name] = Lanes(fresh, False)
                return
            if isinstance(ttype, ScalarType):
                value = self._coerce_scalar(ttype, value)
        else:
            old_v = env[target.name]
            if not isinstance(old_v, Lanes):
                raise ClcError("batch engine: compound assignment to a "
                               "pointer", expr.line, expr.col)
            value = self._compound_value(expr.op[:-1], old_v, value,
                                         ttype, expr.value.ctype)
        if mask is not None and target.name in env:
            env[target.name] = self._select(mask, value, env[target.name])
        else:
            env[target.name] = value

    def _assign_indexed(self, expr: ast.Assign, target: ast.Index,
                        mask: Mask) -> None:
        base = self.eval(target.base, mask)
        idx = self._index_data(self.eval(target.index, mask))
        value = self.eval(expr.value, mask)
        op = expr.op[:-1] if expr.op != "=" else None
        if isinstance(base, GlobalPtr):
            self._store_global(base, idx, value, op, expr, mask)
        elif isinstance(base, PrivateArray):
            self._store_rowwise(base.arr, np.arange(self.n), idx, value,
                                op, expr, mask)
        elif isinstance(base, GroupArray):
            self._store_rowwise(base.arr, self.grp_lin, idx, value, op,
                                expr, mask)
        else:
            raise InterpError("batch engine: store through a non-pointer")

    def _store_global(self, ptr: GlobalPtr, idx: Any, value: Lanes,
                      op: Any, expr: ast.Assign, mask: Mask) -> None:
        arr = ptr.base
        abs_idx = self._abs_index(ptr, idx)
        vd = value.data
        uniform = (not isinstance(abs_idx, np.ndarray)
                   and not isinstance(vd, np.ndarray) and mask is None)
        if op is None:
            if uniform:
                arr[abs_idx] = vd
                return
            idx_arr = np.broadcast_to(np.asarray(abs_idx), (self.n,))
            val_arr = self._expand(vd)
            if mask is None:
                arr[idx_arr] = val_arr
            else:
                arr[idx_arr[mask]] = val_arr[mask]
            return
        both_int = (expr.target.ctype is not None
                    and expr.target.ctype.is_integer
                    and expr.value.ctype is not None
                    and expr.value.ctype.is_integer)
        elem_float = arr.dtype.kind == "f"
        if op in _SCATTER_UFUNCS and not (op in ("/", "%") and both_int) \
                and not (op == "/" and not elem_float):
            idx_arr = np.broadcast_to(np.asarray(abs_idx), (self.n,))
            val_arr = np.broadcast_to(np.asarray(vd), (self.n,))
            if mask is None:
                _SCATTER_UFUNCS[op].at(arr, idx_arr, val_arr)
            else:
                _SCATTER_UFUNCS[op].at(arr, idx_arr[mask], val_arr[mask])
            return
        # gather-modify-scatter; colliding lanes are UB (documented)
        old = Lanes(arr[np.broadcast_to(np.asarray(abs_idx), (self.n,))],
                    False)
        new = self._compound_value(op, old, value, expr.target.ctype,
                                   expr.value.ctype)
        idx_arr = np.broadcast_to(np.asarray(abs_idx), (self.n,))
        val_arr = self._expand(new.data)
        if mask is None:
            arr[idx_arr] = val_arr
        else:
            arr[idx_arr[mask]] = val_arr[mask]

    def _store_rowwise(self, arr: np.ndarray, rows: np.ndarray, idx: Any,
                       value: Lanes, op: Any, expr: ast.Assign,
                       mask: Mask) -> None:
        """Store into a (rows, size) private/local array: each lane owns
        (or shares within its group) row ``rows[lane]``."""
        idx_arr = np.broadcast_to(np.asarray(idx), (self.n,))
        if op is not None:
            old = Lanes(arr[rows, idx_arr], False)
            value = self._compound_value(op, old, value,
                                         expr.target.ctype,
                                         expr.value.ctype)
        val_arr = self._expand(value.data)
        if mask is None:
            arr[rows, idx_arr] = val_arr
        else:
            arr[rows[mask], idx_arr[mask]] = val_arr[mask]

    def _assign_member(self, expr: ast.Assign, target: ast.Member,
                       mask: Mask) -> None:
        value = self.eval(expr.value, mask)
        if isinstance(target.base, ast.Index):
            # field store through a struct pointer: scatter on the
            # field view of the buffer
            ptr = self.eval(target.base.base, mask)
            if not isinstance(ptr, GlobalPtr):
                raise InterpError("batch engine: member store through a "
                                  "non-global pointer")
            idx = self._index_data(self.eval(target.base.index, mask))
            field = GlobalPtr(ptr.base[target.member], ptr.offset)
            op = expr.op[:-1] if expr.op != "=" else None
            self._store_global(field, idx, value, op, expr, mask)
            return
        base = self.eval(target.base, mask)
        if not isinstance(base, Lanes):
            raise InterpError("batch engine: member store on a "
                              "non-struct value")
        data = base.data
        if op_ := (expr.op[:-1] if expr.op != "=" else None):
            old = Lanes(np.asarray(data[target.member]).copy(), False)
            value = self._compound_value(op_, old, value,
                                         expr.target.ctype,
                                         expr.value.ctype)
        if isinstance(data, np.void):
            # uniform struct view: active lanes write sequentially, the
            # last one wins (mirrors per-item order)
            vd = value.data
            if isinstance(vd, np.ndarray) and vd.ndim > 0:
                active = np.flatnonzero(_mask_full(mask, self.n))
                if active.size == 0:
                    return
                data[target.member] = vd[active[-1]]
            elif _mask_any(mask):
                data[target.member] = vd
            return
        # in-place field mutation: aliases (struct params passed through
        # user-function calls) observe the write, as per-item does
        field_arr = data[target.member]
        val_arr = value.data
        if mask is None:
            field_arr[...] = val_arr
        else:
            if isinstance(val_arr, np.ndarray) and val_arr.ndim > 0:
                field_arr[mask] = val_arr[mask]
            else:
                field_arr[mask] = val_arr

    # -- expression evaluation -------------------------------------------------

    def eval(self, expr: ast.Expr, mask: Mask) -> Any:
        if isinstance(expr, ast.IntLiteral):
            return Lanes(expr.value, True)
        if isinstance(expr, ast.FloatLiteral):
            return Lanes(expr.value, True)
        if isinstance(expr, ast.BoolLiteral):
            return Lanes(expr.value, True)
        if isinstance(expr, ast.Identifier):
            try:
                return self._frame().env[expr.name]
            except KeyError:
                raise InterpError(
                    f"batch engine: undefined name {expr.name!r}")
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, mask)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, mask)
        if isinstance(expr, ast.Ternary):
            return self._eval_ternary(expr, mask)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, mask)
        if isinstance(expr, ast.Index):
            return self._eval_index(expr, mask)
        if isinstance(expr, ast.Member):
            return self._eval_member(expr, mask)
        if isinstance(expr, ast.Cast):
            return self._eval_cast(expr, mask)
        raise ClcError(f"batch engine: unsupported expression "
                       f"{type(expr).__name__}", expr.line, expr.col)

    def _eval_unary(self, expr: ast.Unary, mask: Mask) -> Any:
        if expr.op == "*":
            ptr = self.eval(expr.operand, mask)
            if not isinstance(ptr, GlobalPtr):
                raise InterpError("batch engine: dereference of a "
                                  "non-global pointer")
            return self._gather_global(ptr, 0, mask)
        value = self.eval(expr.operand, mask)
        if not isinstance(value, Lanes):
            raise InterpError("batch engine: unary operator on a pointer")
        if expr.op == "!":
            t = self._truthy(value)
            if isinstance(t, bool):
                return Lanes(not t, True)
            return Lanes(~t, True)
        if expr.op == "-":
            return Lanes(-value.data, value.weak)
        if expr.op == "+":
            return Lanes(+value.data, value.weak)
        if expr.op == "~":
            return Lanes(~value.data, value.weak)
        raise ClcError(f"batch engine: unsupported unary {expr.op!r}",
                       expr.line, expr.col)

    def _eval_binary(self, expr: ast.Binary, mask: Mask) -> Any:
        op = expr.op
        if op == ",":
            raise ClcError("batch engine: comma expression as a value",
                           expr.line, expr.col)
        if op in ("&&", "||"):
            return self._eval_shortcircuit(expr, mask)
        left = self.eval(expr.left, mask)
        lt, rt = expr.left.ctype, expr.right.ctype
        # pointer arithmetic (p + i / i + p) builds a shifted pointer
        if isinstance(left, GlobalPtr):
            right = self.eval(expr.right, mask)
            if op == "+" and isinstance(right, Lanes):
                return left.shifted(self._index_data(right))
            raise ClcError("batch engine: unsupported pointer "
                           "arithmetic", expr.line, expr.col)
        right = self.eval(expr.right, mask)
        if isinstance(right, GlobalPtr):
            if op == "+" and isinstance(left, Lanes):
                return right.shifted(self._index_data(left))
            raise ClcError("batch engine: unsupported pointer "
                           "arithmetic", expr.line, expr.col)
        if not (isinstance(left, Lanes) and isinstance(right, Lanes)):
            raise InterpError("batch engine: binary operator on a "
                              "private/local array")
        if op == "/" and lt is not None and rt is not None \
                and lt.is_integer and rt.is_integer:
            return _idiv_lanes(left, right)
        if op == "%":
            return _imod_lanes(left, right)
        ld, rd, weak = _coerce_pair(left, right)
        return Lanes(_BINOPS[op](ld, rd), weak)

    def _eval_shortcircuit(self, expr: ast.Binary, mask: Mask) -> Lanes:
        is_and = expr.op == "&&"
        lb = self._truthy(self.eval(expr.left, mask))
        if isinstance(lb, bool):
            if is_and and not lb:
                return Lanes(False, True)
            if not is_and and lb:
                return Lanes(True, True)
            rb = self._truthy(self.eval(expr.right, mask))
            if isinstance(rb, bool):
                return Lanes(rb, True)
            return Lanes(rb.copy(), True)
        # evaluate the RHS only where the LHS doesn't decide the result
        rhs_mask = _mask_norm(_mask_and(mask, lb if is_and else ~lb))
        if not _mask_any(rhs_mask):
            return Lanes(lb if is_and else lb.copy(), True)
        rb = self._truthy(self.eval(expr.right, rhs_mask))
        if isinstance(rb, bool):
            rb_arr: Any = rb
        else:
            rb_arr = rb
        return Lanes((lb & rb_arr) if is_and else (lb | rb_arr), True)

    def _eval_ternary(self, expr: ast.Ternary, mask: Mask) -> Lanes:
        cond = self._truthy(self.eval(expr.cond, mask))
        if isinstance(cond, bool):
            branch = expr.then if cond else expr.otherwise
            value = self.eval(branch, mask)
            if not isinstance(value, Lanes):
                raise ClcError("batch engine: ternary over pointers",
                               expr.line, expr.col)
            return value
        then_mask = _mask_norm(_mask_and(mask, cond))
        else_mask = _mask_norm(_mask_and(mask, ~cond))
        if not _mask_any(then_mask):
            value = self.eval(expr.otherwise, else_mask)
            if not isinstance(value, Lanes):
                raise ClcError("batch engine: ternary over pointers",
                               expr.line, expr.col)
            return value
        if not _mask_any(else_mask):
            value = self.eval(expr.then, then_mask)
            if not isinstance(value, Lanes):
                raise ClcError("batch engine: ternary over pointers",
                               expr.line, expr.col)
            return value
        then_v = self.eval(expr.then, then_mask)
        else_v = self.eval(expr.otherwise, else_mask)
        if not (isinstance(then_v, Lanes) and isinstance(else_v, Lanes)):
            raise ClcError("batch engine: ternary over pointers",
                           expr.line, expr.col)
        return self._select(cond, then_v, else_v)

    # -- gathers ---------------------------------------------------------------

    def _gather_global(self, ptr: GlobalPtr, idx: Any, mask: Mask) -> Lanes:
        arr = ptr.base
        abs_idx = self._abs_index(ptr, idx)
        if not isinstance(abs_idx, np.ndarray):
            # uniform address: every active lane reads the same element
            return Lanes(arr[abs_idx], False)
        if mask is None:
            return Lanes(arr[abs_idx], False)  # fancy indexing copies
        out = np.zeros(self.n, dtype=arr.dtype)
        out[mask] = arr[abs_idx[mask]]
        return Lanes(out, False)

    def _eval_index(self, expr: ast.Index, mask: Mask) -> Lanes:
        base = self.eval(expr.base, mask)
        idx = self._index_data(self.eval(expr.index, mask))
        if isinstance(base, GlobalPtr):
            return self._gather_global(base, idx, mask)
        if isinstance(base, PrivateArray):
            return self._gather_rowwise(base.arr, np.arange(self.n), idx,
                                        mask)
        if isinstance(base, GroupArray):
            return self._gather_rowwise(base.arr, self.grp_lin, idx, mask)
        raise InterpError("batch engine: indexing a non-pointer value")

    def _gather_rowwise(self, arr: np.ndarray, rows: np.ndarray, idx: Any,
                        mask: Mask) -> Lanes:
        if not isinstance(idx, np.ndarray):
            return Lanes(arr[rows, idx].copy()
                         if isinstance(rows, np.ndarray)
                         else arr[rows, idx], False)
        if mask is None:
            return Lanes(arr[rows, idx], False)
        out = np.zeros(self.n, dtype=arr.dtype)
        out[mask] = arr[rows[mask], idx[mask]]
        return Lanes(out, False)

    def _eval_member(self, expr: ast.Member, mask: Mask) -> Lanes:
        base = self.eval(expr.base, mask)
        if not isinstance(base, Lanes):
            raise InterpError("batch engine: member access through a "
                              "pointer")
        d = base.data[expr.member]
        if isinstance(d, np.ndarray) and d.ndim > 0:
            d = d.copy()  # break the view: the local may be reassigned
        return Lanes(d, False)

    def _eval_cast(self, expr: ast.Cast, mask: Mask) -> Any:
        value = self.eval(expr.operand, mask)
        target = expr.target_type
        if not isinstance(target, ScalarType) or not isinstance(
                value, Lanes):
            return value  # pointer casts: no-op, as per-item
        return self._coerce_scalar(target, value)

    # -- calls -----------------------------------------------------------------

    def _eval_call(self, expr: ast.Call, mask: Mask) -> Any:
        name = expr.name
        if name in WORK_ITEM_FUNCTIONS:
            return self._eval_work_item(expr)
        if name in ATOMIC_FUNCTIONS:
            raise ClcError("batch engine: atomic in value position",
                           expr.line, expr.col)
        if name in self.functions:
            return self._call_user(self.functions[name], expr, mask)
        builtin = BUILTINS.get(name)
        if builtin is None or builtin.impl is None:
            raise ClcError(f"batch engine: unsupported call {name}()",
                           expr.line, expr.col)
        args = [self.eval(a, mask) for a in expr.args]
        if not all(isinstance(a, Lanes) for a in args):
            raise InterpError(
                f"batch engine: pointer argument to builtin {name}()")
        # per-item builtins run numpy ufuncs, whose results are
        # numpy-typed (strong) even for Python-scalar inputs
        return Lanes(builtin.impl(*_coerce_args(args)), False)

    def _eval_work_item(self, expr: ast.Call) -> Lanes:
        name = expr.name
        if name == "get_work_dim":
            return Lanes(len(self.gsize), True)
        dim_expr = expr.args[0]
        if not isinstance(dim_expr, ast.IntLiteral):
            raise ClcError(f"batch engine: {name} dimension must be a "
                           "literal", expr.line, expr.col)
        d = dim_expr.value
        if name == "get_global_id":
            return Lanes(self.gid[d], True)
        if name == "get_local_id":
            return Lanes(self.lid[d], True)
        if name == "get_group_id":
            return Lanes(self.grp[d], True)
        if name == "get_global_size":
            return Lanes(self.gsize[d], True)
        if name == "get_local_size":
            return Lanes(self.lsize[d], True)
        if name == "get_num_groups":
            return Lanes(self.gsize[d] // self.lsize[d], True)
        raise ClcError(f"batch engine: unsupported work-item function "
                       f"{name}", expr.line, expr.col)

    def _call_user(self, fdef: ast.FunctionDef, expr: ast.Call,
                   mask: Mask) -> Any:
        args = [self.eval(a, mask) for a in expr.args]
        env: dict[str, Any] = {}
        for param, value in zip(fdef.params, args):
            # struct parameters share the caller's Lanes so member
            # stores alias, exactly like per-item np.void views
            env[param.name] = value
        frame = _FuncFrame(env, self.n)
        self._frames.append(frame)
        try:
            self.exec_block(fdef.body.body if fdef.body else [], mask)
        finally:
            self._frames.pop()
        if not frame.ret_parts:
            return None
        acc = frame.ret_parts[0][1]
        for part_mask, part_value in frame.ret_parts[1:]:
            acc = self._select(_mask_full(part_mask, self.n),
                               part_value, acc)
        return acc


# -- the public kernel object --------------------------------------------------

class BatchKernel:
    """A batch-compiled kernel; its call signature matches the per-item
    launcher (``launcher(args, gsize, lsize)``), so the OpenCL layer can
    plug either engine into :class:`repro.ocl.program.Kernel`."""

    def __init__(self, unit: ast.TranslationUnit,
                 func: ast.FunctionDef) -> None:
        self.unit = unit
        self.func = func
        self.name = func.name
        self.functions = {f.name: f for f in unit.functions
                          if not f.is_kernel}

    def __call__(self, args: Sequence[Any], gsize: Sequence[int],
                 lsize: Sequence[int]) -> None:
        func = self.func
        if len(args) != len(func.params):
            raise InterpError(f"kernel {func.name} expects "
                              f"{len(func.params)} args, got {len(args)}")
        interp = _Interp(self.functions, gsize, lsize)
        if interp.n == 0:
            return
        env: dict[str, Any] = {}
        local_params: list[tuple[np.ndarray, GroupArray]] = []
        for param, arg in zip(func.params, args):
            if isinstance(param.ctype, PointerType):
                view = np.asarray(arg)
                if param.ctype.address_space == "local" \
                        or param.address_space == "local":
                    # per-group copies; per-item runs groups one after
                    # another on the same scratch buffer, so the final
                    # buffer content is the last group's
                    garr = GroupArray(np.repeat(view[None, :],
                                                interp.num_groups, axis=0))
                    env[param.name] = garr
                    local_params.append((view, garr))
                else:
                    env[param.name] = GlobalPtr(view, 0)
            else:
                env[param.name] = Lanes(arg, _is_weak_scalar(arg))
        interp.run_kernel(func, env)
        for view, garr in local_params:
            view[:] = garr.arr[interp.num_groups - 1]
