"""Persistent on-disk compile cache for :func:`repro.clc.compile_source`.

Repeated runs (and the repo-wide kernel self-test) compile the same
merged skeleton sources over and over; parse/typecheck/codegen is pure,
so the result can be keyed by the source text alone.  Entries are
pickles of ``(source, unit, op_counts, python_source)`` stored under
``~/.cache/repro/clc`` (override with ``REPRO_CLC_CACHE_DIR``), keyed
by the SHA-256 of the source and the dialect version — bump
:data:`DIALECT_VERSION` whenever parser, typechecker or codegen output
changes shape, and stale entries are simply never looked up again.

A cache hit re-runs only :func:`repro.clc.codegen.materialize` (exec of
the stored Python source); the AST is reused for analysis passes and
the batch engine.  Set ``REPRO_CLC_CACHE=off`` to disable entirely.
Any unpickling problem falls back to a fresh compile — the cache can
never make a build fail.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

#: bump when parse/typecheck/codegen output changes incompatibly
DIALECT_VERSION = 1

_OFF_VALUES = {"0", "off", "false", "no"}


def cache_enabled() -> bool:
    return os.environ.get("REPRO_CLC_CACHE", "").lower() \
        not in _OFF_VALUES


def cache_dir() -> Path:
    override = os.environ.get("REPRO_CLC_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "clc"


def _entry_path(source: str) -> Path:
    digest = hashlib.sha256(source.encode()).hexdigest()
    return cache_dir() / f"{digest}.v{DIALECT_VERSION}.pkl"


def load(source: str) -> dict[str, Any] | None:
    """The stored compile products for *source*, or None.

    Returns a dict with ``unit``, ``op_counts`` and ``python_source``.
    The stored source is compared against the request to rule out the
    (astronomically unlikely) hash collision and truncated writes.
    """
    path = _entry_path(source)
    try:
        with open(path, "rb") as fh:
            entry = pickle.load(fh)
        if (entry.get("version") == DIALECT_VERSION
                and entry.get("source") == source):
            return entry
    except Exception:
        pass
    return None


def store(source: str, unit: Any, op_counts: dict[str, float],
          python_source: str) -> None:
    """Persist one compile result; failures are silently ignored
    (a read-only cache directory must not break compilation)."""
    path = _entry_path(source)
    entry = {
        "version": DIALECT_VERSION,
        "source": source,
        "unit": unit,
        "op_counts": op_counts,
        "python_source": python_source,
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(entry, fh)
            os.replace(tmp, path)  # atomic on POSIX
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except Exception:
        pass


def stats() -> dict[str, Any]:
    """Entry count and total size of the cache directory."""
    directory = cache_dir()
    entries = list(directory.glob("*.pkl")) if directory.is_dir() else []
    return {
        "dir": str(directory),
        "enabled": cache_enabled(),
        "entries": len(entries),
        "bytes": sum(p.stat().st_size for p in entries),
        "dialect_version": DIALECT_VERSION,
    }


def clear() -> int:
    """Delete every cache entry; returns how many were removed."""
    directory = cache_dir()
    if not directory.is_dir():
        return 0
    removed = 0
    for path in directory.glob("*.pkl"):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed
