"""Persistent on-disk compile cache for :func:`repro.clc.compile_source`.

Repeated runs (and the repo-wide kernel self-test) compile the same
merged skeleton sources over and over; parse/typecheck/codegen is pure,
so the result can be keyed by the source text alone.  Entries are
pickles of ``(source, unit, op_counts, python_source)`` stored under
``~/.cache/repro/clc`` (override with ``REPRO_CLC_CACHE_DIR``), keyed
by the SHA-256 of the source and the dialect version — bump
:data:`DIALECT_VERSION` whenever parser, typechecker or codegen output
changes shape, and stale entries are simply never looked up again.

A cache hit re-runs only :func:`repro.clc.codegen.materialize` (exec of
the stored Python source); the AST is reused for analysis passes and
the batch engine.  Set ``REPRO_CLC_CACHE=off`` to disable entirely.
Any unpickling problem falls back to a fresh compile — the cache can
never make a build fail.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

#: bump when parse/typecheck/codegen output changes incompatibly
DIALECT_VERSION = 1

_OFF_VALUES = {"0", "off", "false", "no"}

#: per-tier in-process hit/miss counters ("frontend" = parse/typecheck
#: pickles, "native" = compiled shared objects)
_COUNTS: dict[str, dict[str, int]] = {
    "frontend": {"hits": 0, "misses": 0},
    "native": {"hits": 0, "misses": 0},
}

#: process-lifetime scratch dir used for native artifacts when the
#: cache is disabled or unwritable
_SCRATCH_DIR: Path | None = None


def _count(tier: str, key: str) -> None:
    _COUNTS[tier][key] += 1


def _scratch_dir() -> Path:
    global _SCRATCH_DIR
    if _SCRATCH_DIR is None:
        _SCRATCH_DIR = Path(tempfile.mkdtemp(prefix="repro-clc-native-"))
    return _SCRATCH_DIR


def cache_enabled() -> bool:
    return os.environ.get("REPRO_CLC_CACHE", "").lower() \
        not in _OFF_VALUES


def cache_dir() -> Path:
    override = os.environ.get("REPRO_CLC_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "clc"


def _entry_path(source: str) -> Path:
    digest = hashlib.sha256(source.encode()).hexdigest()
    return cache_dir() / f"{digest}.v{DIALECT_VERSION}.pkl"


def load(source: str) -> dict[str, Any] | None:
    """The stored compile products for *source*, or None.

    Returns a dict with ``unit``, ``op_counts`` and ``python_source``.
    The stored source is compared against the request to rule out the
    (astronomically unlikely) hash collision and truncated writes.
    """
    path = _entry_path(source)
    try:
        with open(path, "rb") as fh:
            entry = pickle.load(fh)
        if (entry.get("version") == DIALECT_VERSION
                and entry.get("source") == source):
            _count("frontend", "hits")
            return entry
    except Exception:
        pass
    _count("frontend", "misses")
    return None


def store(source: str, unit: Any, op_counts: dict[str, float],
          python_source: str) -> None:
    """Persist one compile result; failures are silently ignored
    (a read-only cache directory must not break compilation)."""
    path = _entry_path(source)
    entry = {
        "version": DIALECT_VERSION,
        "source": source,
        "unit": unit,
        "op_counts": op_counts,
        "python_source": python_source,
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(entry, fh)
            os.replace(tmp, path)  # atomic on POSIX
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except Exception:
        pass


# ---------------------------------------------------------------------------
# native shared-object artifact store (engine="native", PR 8)
# ---------------------------------------------------------------------------

def _native_path(digest: str, toolchain_id: str) -> Path:
    return cache_dir() / f"{digest}.v{DIALECT_VERSION}.{toolchain_id}.so"


def native_load(digest: str, toolchain_id: str) -> str | None:
    """Path of a cached shared object for (C source digest, toolchain),
    or None on a miss.  Artifacts are keyed by the SHA-256 of the
    *generated C* (which itself derives from the dialect source and the
    specialization signature), the dialect version, and the toolchain
    id, so a compiler upgrade can never serve stale machine code."""
    if cache_enabled():
        path = _native_path(digest, toolchain_id)
        if path.is_file():
            _count("native", "hits")
            return str(path)
    scratch = _scratch_dir() / f"{digest}.{toolchain_id}.so"
    if scratch.is_file():
        _count("native", "hits")
        return str(scratch)
    _count("native", "misses")
    return None


def native_store(digest: str, toolchain_id: str,
                 build: Any) -> str:
    """Build and persist one shared object.

    *build* is called with the final destination path and must place a
    complete .so there (atomically).  When the cache is disabled or the
    cache directory is unwritable, the artifact lands in a
    process-lifetime scratch directory instead — compilation must never
    fail because of cache state."""
    if cache_enabled():
        path = _native_path(digest, toolchain_id)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            build(path)
            return str(path)
        except OSError:
            pass
    scratch = _scratch_dir() / f"{digest}.{toolchain_id}.so"
    build(scratch)
    return str(scratch)


def evict_stale_native(current_toolchain_id: str | None) -> int:
    """Delete native artifacts built by any toolchain other than the
    current one; returns how many were removed."""
    directory = cache_dir()
    if not directory.is_dir():
        return 0
    removed = 0
    suffix = f".{current_toolchain_id}.so" if current_toolchain_id else None
    for path in directory.glob("*.so"):
        if suffix is not None and path.name.endswith(suffix):
            continue
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


def stats() -> dict[str, Any]:
    """Entry count and total size of the cache directory, with a
    per-tier breakdown (``tiers.frontend`` = parse/typecheck pickles,
    ``tiers.native`` = compiled shared objects) including in-process
    hit/miss counters."""
    directory = cache_dir()
    pickles = list(directory.glob("*.pkl")) if directory.is_dir() else []
    shared = list(directory.glob("*.so")) if directory.is_dir() else []

    def _sizes(paths: list[Path]) -> int:
        total = 0
        for path in paths:
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    return {
        "dir": str(directory),
        "enabled": cache_enabled(),
        "entries": len(pickles),
        "bytes": _sizes(pickles),
        "dialect_version": DIALECT_VERSION,
        "tiers": {
            "frontend": {
                "entries": len(pickles),
                "bytes": _sizes(pickles),
                "hits": _COUNTS["frontend"]["hits"],
                "misses": _COUNTS["frontend"]["misses"],
            },
            "native": {
                "entries": len(shared),
                "bytes": _sizes(shared),
                "hits": _COUNTS["native"]["hits"],
                "misses": _COUNTS["native"]["misses"],
            },
        },
    }


_TIER_GLOBS = {"frontend": ("*.pkl",), "native": ("*.so",)}


def clear(tier: str | None = None) -> int:
    """Delete cache entries (all tiers by default, or just *tier* —
    ``"frontend"`` or ``"native"``); returns how many were removed."""
    directory = cache_dir()
    if not directory.is_dir():
        return 0
    if tier is not None and tier not in _TIER_GLOBS:
        raise ValueError(f"unknown cache tier {tier!r}")
    patterns = _TIER_GLOBS[tier] if tier is not None \
        else tuple(g for globs in _TIER_GLOBS.values() for g in globs)
    removed = 0
    for pattern in patterns:
        for path in directory.glob(pattern):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed
