"""Recursive-descent parser for the mini OpenCL-C dialect.

The grammar is a pragmatic C subset: struct definitions, function
definitions (optionally ``__kernel``), the usual statements, and a full
C expression grammar with precedence climbing.  Unsupported C features
(function pointers, unions, goto, switch, multi-dimensional arrays)
produce :class:`ParseError` with a source position.
"""

from __future__ import annotations

from repro.clc import astnodes as ast
from repro.clc.lexer import Token, tokenize
from repro.clc.types import (CType, PointerType, SCALAR_TYPES, StructType,
                             VOID)
from repro.errors import ParseError

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=",
               ">>="}

# binary precedence table: higher binds tighter
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ADDRESS_SPACES = {
    "global": "global", "__global": "global",
    "local": "local", "__local": "local",
    "constant": "constant", "__constant": "constant",
    "private": "private", "__private": "private",
}


class Parser:
    """One-shot parser; use :func:`parse`."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._pos = 0
        #: struct tag/typedef name -> StructType, grown as definitions parse
        self.struct_types: dict[str, StructType] = {}

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        tok = self._peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self._next()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        tok = self._peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}, found {tok.text!r}",
                             tok.line, tok.col)
        return self._next()

    # -- type parsing ----------------------------------------------------------

    def _at_type(self) -> bool:
        tok = self._peek()
        if tok.kind == "keyword" and tok.text in ("struct", "const",
                                                  "unsigned", "signed",
                                                  "void"):
            return True
        if tok.kind == "keyword" and tok.text in _ADDRESS_SPACES:
            return True
        if tok.kind == "id" and (tok.text in SCALAR_TYPES
                                 or tok.text in self.struct_types):
            return True
        return False

    def _parse_type(self) -> tuple[CType, str, bool]:
        """Parse a type specifier (with optional qualifiers and ``*``).

        Returns ``(ctype, address_space, is_const)``.
        """
        address_space = ""
        is_const = False
        unsigned = False
        base: CType | None = None
        while True:
            tok = self._peek()
            if tok.kind == "keyword" and tok.text in _ADDRESS_SPACES:
                address_space = _ADDRESS_SPACES[tok.text]
                self._next()
            elif tok.kind == "keyword" and tok.text == "const":
                is_const = True
                self._next()
            elif tok.kind == "keyword" and tok.text in ("unsigned", "signed"):
                unsigned = tok.text == "unsigned"
                self._next()
            else:
                break
        tok = self._peek()
        if tok.kind == "keyword" and tok.text == "void":
            self._next()
            base = VOID
        elif tok.kind == "keyword" and tok.text == "struct":
            self._next()
            name_tok = self._expect("id")
            if name_tok.text not in self.struct_types:
                raise ParseError(f"unknown struct {name_tok.text!r}",
                                 name_tok.line, name_tok.col)
            base = self.struct_types[name_tok.text]
        elif tok.kind == "id" and tok.text in SCALAR_TYPES:
            self._next()
            base = SCALAR_TYPES[tok.text]
            if unsigned:
                unsigned_map = {"char": "uchar", "short": "ushort",
                                "int": "uint", "long": "ulong"}
                if tok.text in unsigned_map:
                    base = SCALAR_TYPES[unsigned_map[tok.text]]
        elif tok.kind == "id" and tok.text in self.struct_types:
            self._next()
            base = self.struct_types[tok.text]
        elif unsigned:
            base = SCALAR_TYPES["uint"]
        else:
            raise ParseError(f"expected type name, found {tok.text!r}",
                             tok.line, tok.col)
        # trailing const (e.g. "float const")
        if self._accept("keyword", "const"):
            is_const = True
        while self._accept("op", "*"):
            space = address_space or "global"
            base = PointerType(base, space)
        return base, address_space, is_const

    # -- top level ---------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self._peek().kind != "eof":
            tok = self._peek()
            if tok.kind == "keyword" and tok.text == "typedef":
                unit.structs.append(self._parse_typedef_struct())
            elif (tok.kind == "keyword" and tok.text == "struct"
                  and self._peek(2).text == "{"):
                unit.structs.append(self._parse_struct_def())
            else:
                unit.functions.append(self._parse_function())
        return unit

    def _parse_struct_body(self, name: str, line: int,
                           col: int) -> ast.StructDef:
        self._expect("op", "{")
        fields: list[ast.Param] = []
        while not self._accept("op", "}"):
            ftype, _, _ = self._parse_type()
            while True:
                fname = self._expect("id")
                fields.append(ast.Param(name=fname.text, ctype=ftype,
                                        line=fname.line, col=fname.col))
                if not self._accept("op", ","):
                    break
            self._expect("op", ";")
        struct_def = ast.StructDef(name=name, fields=fields, line=line,
                                   col=col)
        self.struct_types[name] = StructType(
            name=name,
            fields=tuple((f.name, f.ctype) for f in fields))
        return struct_def

    def _parse_typedef_struct(self) -> ast.StructDef:
        kw = self._expect("keyword", "typedef")
        self._expect("keyword", "struct")
        tag = self._accept("id")  # optional struct tag
        # Pre-register the tag so self-references could resolve (not
        # supported in fields, but harmless).
        sdef = self._parse_struct_body(tag.text if tag else "<anon>",
                                       kw.line, kw.col)
        alias = self._expect("id")
        self._expect("op", ";")
        struct_type = self.struct_types.pop(sdef.name)
        sdef.name = alias.text
        self.struct_types[alias.text] = StructType(
            name=alias.text, fields=struct_type.fields)
        return sdef

    def _parse_struct_def(self) -> ast.StructDef:
        kw = self._expect("keyword", "struct")
        name = self._expect("id")
        sdef = self._parse_struct_body(name.text, kw.line, kw.col)
        self._expect("op", ";")
        return sdef

    def _parse_function(self) -> ast.FunctionDef:
        start = self._peek()
        is_kernel = False
        while True:
            tok = self._peek()
            if tok.kind == "keyword" and tok.text in ("kernel", "__kernel"):
                is_kernel = True
                self._next()
            else:
                break
        ret_type, _, _ = self._parse_type()
        name = self._expect("id")
        self._expect("op", "(")
        params: list[ast.Param] = []
        if not self._accept("op", ")"):
            while True:
                ptype, space, is_const = self._parse_type()
                pname = self._expect("id")
                params.append(ast.Param(name=pname.text, ctype=ptype,
                                        address_space=space,
                                        is_const=is_const, line=pname.line,
                                        col=pname.col))
                if not self._accept("op", ","):
                    break
            self._expect("op", ")")
        body = self._parse_compound()
        return ast.FunctionDef(name=name.text, return_type=ret_type,
                               params=params, body=body,
                               is_kernel=is_kernel, line=start.line,
                               col=start.col)

    # -- statements ----------------------------------------------------------------

    def _parse_compound(self) -> ast.CompoundStmt:
        brace = self._expect("op", "{")
        body: list[ast.Stmt] = []
        while not self._accept("op", "}"):
            if self._peek().kind == "eof":
                raise ParseError("unterminated block", brace.line, brace.col)
            body.append(self._parse_statement())
        return ast.CompoundStmt(body=body, line=brace.line, col=brace.col)

    def _parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind == "op" and tok.text == "{":
            return self._parse_compound()
        if tok.kind == "keyword":
            if tok.text == "if":
                return self._parse_if()
            if tok.text == "for":
                return self._parse_for()
            if tok.text == "while":
                return self._parse_while()
            if tok.text == "do":
                return self._parse_do_while()
            if tok.text == "return":
                self._next()
                value = None
                if not (self._peek().kind == "op"
                        and self._peek().text == ";"):
                    value = self._parse_expression()
                self._expect("op", ";")
                return ast.ReturnStmt(value=value, line=tok.line,
                                      col=tok.col)
            if tok.text == "break":
                self._next()
                self._expect("op", ";")
                return ast.BreakStmt(line=tok.line, col=tok.col)
            if tok.text == "continue":
                self._next()
                self._expect("op", ";")
                return ast.ContinueStmt(line=tok.line, col=tok.col)
        if self._at_type():
            decl = self._parse_declaration()
            self._expect("op", ";")
            return decl
        if tok.kind == "op" and tok.text == ";":
            self._next()
            return ast.CompoundStmt(body=[], line=tok.line, col=tok.col)
        expr = self._parse_expression()
        self._expect("op", ";")
        return ast.ExprStmt(expr=expr, line=tok.line, col=tok.col)

    def _parse_declaration(self) -> ast.DeclStmt:
        start = self._peek()
        base, address_space, _ = self._parse_type()
        declarators: list[ast.Declarator] = []
        while True:
            pointer = False
            while self._accept("op", "*"):
                pointer = True
            name = self._expect("id")
            array_size: ast.Expr | None = None
            if self._accept("op", "["):
                array_size = self._parse_expression()
                self._expect("op", "]")
            init: ast.Expr | None = None
            if self._accept("op", "="):
                init = self._parse_assignment()
            declarators.append(
                ast.Declarator(name=name.text, init=init,
                               array_size=array_size, pointer=pointer,
                               line=name.line, col=name.col))
            if not self._accept("op", ","):
                break
        return ast.DeclStmt(base_type=base, declarators=declarators,
                            address_space=address_space,
                            line=start.line, col=start.col)

    def _parse_if(self) -> ast.IfStmt:
        kw = self._expect("keyword", "if")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        then = self._parse_statement()
        otherwise = None
        if self._accept("keyword", "else"):
            otherwise = self._parse_statement()
        return ast.IfStmt(cond=cond, then=then, otherwise=otherwise,
                          line=kw.line, col=kw.col)

    def _parse_for(self) -> ast.ForStmt:
        kw = self._expect("keyword", "for")
        self._expect("op", "(")
        init: ast.Stmt | None = None
        if not (self._peek().kind == "op" and self._peek().text == ";"):
            if self._at_type():
                init = self._parse_declaration()
            else:
                init = ast.ExprStmt(expr=self._parse_expression(),
                                    line=kw.line, col=kw.col)
        self._expect("op", ";")
        cond = None
        if not (self._peek().kind == "op" and self._peek().text == ";"):
            cond = self._parse_expression()
        self._expect("op", ";")
        step = None
        if not (self._peek().kind == "op" and self._peek().text == ")"):
            step = self._parse_expression()
        self._expect("op", ")")
        body = self._parse_statement()
        return ast.ForStmt(init=init, cond=cond, step=step, body=body,
                           line=kw.line, col=kw.col)

    def _parse_while(self) -> ast.WhileStmt:
        kw = self._expect("keyword", "while")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        body = self._parse_statement()
        return ast.WhileStmt(cond=cond, body=body, line=kw.line, col=kw.col)

    def _parse_do_while(self) -> ast.DoWhileStmt:
        kw = self._expect("keyword", "do")
        body = self._parse_statement()
        self._expect("keyword", "while")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.DoWhileStmt(body=body, cond=cond, line=kw.line,
                               col=kw.col)

    # -- expressions ----------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        expr = self._parse_assignment()
        # comma operator: evaluate left then right (used in for-steps)
        while self._peek().kind == "op" and self._peek().text == ",":
            tok = self._next()
            right = self._parse_assignment()
            expr = ast.Binary(op=",", left=expr, right=right,
                              line=tok.line, col=tok.col)
        return expr

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_ternary()
        tok = self._peek()
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            self._next()
            value = self._parse_assignment()
            return ast.Assign(op=tok.text, target=left, value=value,
                              line=tok.line, col=tok.col)
        return left

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        tok = self._peek()
        if tok.kind == "op" and tok.text == "?":
            self._next()
            then = self._parse_assignment()
            self._expect("op", ":")
            otherwise = self._parse_ternary()
            return ast.Ternary(cond=cond, then=then, otherwise=otherwise,
                               line=tok.line, col=tok.col)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            if tok.kind != "op":
                return left
            prec = _BINARY_PRECEDENCE.get(tok.text)
            if prec is None or prec < min_prec:
                return left
            self._next()
            right = self._parse_binary(prec + 1)
            left = ast.Binary(op=tok.text, left=left, right=right,
                              line=tok.line, col=tok.col)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "op" and tok.text in ("-", "+", "!", "~", "&", "*"):
            self._next()
            operand = self._parse_unary()
            return ast.Unary(op=tok.text, operand=operand, line=tok.line,
                             col=tok.col)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self._next()
            operand = self._parse_unary()
            return ast.PreIncDec(op=tok.text, operand=operand,
                                 line=tok.line, col=tok.col)
        # cast: "(" type ")" unary
        if tok.kind == "op" and tok.text == "(":
            save = self._pos
            self._next()
            if self._at_type():
                try:
                    ctype, _, _ = self._parse_type()
                    self._expect("op", ")")
                    operand = self._parse_unary()
                    return ast.Cast(target_type=ctype, operand=operand,
                                    line=tok.line, col=tok.col)
                except ParseError:
                    self._pos = save
            else:
                self._pos = save
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.kind != "op":
                return expr
            if tok.text == "[":
                self._next()
                index = self._parse_expression()
                self._expect("op", "]")
                expr = ast.Index(base=expr, index=index, line=tok.line,
                                 col=tok.col)
            elif tok.text == ".":
                self._next()
                member = self._expect("id")
                expr = ast.Member(base=expr, member=member.text,
                                  line=tok.line, col=tok.col)
            elif tok.text == "->":
                self._next()
                member = self._expect("id")
                expr = ast.Member(base=expr, member=member.text, arrow=True,
                                  line=tok.line, col=tok.col)
            elif tok.text in ("++", "--"):
                self._next()
                expr = ast.PostIncDec(op=tok.text, operand=expr,
                                      line=tok.line, col=tok.col)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "int":
            self._next()
            text = tok.text
            suffix = ""
            while text and text[-1] in "ul":
                suffix = text[-1] + suffix
                text = text[:-1]
            value = int(text, 0)
            return ast.IntLiteral(value=value, suffix=suffix, line=tok.line,
                                  col=tok.col)
        if tok.kind == "float":
            self._next()
            text = tok.text
            suffix = ""
            while text and text[-1] in "fl":
                suffix = text[-1] + suffix
                text = text[:-1]
            return ast.FloatLiteral(value=float(text), suffix=suffix,
                                    line=tok.line, col=tok.col)
        if tok.kind == "keyword" and tok.text in ("true", "false"):
            self._next()
            return ast.BoolLiteral(value=tok.text == "true", line=tok.line,
                                   col=tok.col)
        if tok.kind == "id":
            self._next()
            if self._peek().kind == "op" and self._peek().text == "(":
                self._next()
                args: list[ast.Expr] = []
                if not self._accept("op", ")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept("op", ","):
                            break
                    self._expect("op", ")")
                return ast.Call(name=tok.text, args=args, line=tok.line,
                                col=tok.col)
            return ast.Identifier(name=tok.text, line=tok.line, col=tok.col)
        if tok.kind == "op" and tok.text == "(":
            self._next()
            expr = self._parse_expression()
            self._expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.col)


def parse(source: str) -> ast.TranslationUnit:
    """Parse a full translation unit (struct defs + functions)."""
    return Parser(source).parse_translation_unit()


def parse_function(source: str) -> ast.FunctionDef:
    """Parse a source string expected to contain exactly one function.

    This is the entry point SkelCL uses for user-defined functions: the
    paper's API passes a single function definition as a plain string.
    Struct/typedef definitions may precede the function.
    """
    unit = parse(source)
    if len(unit.functions) != 1:
        raise ParseError(
            f"expected exactly one function definition, found "
            f"{len(unit.functions)}")
    return unit.functions[0]
