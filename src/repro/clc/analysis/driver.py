"""Entry points tying the analysis passes together.

:func:`analyze_unit` runs every checker over a typechecked translation
unit and returns one :class:`AnalysisReport`; :func:`analyze_source`
parses and typechecks first (propagating the usual
:class:`~repro.errors.ClcError` family for malformed sources).

Checker applicability:

===========  ==============================================
check        runs on
===========  ==============================================
BD001/BD002  ``__kernel`` functions (barriers exist nowhere else)
RC001-003    ``__kernel`` functions that read work-item ids —
             a kernel that never asks for an id is a sequential
             helper (the generated scan kernel) and has no
             cross-item interleavings to race
OB001/UD001  every function
DIST001      ``__kernel`` functions with ``__global`` pointers
===========  ==============================================
"""

from __future__ import annotations

from repro.clc import astnodes as ast
from repro.clc.analysis.access import (FunctionSummary, batch_blockers,
                                       summarize_function,
                                       summarize_unit)
from repro.clc.analysis.checks import (check_barriers, check_bounds,
                                       check_distribution,
                                       check_races, check_uninit,
                                       make_context)
from repro.clc.analysis.diagnostics import AnalysisReport


def analyze_unit(unit: ast.TranslationUnit) -> AnalysisReport:
    """Run every checker over *unit*; never raises on findings."""
    report = AnalysisReport()
    summaries: dict[str, FunctionSummary] = {}
    for func in unit.functions:
        summary = summarize_function(func, summaries)
        summaries[func.name] = summary
        if summary.param_access:
            report.access_patterns[func.name] = summary.patterns()
        id_free = frozenset(name for name, s in summaries.items()
                            if not s.uses_work_item_ids)
        ctx = make_context(func, id_free_functions=id_free)
        check_uninit(ctx, report)
        check_bounds(ctx, report)
        if func.is_kernel:
            check_barriers(ctx, report)
            if summary.uses_work_item_ids:
                check_races(ctx, report)
            check_distribution(func, summary, report)
    return report


def kernel_engine_blockers(unit: ast.TranslationUnit,
                           func: ast.FunctionDef) -> list[str]:
    """Every reason the batch engine must decline *func* (empty: the
    kernel runs batched).

    Three layers combine:

    - structural gaps from :func:`batch_blockers` (atomics in value
      position, pointer reassignment, non-literal array sizes, ...);
    - barrier divergence (BD001/BD002): lockstep statement execution
      cannot honour a barrier some lanes of a group skip;
    - a profitability heuristic: a kernel that never reads a work-item
      id is a sequential helper (the generated scan kernel) — batching
      it offers no lane parallelism, so the per-item launcher keeps it.
    """
    blockers = batch_blockers(func, unit)
    summaries = summarize_unit(unit)
    summary = summaries[func.name]
    if summary.has_barrier:
        id_free = frozenset(name for name, s in summaries.items()
                            if not s.uses_work_item_ids)
        ctx = make_context(func, id_free_functions=id_free)
        report = AnalysisReport()
        check_barriers(ctx, report)
        for diag in report.diagnostics:
            if diag.check_id in ("BD001", "BD002"):
                blockers.append(
                    f"{func.name}: line {diag.line}: barrier "
                    f"divergence ({diag.check_id}): {diag.message}")
    if not summary.uses_work_item_ids:
        blockers.append(
            f"{func.name}: kernel never reads a work-item id — it is "
            "sequential, so batching offers no lane parallelism")
    return blockers


def kernel_native_blockers(unit: ast.TranslationUnit,
                           func: ast.FunctionDef) -> list[str]:
    """Every *structural* reason the native JIT tier must decline
    *func* (empty: the kernel can lower to fused C).

    Two layers combine:

    - lowering gaps from :func:`repro.clc.native.lowering_blockers`
      (struct types ND002, unsupported constructs ND004, barriers the
      phase transformation cannot split ND005, recursion ND006);
    - barrier divergence (BD001/BD002): the two-phase barrier loop
      transformation evaluates loop/branch conditions once per group,
      which is only sound when every lane agrees.

    Environmental blockers (no C compiler, no cffi) are deliberately
    *not* included — they are reported per-toolchain by
    :func:`repro.clc.native.toolchain_blockers` and cause a graceful
    fallback rather than a build failure.
    """
    from repro.clc import native

    blockers = native.lowering_blockers(unit, func)
    summaries = summarize_unit(unit)
    summary = summaries[func.name]
    if summary.has_barrier:
        id_free = frozenset(name for name, s in summaries.items()
                            if not s.uses_work_item_ids)
        ctx = make_context(func, id_free_functions=id_free)
        report = AnalysisReport()
        check_barriers(ctx, report)
        for diag in report.diagnostics:
            if diag.check_id in ("BD001", "BD002"):
                blockers.append(
                    f"{func.name}: line {diag.line}: barrier "
                    f"divergence ({diag.check_id}): {diag.message}")
    return blockers


def engine_report(unit: ast.TranslationUnit) -> dict[str, list[str]]:
    """Engine selection verdict for every ``__kernel`` in *unit*:
    kernel name -> list of batch blockers (empty: batch engine)."""
    return {func.name: kernel_engine_blockers(unit, func)
            for func in unit.functions if func.is_kernel}


def engine_report_tiers(
        unit: ast.TranslationUnit) -> dict[str, dict[str, list[str]]]:
    """Per-tier engine verdict for every ``__kernel`` in *unit*:
    kernel name -> {"per-item": [], "batch": [...], "native": [...]}.

    The per-item interpreter runs everything, so its blocker list is
    always empty; the other tiers carry their structural blockers
    (batch: access/barrier codes, native: ND002/ND004/ND005/ND006 +
    barrier divergence).  Toolchain availability is environmental and
    reported separately.
    """
    report: dict[str, dict[str, list[str]]] = {}
    for func in unit.functions:
        if not func.is_kernel:
            continue
        report[func.name] = {
            "per-item": [],
            "batch": kernel_engine_blockers(unit, func),
            "native": kernel_native_blockers(unit, func),
        }
    return report


def analyze_source(source: str) -> AnalysisReport:
    """Parse, typecheck and analyze a kernel dialect source string."""
    from repro.clc.parser import parse
    from repro.clc.typecheck import typecheck

    unit = parse(source)
    typecheck(unit)
    return analyze_unit(unit)
