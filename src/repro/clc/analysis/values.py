"""Abstract work-item variance values and the value analysis.

The checkers all need the same question answered: *how does this
expression vary across the work items of one work group?*  The lattice,
ordered from most to least precise:

- ``const``   — the same known integer constant for every item;
- ``uniform`` — the same (unknown) value for every item of a group:
  scalar parameters, ``get_local_size`` and friends, ``get_group_id``;
- ``affine``  — ``coeff * id + offset`` with uniform, nonzero ``coeff``:
  distinct items see distinct values (injective), the backbone of the
  race and access-pattern checks.  ``coeff``/``offset`` are tracked as
  known integers where possible and widen to ``None`` at joins, keeping
  loop iteration convergent;
- ``varying`` — differs per item with no structure we track.

``affine`` and ``varying`` values are *divergent*: a branch on them
splits the work items of a group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.clc import astnodes as ast
from repro.clc.analysis.dataflow import ForwardAnalysis
from repro.clc.builtins import BUILTINS, WORK_ITEM_FUNCTIONS

#: work-item functions whose result is uniform across one work group
UNIFORM_WORK_ITEM_FUNCTIONS = {
    "get_group_id", "get_global_size", "get_local_size",
    "get_num_groups", "get_work_dim",
}
#: work-item functions whose result distinguishes items of one group
ID_WORK_ITEM_FUNCTIONS = {"get_global_id", "get_local_id"}


@dataclass(frozen=True)
class AbstractValue:
    """One point of the variance lattice (immutable, hashable)."""

    kind: str  # "const" | "uniform" | "affine" | "varying"
    #: the constant (kind == "const")
    value: int | None = None
    #: id source for affine values: ("global" | "local", dimension)
    base: tuple[str, int | None] | None = None
    #: known multiplier/offset of an affine value (None: some uniform)
    coeff: int | None = None
    offset: int | None = None

    @property
    def divergent(self) -> bool:
        return self.kind in ("affine", "varying")

    @property
    def uniform(self) -> bool:
        return self.kind in ("const", "uniform")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "const":
            return f"const({self.value})"
        if self.kind == "affine":
            return (f"affine({self.base}, coeff={self.coeff}, "
                    f"offset={self.offset})")
        return self.kind


CONST0 = AbstractValue("const", value=0)
UNIFORM = AbstractValue("uniform")
VARYING = AbstractValue("varying")


def const(value: int) -> AbstractValue:
    return AbstractValue("const", value=value)


def affine(base: tuple[str, int | None], coeff: int | None = 1,
           offset: int | None = 0) -> AbstractValue:
    return AbstractValue("affine", base=base, coeff=coeff,
                         offset=offset)


def join_values(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound; widens affine coefficients for convergence."""
    if a == b:
        return a
    if a.kind == "varying" or b.kind == "varying":
        return VARYING
    if a.uniform and b.uniform:
        return UNIFORM
    if a.kind == "affine" and b.kind == "affine":
        if a.base != b.base:
            return VARYING
        coeff = a.coeff if a.coeff == b.coeff else None
        offset = a.offset if a.offset == b.offset else None
        return affine(a.base, coeff, offset)
    # one affine, one uniform/const: an item-dependent value on one
    # path and not the other — no structure left
    return VARYING


def add_values(a: AbstractValue, b: AbstractValue,
               sign: int = 1) -> AbstractValue:
    """Abstract ``a + sign*b``."""
    if a.kind == "const" and b.kind == "const":
        return const(a.value + sign * b.value)  # type: ignore[operator]
    if a.uniform and b.uniform:
        return UNIFORM
    if a.kind == "affine" and b.uniform:
        if b.kind == "const" and a.offset is not None:
            return affine(a.base, a.coeff,
                          a.offset + sign * b.value)  # type: ignore[operator]
        return affine(a.base, a.coeff, None)
    if b.kind == "affine" and a.uniform:
        coeff = None if b.coeff is None else sign * b.coeff
        if a.kind == "const" and b.offset is not None:
            return affine(b.base, coeff,
                          a.value + sign * b.offset)  # type: ignore[operator]
        return affine(b.base, coeff, None)
    if a.kind == "affine" and b.kind == "affine":
        if a.base == b.base and a.coeff is not None \
                and b.coeff is not None:
            coeff = a.coeff + sign * b.coeff
            if coeff == 0:
                return UNIFORM
            if a.offset is not None and b.offset is not None:
                return affine(a.base, coeff,
                              a.offset + sign * b.offset)
            return affine(a.base, coeff, None)
        return VARYING
    return VARYING


def mul_values(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if a.kind == "const" and b.kind == "const":
        return const(a.value * b.value)  # type: ignore[operator]
    if a.uniform and b.uniform:
        return UNIFORM
    if b.kind == "affine":
        a, b = b, a
    if a.kind == "affine" and b.uniform:
        if b.kind == "const":
            if b.value == 0:
                return CONST0
            coeff = None if a.coeff is None else a.coeff * b.value
            offset = None if a.offset is None else a.offset * b.value
            return affine(a.base, coeff, offset)
        # times an unknown uniform: kept affine (assumed nonzero — a
        # documented optimism that keeps strided chunking injective)
        return affine(a.base, None, None)
    return VARYING


Env = dict


class ValueAnalysis(ForwardAnalysis[Mapping[str, AbstractValue]]):
    """Forward dataflow computing each variable's variance.

    The environment maps variable names to :class:`AbstractValue`;
    parameters enter as ``uniform`` (a kernel argument is the same for
    every work item).  *id_free_functions* names user functions known
    not to read work-item ids — calls to them with uniform arguments
    stay uniform.
    """

    def __init__(self, params: list[str],
                 id_free_functions: frozenset[str] = frozenset()
                 ) -> None:
        self.params = list(params)
        self.id_free_functions = id_free_functions

    # -- lattice ------------------------------------------------------------

    def boundary_state(self) -> Mapping[str, AbstractValue]:
        return {name: UNIFORM for name in self.params}

    def empty_state(self) -> Mapping[str, AbstractValue]:
        return {}

    def join(self, a: Mapping[str, AbstractValue],
             b: Mapping[str, AbstractValue]
             ) -> Mapping[str, AbstractValue]:
        if not a:
            return b
        if not b:
            return a
        merged = dict(a)
        for name, value in b.items():
            existing = merged.get(name)
            merged[name] = (value if existing is None
                            else join_values(existing, value))
        return merged

    # -- transfer -----------------------------------------------------------

    def transfer_stmt(self, stmt: ast.Stmt,
                      state: Mapping[str, AbstractValue]
                      ) -> Mapping[str, AbstractValue]:
        env = dict(state)
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.declarators:
                if decl.init is not None:
                    env[decl.name] = self.eval(decl.init, env)
                elif decl.array_size is not None:
                    env[decl.name] = UNIFORM  # the array itself
                else:
                    env[decl.name] = VARYING  # uninitialized junk
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self.eval(stmt.expr, env)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self.eval(stmt.value, env)
        return env

    def transfer_cond(self, cond: ast.Expr,
                      state: Mapping[str, AbstractValue]
                      ) -> Mapping[str, AbstractValue]:
        env = dict(state)
        self.eval(cond, env)
        return env

    # -- abstract expression evaluation ------------------------------------

    def eval(self, expr: ast.Expr, env: Env) -> AbstractValue:
        """Abstract value of *expr*; applies assignment side effects
        to *env* in place."""
        if isinstance(expr, ast.IntLiteral):
            return const(expr.value)
        if isinstance(expr, (ast.FloatLiteral, ast.BoolLiteral)):
            return UNIFORM
        if isinstance(expr, ast.Identifier):
            return env.get(expr.name, UNIFORM)
        if isinstance(expr, ast.Unary):
            operand = self.eval(expr.operand, env)
            if expr.op == "-":
                if operand.kind == "const":
                    return const(-operand.value)  # type: ignore[operator]
                if operand.kind == "affine":
                    coeff = (None if operand.coeff is None
                             else -operand.coeff)
                    offset = (None if operand.offset is None
                              else -operand.offset)
                    return affine(operand.base, coeff, offset)
                return operand
            if expr.op in ("+", "!", "~"):
                if operand.divergent:
                    return VARYING if expr.op != "+" else operand
                return UNIFORM if expr.op != "+" else operand
            if expr.op == "&":
                return UNIFORM if operand.uniform else VARYING
            # dereference: memory contents vary unless every item
            # addresses the same cell
            return UNIFORM if operand.uniform else VARYING
        if isinstance(expr, (ast.PreIncDec, ast.PostIncDec)):
            operand = self.eval(expr.operand, env)
            delta = const(1 if expr.op == "++" else -1)
            updated = add_values(operand, delta)
            if isinstance(expr.operand, ast.Identifier):
                env[expr.operand.name] = updated
            return updated if isinstance(expr, ast.PreIncDec) \
                else operand
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, ast.Ternary):
            cond = self.eval(expr.cond, env)
            then = self.eval(expr.then, env)
            otherwise = self.eval(expr.otherwise, env)
            if cond.divergent:
                return VARYING
            return join_values(then, otherwise)
        if isinstance(expr, ast.Assign):
            value = self.eval(expr.value, env)
            target = expr.target
            if isinstance(target, ast.Identifier):
                if expr.op == "=":
                    env[target.name] = value
                else:
                    env[target.name] = self._apply_compound(
                        expr.op[:-1], env.get(target.name, UNIFORM),
                        value)
                return env[target.name]
            self.eval(target, env)  # index/member side effects
            return value
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Index):
            base = self.eval(expr.base, env)
            index = self.eval(expr.index, env)
            del base
            # a load: every item reads the same cell only for uniform
            # indices (approximation: uniform cells hold uniform data)
            return UNIFORM if index.uniform else VARYING
        if isinstance(expr, ast.Member):
            return self.eval(expr.base, env)
        if isinstance(expr, ast.Cast):
            return self.eval(expr.operand, env)
        return VARYING

    def _eval_binary(self, expr: ast.Binary, env: Env) -> AbstractValue:
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        op = expr.op
        if op == ",":
            return right
        if op == "+":
            return add_values(left, right)
        if op == "-":
            return add_values(left, right, sign=-1)
        if op == "*":
            return mul_values(left, right)
        # comparisons, logicals, division, shifts, bit ops: no affine
        # structure survives — only uniformity
        if left.uniform and right.uniform:
            return UNIFORM
        return VARYING

    def _apply_compound(self, op: str, old: AbstractValue,
                        value: AbstractValue) -> AbstractValue:
        if op == "+":
            return add_values(old, value)
        if op == "-":
            return add_values(old, value, sign=-1)
        if op == "*":
            return mul_values(old, value)
        if old.uniform and value.uniform:
            return UNIFORM
        return VARYING

    def _eval_call(self, expr: ast.Call, env: Env) -> AbstractValue:
        args = [self.eval(arg, env) for arg in expr.args]
        name = expr.name
        if name in ID_WORK_ITEM_FUNCTIONS:
            dim: int | None = None
            if args and isinstance(expr.args[0], ast.IntLiteral):
                dim = expr.args[0].value
            space = "global" if name == "get_global_id" else "local"
            return affine((space, dim))
        if name in UNIFORM_WORK_ITEM_FUNCTIONS:
            return UNIFORM
        if name in WORK_ITEM_FUNCTIONS or name == "barrier":
            return UNIFORM
        uniform_args = all(a.uniform for a in args)
        if name in BUILTINS:
            return UNIFORM if uniform_args else VARYING
        if name in self.id_free_functions and uniform_args:
            return UNIFORM
        return VARYING
