"""Diagnostics model for the kernel static-analysis subsystem.

Checkers report :class:`Diagnostic` records instead of raising, so one
analysis run can surface every finding at once.  Positions follow the
same line/col convention as :class:`repro.errors.LexError` and friends;
severities gate behaviour: ``error`` fails a skeleton build
(:class:`repro.errors.BuildProgramFailure`), ``warning`` lands in the
build log, ``note`` only shows up in ``repro lint`` reports.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


#: Version of the JSON diagnostic schema emitted by
#: :meth:`AnalysisReport.to_dict` (and therefore ``repro lint --json``
#: and ``repro verify-plan --json``).  Bump on any incompatible change
#: to the key layout; see ``docs/analysis.md`` for the documented
#: schema.
SCHEMA_VERSION = 1


class Severity(enum.Enum):
    """How serious a finding is; ordered from mildest to worst."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


#: Registry of check ids: id -> (default severity, one-line summary).
#: ``repro lint --checks`` and the docs render this table.
CHECKS: dict[str, tuple[Severity, str]] = {
    "BD001": (Severity.ERROR,
              "barrier() under work-item-divergent control flow"),
    "BD002": (Severity.WARNING,
              "return under divergent control flow in a kernel that "
              "also calls barrier()"),
    "RC001": (Severity.ERROR,
              "__local access may race with an unsynchronized write "
              "of another work item (no intervening barrier)"),
    "RC002": (Severity.WARNING,
              "several work items write the same __local/__global "
              "location without atomics"),
    "RC003": (Severity.WARNING,
              "__global access may race with an unsynchronized write "
              "of another work item"),
    "OB001": (Severity.ERROR,
              "constant index outside the bounds of a fixed-size array"),
    "UD001": (Severity.ERROR,
              "variable may be read before it is assigned"),
    "DIST001": (Severity.WARNING,
                "kernel gathers a neighbour element (own index plus a "
                "constant); breaks under block distribution"),
    # -- graph-plan verifier (repro.analysis.verifier) ----------------
    "PLAN001": (Severity.ERROR,
                "fused kernel chain is not element-aligned (a stage "
                "reads or writes beyond its own index)"),
    "PLAN002": (Severity.ERROR,
                "redistribution was elided although the distributions "
                "do not provably match"),
    "PLAN003": (Severity.ERROR,
                "plan never produces a value demanded by a root or a "
                "live handle"),
    "PLAN004": (Severity.ERROR,
                "plan step consumes a value that no earlier step "
                "produces (dataflow order violated)"),
    "PLAN005": (Severity.NOTE,
                "node eliminated from the plan; its live handle will "
                "replay the computation on demand"),
    "PLAN006": (Severity.ERROR,
                "rewritten skeleton composition (map∘reduce, map∘scan, "
                "zip-of-maps) does not correspond to the captured "
                "graph or violates a composition obligation"),
    "PLAN007": (Severity.ERROR,
                "rewritten stencil composition (map_overlap∘map or "
                "stencil chain) is structurally unsound (direction, "
                "radius/neutral, dtype, or demanded intermediate)"),
    "PLAN008": (Severity.ERROR,
                "redistribution pushed across a step whose values or "
                "observable layouts it is not proven to commute with"),
    "PLAN009": (Severity.ERROR,
                "reduce split across devices without an exact element "
                "type or a single-device input"),
    "PLAN010": (Severity.ERROR,
                "plan is not window-shape-polymorphic: re-executing it "
                "over successive stream windows would read or write "
                "state that persists across windows"),
    # -- alias/COW and cluster-journal checker (repro.analysis) -------
    "ALIAS001": (Severity.WARNING,
                 "write through a pinned or aliasing buffer view "
                 "overlaps a concurrently-readable region"),
    "CLUS001": (Severity.ERROR,
                "redo journal does not cover every written region of a "
                "remote buffer; a re-shard would lose data"),
    # -- runtime sanitizer (repro.analysis.sanitizer) -----------------
    "SAN001": (Severity.ERROR,
               "kernel mutated a buffer its effect summary declares "
               "read-only"),
    "SAN002": (Severity.ERROR,
               "kernel wrote outside the region declared by its "
               "effect summary"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one checker at one source position."""

    check_id: str
    severity: Severity
    message: str
    line: int = 0
    col: int = 0
    function: str = ""

    def format(self, filename: str = "<kernel>") -> str:
        """Clang-style one-line rendering."""
        where = f"{filename}:{self.line}:{self.col}"
        scope = f" [in {self.function}]" if self.function else ""
        return (f"{where}: {self.severity}[{self.check_id}]: "
                f"{self.message}{scope}")

    def to_dict(self) -> dict:
        """Stable JSON form (schema version
        :data:`SCHEMA_VERSION`): code, severity, message, span,
        function."""
        return {
            "code": self.check_id,
            "severity": str(self.severity),
            "message": self.message,
            "span": {"line": self.line, "col": self.col},
            "function": self.function,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        span = data.get("span", {})
        return cls(
            check_id=data["code"],
            severity=Severity(data["severity"]),
            message=data["message"],
            line=span.get("line", 0),
            col=span.get("col", 0),
            function=data.get("function", ""),
        )


@dataclass
class AnalysisReport:
    """Every diagnostic of one analysis run over a translation unit."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: per-function pointer-parameter access classification
    #: (function name -> param name -> pattern string)
    access_patterns: dict[str, dict[str, str]] = field(
        default_factory=dict)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, other: "AnalysisReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.access_patterns.update(other.access_patterns)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def notes(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.NOTE]

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def sorted(self) -> list[Diagnostic]:
        return sorted(self.diagnostics,
                      key=lambda d: (d.line, d.col, d.check_id))

    def format_text(self, filename: str = "<kernel>") -> str:
        """Multi-line human-readable report including a summary line."""
        lines = [d.format(filename) for d in self.sorted()]
        lines.append(f"{len(self.errors)} error(s), "
                     f"{len(self.warnings)} warning(s)")
        return "\n".join(lines)

    def to_dict(self, filename: str = "<kernel>") -> dict:
        """Stable JSON form shared by ``repro lint`` and the plan
        verifier (schema version :data:`SCHEMA_VERSION`)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "file": filename,
            "diagnostics": [d.to_dict() for d in self.sorted()],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "notes": len(self.notes),
            },
            "access_patterns": self.access_patterns,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisReport":
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported diagnostic schema version {version!r} "
                f"(expected {SCHEMA_VERSION})")
        return cls(
            diagnostics=[Diagnostic.from_dict(d)
                         for d in data.get("diagnostics", [])],
            access_patterns=dict(data.get("access_patterns", {})),
        )

    def format_json(self, filename: str = "<kernel>") -> str:
        return json.dumps(self.to_dict(filename), indent=2)
