"""Diagnostics model for the kernel static-analysis subsystem.

Checkers report :class:`Diagnostic` records instead of raising, so one
analysis run can surface every finding at once.  Positions follow the
same line/col convention as :class:`repro.errors.LexError` and friends;
severities gate behaviour: ``error`` fails a skeleton build
(:class:`repro.errors.BuildProgramFailure`), ``warning`` lands in the
build log, ``note`` only shows up in ``repro lint`` reports.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How serious a finding is; ordered from mildest to worst."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


#: Registry of check ids: id -> (default severity, one-line summary).
#: ``repro lint --checks`` and the docs render this table.
CHECKS: dict[str, tuple[Severity, str]] = {
    "BD001": (Severity.ERROR,
              "barrier() under work-item-divergent control flow"),
    "BD002": (Severity.WARNING,
              "return under divergent control flow in a kernel that "
              "also calls barrier()"),
    "RC001": (Severity.ERROR,
              "__local access may race with an unsynchronized write "
              "of another work item (no intervening barrier)"),
    "RC002": (Severity.WARNING,
              "several work items write the same __local/__global "
              "location without atomics"),
    "RC003": (Severity.WARNING,
              "__global access may race with an unsynchronized write "
              "of another work item"),
    "OB001": (Severity.ERROR,
              "constant index outside the bounds of a fixed-size array"),
    "UD001": (Severity.ERROR,
              "variable may be read before it is assigned"),
    "DIST001": (Severity.WARNING,
                "kernel gathers a neighbour element (own index plus a "
                "constant); breaks under block distribution"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one checker at one source position."""

    check_id: str
    severity: Severity
    message: str
    line: int = 0
    col: int = 0
    function: str = ""

    def format(self, filename: str = "<kernel>") -> str:
        """Clang-style one-line rendering."""
        where = f"{filename}:{self.line}:{self.col}"
        scope = f" [in {self.function}]" if self.function else ""
        return (f"{where}: {self.severity}[{self.check_id}]: "
                f"{self.message}{scope}")

    def to_dict(self) -> dict:
        return {
            "check": self.check_id,
            "severity": str(self.severity),
            "message": self.message,
            "line": self.line,
            "col": self.col,
            "function": self.function,
        }


@dataclass
class AnalysisReport:
    """Every diagnostic of one analysis run over a translation unit."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: per-function pointer-parameter access classification
    #: (function name -> param name -> pattern string)
    access_patterns: dict[str, dict[str, str]] = field(
        default_factory=dict)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, other: "AnalysisReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.access_patterns.update(other.access_patterns)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def sorted(self) -> list[Diagnostic]:
        return sorted(self.diagnostics,
                      key=lambda d: (d.line, d.col, d.check_id))

    def format_text(self, filename: str = "<kernel>") -> str:
        """Multi-line human-readable report including a summary line."""
        lines = [d.format(filename) for d in self.sorted()]
        lines.append(f"{len(self.errors)} error(s), "
                     f"{len(self.warnings)} warning(s)")
        return "\n".join(lines)

    def to_dict(self, filename: str = "<kernel>") -> dict:
        return {
            "file": filename,
            "diagnostics": [d.to_dict() for d in self.sorted()],
            "access_patterns": self.access_patterns,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
        }

    def format_json(self, filename: str = "<kernel>") -> str:
        return json.dumps(self.to_dict(filename), indent=2)
