"""Control-flow graphs over the dialect AST.

Each function body is lowered into basic blocks of *simple* statements
(declarations, expression statements, returns); structured control flow
(``if``/``for``/``while``/``do``/``break``/``continue``/``return``)
becomes edges.  Because the dialect has no ``goto``, every block's
control dependence is captured exactly by the stack of enclosing
conditions active when the block was created — :attr:`BasicBlock.guards`
— which the barrier-divergence checker consumes directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clc import astnodes as ast


@dataclass(frozen=True)
class Guard:
    """One enclosing condition a block is control-dependent on."""

    cond: ast.Expr
    #: block whose terminator evaluates the condition (its dataflow
    #: out-state is the environment the condition sees)
    block_id: int
    #: "if" / "loop" — loops additionally imply divergent trip counts
    kind: str


@dataclass
class BasicBlock:
    """A straight-line run of simple statements."""

    id: int
    stmts: list[ast.Stmt] = field(default_factory=list)
    #: branch condition evaluated after ``stmts`` (None: unconditional)
    cond: ast.Expr | None = None
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)
    #: conditions this block is control-dependent on (outermost first)
    guards: tuple[Guard, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<BasicBlock {self.id}: {len(self.stmts)} stmt(s) "
                f"-> {self.succs}>")


@dataclass
class CFG:
    """The control-flow graph of one function."""

    func: ast.FunctionDef
    blocks: dict[int, BasicBlock] = field(default_factory=dict)
    entry: int = 0
    exit: int = 1

    def block(self, block_id: int) -> BasicBlock:
        return self.blocks[block_id]

    def reverse_postorder(self) -> list[int]:
        """Iteration order that converges fast for forward problems."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(block_id: int) -> None:
            # iterative DFS; deep kernels must not hit the recursion cap
            stack: list[tuple[int, int]] = [(block_id, 0)]
            while stack:
                bid, next_succ = stack.pop()
                if next_succ == 0:
                    if bid in seen:
                        continue
                    seen.add(bid)
                succs = self.blocks[bid].succs
                if next_succ < len(succs):
                    stack.append((bid, next_succ + 1))
                    stack.append((succs[next_succ], 0))
                else:
                    order.append(bid)

        visit(self.entry)
        order.reverse()
        return order


class _Builder:
    """Lowers one function body into a :class:`CFG`."""

    def __init__(self, func: ast.FunctionDef) -> None:
        self.func = func
        self.cfg = CFG(func=func)
        self._next_id = 0
        self._guards: list[Guard] = []
        entry = self._new_block()
        exit_block = self._new_block()
        self.cfg.entry = entry.id
        self.cfg.exit = exit_block.id
        self._current: BasicBlock | None = entry
        #: (break target, continue target) per enclosing loop
        self._loop_targets: list[tuple[int, int]] = []

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(id=self._next_id,
                           guards=tuple(self._guards))
        self._next_id += 1
        self.cfg.blocks[block.id] = block
        return block

    def _link(self, src: int, dst: int) -> None:
        self.cfg.blocks[src].succs.append(dst)
        self.cfg.blocks[dst].preds.append(src)

    def build(self) -> CFG:
        body = self.func.body.body if self.func.body else []
        for stmt in body:
            self._lower(stmt)
        if self._current is not None:
            self._link(self._current.id, self.cfg.exit)
        return self.cfg

    # -- statement lowering -------------------------------------------------

    def _lower(self, stmt: ast.Stmt) -> None:
        if self._current is None:
            # unreachable code after return/break/continue still gets a
            # block so later checks can walk it, but with no preds
            self._current = self._new_block()
        if isinstance(stmt, ast.CompoundStmt):
            for inner in stmt.body:
                self._lower(inner)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhileStmt):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self._current.stmts.append(stmt)
            self._link(self._current.id, self.cfg.exit)
            self._current = None
        elif isinstance(stmt, ast.BreakStmt):
            self._link(self._current.id, self._loop_targets[-1][0])
            self._current = None
        elif isinstance(stmt, ast.ContinueStmt):
            self._link(self._current.id, self._loop_targets[-1][1])
            self._current = None
        else:
            self._current.stmts.append(stmt)

    def _branch(self, cond: ast.Expr, kind: str
                ) -> tuple[BasicBlock, Guard]:
        """End the current block on *cond*; return it and its guard."""
        assert self._current is not None
        cond_block = self._current
        cond_block.cond = cond
        self._current = None
        return cond_block, Guard(cond=cond, block_id=cond_block.id,
                                 kind=kind)

    def _guarded(self, guard: Guard) -> "_GuardScope":
        return _GuardScope(self, guard)

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        cond_block, guard = self._branch(stmt.cond, "if")
        with self._guarded(guard):
            then_block = self._new_block()
            self._link(cond_block.id, then_block.id)
            self._current = then_block
            self._lower(stmt.then)
            then_end = self._current
            else_end: BasicBlock | None = None
            if stmt.otherwise is not None:
                else_block = self._new_block()
                self._link(cond_block.id, else_block.id)
                self._current = else_block
                self._lower(stmt.otherwise)
                else_end = self._current
        join = self._new_block()
        if stmt.otherwise is None:
            self._link(cond_block.id, join.id)  # false edge
        if then_end is not None:
            self._link(then_end.id, join.id)
        if else_end is not None:
            self._link(else_end.id, join.id)
        self._current = join

    def _lower_loop_body(self, body: ast.Stmt, guard: Guard,
                         cond_block: BasicBlock, break_to: int,
                         continue_to: int) -> None:
        with self._guarded(guard):
            body_block = self._new_block()
            self._link(cond_block.id, body_block.id)
            self._current = body_block
            self._loop_targets.append((break_to, continue_to))
            self._lower(body)
            self._loop_targets.pop()

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        assert self._current is not None
        if stmt.init is not None:
            self._lower(stmt.init)
        assert self._current is not None
        cond_block = self._new_block()
        self._link(self._current.id, cond_block.id)
        self._current = cond_block
        cond = stmt.cond if stmt.cond is not None else ast.BoolLiteral(
            value=True, line=stmt.line, col=stmt.col)
        cond_block, guard = self._branch(cond, "loop")
        after = self._new_block()
        self._link(cond_block.id, after.id)  # false edge
        with self._guarded(guard):
            step_block = self._new_block()
            if stmt.step is not None:
                step_block.stmts.append(
                    ast.ExprStmt(expr=stmt.step, line=stmt.step.line,
                                 col=stmt.step.col))
        self._link(step_block.id, cond_block.id)  # back edge
        self._lower_loop_body(stmt.body, guard, cond_block,
                              break_to=after.id,
                              continue_to=step_block.id)
        if self._current is not None:
            self._link(self._current.id, step_block.id)
        self._current = after

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        assert self._current is not None
        cond_block = self._new_block()
        self._link(self._current.id, cond_block.id)
        self._current = cond_block
        cond_block, guard = self._branch(stmt.cond, "loop")
        after = self._new_block()
        self._link(cond_block.id, after.id)
        self._lower_loop_body(stmt.body, guard, cond_block,
                              break_to=after.id,
                              continue_to=cond_block.id)
        if self._current is not None:
            self._link(self._current.id, cond_block.id)
        self._current = after

    def _lower_do_while(self, stmt: ast.DoWhileStmt) -> None:
        assert self._current is not None
        # the body runs at least once, but iterations past the first
        # are condition-guarded; model the body as loop-guarded so
        # divergence and race joins see the back edge
        head = self._new_block()
        self._link(self._current.id, head.id)
        guard = Guard(cond=stmt.cond, block_id=head.id, kind="loop")
        after = self._new_block()
        with self._guarded(guard):
            body_block = self._new_block()
            self._link(head.id, body_block.id)
            self._current = body_block
            self._loop_targets.append((after.id, head.id))
            self._lower(stmt.body)
            self._loop_targets.pop()
            if self._current is not None:
                cond_block = self._current
                cond_block.cond = stmt.cond
                self._link(cond_block.id, head.id)   # true: loop again
                self._link(cond_block.id, after.id)  # false: exit
        self._current = after


class _GuardScope:
    def __init__(self, builder: _Builder, guard: Guard) -> None:
        self._builder = builder
        self._guard = guard

    def __enter__(self) -> None:
        self._builder._guards.append(self._guard)

    def __exit__(self, *exc_info: object) -> None:
        self._builder._guards.pop()


def build_cfg(func: ast.FunctionDef) -> CFG:
    """Lower *func* into basic blocks with explicit control-flow edges."""
    return _Builder(func).build()
