"""Pointer access-pattern classification and function summaries.

For every pointer parameter of a function the classifier buckets the
indices it is accessed with, relative to the work item's own index:

- ``own-index``                     — only ``get_global_id(0)`` itself;
- ``constant-offset-neighborhood``  — own index plus known constant
  offsets (stencil windows);
- ``arbitrary-gather``              — anything else (lookup tables,
  chunked strides, data-dependent indices);
- ``none``                          — the parameter is never accessed.

The verdict drives two safety layers: the skeletons reject
block-distributed additional-argument vectors whose accesses are not
``own-index`` (each device only holds its slice — a neighbour or table
gather silently reads the wrong element on every device but the
first), and ``repro lint`` warns about neighbour gathers in kernels
(check ``DIST001``) suggesting ``copy`` distribution or the
map-overlap skeleton.

The summary also carries the *vectorization verdict* — the single
source of truth for whether the numpy fast path may evaluate a user
function (straight-line scalar statements, pointer reads only, no
work-item functions besides ``get_global_id``).
:mod:`repro.clc.vectorize` consumes it instead of walking the AST
itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.clc import astnodes as ast
from repro.clc.analysis.cfg import build_cfg
from repro.clc.analysis.values import (ID_WORK_ITEM_FUNCTIONS,
                                       AbstractValue, ValueAnalysis)
from repro.clc.builtins import (ATOMIC_FUNCTIONS, BUILTINS,
                                WORK_ITEM_FUNCTIONS)
from repro.clc.types import PointerType, ScalarType


class AccessPattern(enum.Enum):
    """How a pointer parameter is indexed, joined over all accesses."""

    NONE = "none"
    OWN_INDEX = "own-index"
    NEIGHBORHOOD = "constant-offset-neighborhood"
    ARBITRARY = "arbitrary-gather"

    @property
    def rank(self) -> int:
        order = [AccessPattern.NONE, AccessPattern.OWN_INDEX,
                 AccessPattern.NEIGHBORHOOD, AccessPattern.ARBITRARY]
        return order.index(self)

    def join(self, other: "AccessPattern") -> "AccessPattern":
        return self if self.rank >= other.rank else other


@dataclass(frozen=True)
class AccessSite:
    """One indexing of a pointer parameter."""

    pattern: AccessPattern
    #: constant offset from the own index (neighborhood sites)
    offset: int | None
    is_write: bool
    line: int
    col: int
    #: a direct ``param[expr]`` in this function (False: inherited
    #: through a call to a helper the pointer was passed to)
    direct: bool = True
    #: an atomic read-modify-write (``atomic_add(&p[i], v)`` etc.) —
    #: the reduce-style effect of the effect-summary layer
    atomic: bool = False


@dataclass
class AccessSummary:
    """Joined access classification of one pointer parameter."""

    pattern: AccessPattern = AccessPattern.NONE
    written: bool = False
    #: some access is an atomic read-modify-write
    atomic: bool = False
    sites: list[AccessSite] = field(default_factory=list)

    def record(self, site: AccessSite) -> None:
        self.sites.append(site)
        self.pattern = self.pattern.join(site.pattern)
        self.written = self.written or site.is_write
        self.atomic = self.atomic or site.atomic

    @property
    def max_offset(self) -> int:
        """Largest |constant offset| over neighborhood sites."""
        return max((abs(s.offset) for s in self.sites
                    if s.offset is not None), default=0)


@dataclass
class FunctionSummary:
    """Everything later passes need to know about one function."""

    name: str
    #: all parameter names in declaration order (call-site matching)
    param_names: list[str] = field(default_factory=list)
    #: pointer-parameter name -> joined access classification
    param_access: dict[str, AccessSummary] = field(default_factory=dict)
    #: calls get_global_id/get_local_id, directly or transitively
    uses_work_item_ids: bool = False
    has_barrier: bool = False
    vectorizable: bool = False
    #: why the vectorized fast path refused (empty when vectorizable)
    vectorize_blockers: list[str] = field(default_factory=list)

    def patterns(self) -> dict[str, str]:
        return {name: summary.pattern.value
                for name, summary in self.param_access.items()}


def classify_index(value: AbstractValue) -> tuple[AccessPattern,
                                                  int | None]:
    """Bucket one abstract index value into (pattern, constant offset)."""
    if value.kind == "affine" and value.base == ("global", 0) \
            and value.coeff == 1:
        if value.offset == 0:
            return AccessPattern.OWN_INDEX, 0
        if value.offset is not None:
            return AccessPattern.NEIGHBORHOOD, value.offset
    return AccessPattern.ARBITRARY, None


def summarize_function(func: ast.FunctionDef,
                       summaries: dict[str, "FunctionSummary"]
                       | None = None) -> FunctionSummary:
    """Build the :class:`FunctionSummary` for *func*.

    *summaries* holds the already-computed summaries of functions
    defined earlier in the unit (the dialect forbids forward
    references), enabling bottom-up interprocedural classification of
    pointers passed on to helpers.
    """
    summaries = summaries or {}
    summary = FunctionSummary(name=func.name,
                              param_names=[p.name for p in func.params])
    pointer_params = {p.name for p in func.params
                      if isinstance(p.ctype, PointerType)}
    summary.param_access = {name: AccessSummary()
                            for name in pointer_params}

    id_free = frozenset(name for name, s in summaries.items()
                        if not s.uses_work_item_ids)
    analysis = ValueAnalysis([p.name for p in func.params],
                             id_free_functions=id_free)
    cfg = build_cfg(func)
    solution = analysis.run(cfg)

    collector = _AccessCollector(summary, pointer_params, analysis,
                                 summaries)
    for _block_id, stmt, env in solution.statement_states():
        collector.visit_stmt(stmt, dict(env))
    for block in cfg.blocks.values():
        if block.cond is not None:
            env = dict(solution.state_out(block.id))
            collector.visit_expr(block.cond, env)

    summary.uses_work_item_ids = collector.uses_ids
    summary.has_barrier = collector.has_barrier
    blockers = vectorize_blockers(func)
    summary.vectorize_blockers = blockers
    summary.vectorizable = not blockers
    return summary


def summarize_unit(unit: ast.TranslationUnit
                   ) -> dict[str, FunctionSummary]:
    """Bottom-up summaries for every function of a translation unit."""
    summaries: dict[str, FunctionSummary] = {}
    for func in unit.functions:
        summaries[func.name] = summarize_function(func, summaries)
    return summaries


class _AccessCollector:
    """Walks statements with their dataflow environments, recording
    every access to a pointer parameter."""

    def __init__(self, summary: FunctionSummary,
                 pointer_params: set[str], analysis: ValueAnalysis,
                 summaries: dict[str, FunctionSummary]) -> None:
        self.summary = summary
        self.pointer_params = pointer_params
        self.analysis = analysis
        self.summaries = summaries
        self.uses_ids = False
        self.has_barrier = False

    # -- statements ---------------------------------------------------------

    def visit_stmt(self, stmt: ast.Stmt, env: dict) -> None:
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.declarators:
                if decl.init is not None:
                    self.visit_expr(decl.init, env)
                    env[decl.name] = self.analysis.eval(decl.init, env)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self.visit_expr(stmt.expr, env)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self.visit_expr(stmt.value, env)

    # -- expressions --------------------------------------------------------

    def visit_expr(self, expr: ast.Expr, env: dict,
                   is_write: bool = False) -> None:
        if isinstance(expr, ast.Index):
            self._record_index(expr, env, is_write)
            self.visit_expr(expr.index, env)
            if not isinstance(expr.base, ast.Identifier):
                self.visit_expr(expr.base, env)
            return
        if isinstance(expr, ast.Assign):
            self.visit_expr(expr.value, env)
            # compound assignment (+= etc.) reads the target as well,
            # but the site classification only distinguishes writes
            self.visit_expr(expr.target, env, is_write=True)
            return
        if isinstance(expr, ast.Call):
            self._record_call(expr, env)
            for arg in expr.args:
                self.visit_expr(arg, env)
            return
        if isinstance(expr, ast.Unary):
            if expr.op == "*":
                self._record_deref(expr, env, is_write)
            self.visit_expr(expr.operand, env, is_write=is_write
                            if expr.op == "*" else False)
            return
        if isinstance(expr, ast.Member):
            # a store to p[i].x writes through p: keep the write flag
            self.visit_expr(expr.base, env, is_write=is_write)
            return
        if isinstance(expr, (ast.PreIncDec, ast.PostIncDec)):
            # p[i]++ both reads and writes; record the write
            self.visit_expr(expr.operand, env, is_write=True)
            return
        for child in _children(expr):
            self.visit_expr(child, env)

    def _record_index(self, expr: ast.Index, env: dict,
                      is_write: bool) -> None:
        base = expr.base
        if not (isinstance(base, ast.Identifier)
                and base.name in self.pointer_params):
            return
        value = self.analysis.eval(expr.index, dict(env))
        pattern, offset = classify_index(value)
        self.summary.param_access[base.name].record(AccessSite(
            pattern=pattern, offset=offset, is_write=is_write,
            line=expr.line, col=expr.col))

    def _record_deref(self, expr: ast.Unary, env: dict,
                      is_write: bool) -> None:
        """``*p`` counts as an access with no index structure."""
        operand = expr.operand
        if isinstance(operand, ast.Identifier) \
                and operand.name in self.pointer_params:
            self.summary.param_access[operand.name].record(AccessSite(
                pattern=AccessPattern.ARBITRARY, offset=None,
                is_write=is_write, line=expr.line, col=expr.col))

    def _record_call(self, expr: ast.Call, env: dict) -> None:
        if expr.name in ID_WORK_ITEM_FUNCTIONS:
            self.uses_ids = True
        if expr.name == "barrier":
            self.has_barrier = True
        if expr.name in ATOMIC_FUNCTIONS:
            self._record_atomic(expr, env)
        callee = self.summaries.get(expr.name)
        if callee is not None:
            if callee.uses_work_item_ids:
                self.uses_ids = True
            if callee.has_barrier:
                self.has_barrier = True
            self._propagate_pointer_args(expr, callee, env)

    def _record_atomic(self, expr: ast.Call, env: dict) -> None:
        """``atomic_add(&p[i], v)``: an atomic read-modify-write of
        ``p[i]`` — recorded as an atomic write site (the plain walk over
        the arguments only sees the address computation as a read)."""
        first = expr.args[0] if expr.args else None
        if not (isinstance(first, ast.Unary) and first.op == "&"):
            return
        target = first.operand
        if not (isinstance(target, ast.Index)
                and isinstance(target.base, ast.Identifier)
                and target.base.name in self.pointer_params):
            return
        value = self.analysis.eval(target.index, dict(env))
        pattern, offset = classify_index(value)
        self.summary.param_access[target.base.name].record(AccessSite(
            pattern=pattern, offset=offset, is_write=True,
            line=expr.line, col=expr.col, atomic=True))

    def _propagate_pointer_args(self, expr: ast.Call,
                                callee: FunctionSummary,
                                env: dict) -> None:
        """Fold a callee's accesses of forwarded pointers into ours."""
        for pos, arg in enumerate(expr.args):
            name, shift = self._pointer_argument(arg, env)
            if name is None or name not in self.pointer_params:
                continue
            if pos >= len(callee.param_names):
                continue
            callee_summary = callee.param_access.get(
                callee.param_names[pos])
            if callee_summary is None \
                    or callee_summary.pattern is AccessPattern.NONE:
                continue
            mine = self.summary.param_access[name]
            for site in callee_summary.sites:
                pattern, offset = site.pattern, site.offset
                if shift is None:
                    pattern, offset = AccessPattern.ARBITRARY, None
                elif shift != 0:
                    if offset is None:
                        pattern, offset = AccessPattern.ARBITRARY, None
                    else:
                        offset += shift
                        pattern = (AccessPattern.OWN_INDEX if offset == 0
                                   else AccessPattern.NEIGHBORHOOD)
                mine.record(AccessSite(
                    pattern=pattern, offset=offset,
                    is_write=site.is_write, line=expr.line,
                    col=expr.col, direct=False, atomic=site.atomic))

    def _pointer_argument(self, arg: ast.Expr, env: dict
                          ) -> tuple[str | None, int | None]:
        """(parameter name, shift) when *arg* forwards a pointer.

        The shift is ``0`` for a plain ``p``, the constant ``c`` for
        ``p + c`` / ``p - c`` / ``c + p``, and ``None`` (structure
        unknown) for any other pointer arithmetic.
        """
        if isinstance(arg, ast.Identifier):
            return arg.name, 0
        if isinstance(arg, ast.Binary) and arg.op in ("+", "-"):
            pointer: ast.Expr | None = None
            other: ast.Expr | None = None
            if isinstance(arg.left, ast.Identifier) \
                    and arg.left.name in self.pointer_params:
                pointer, other = arg.left, arg.right
            elif arg.op == "+" and isinstance(arg.right, ast.Identifier) \
                    and arg.right.name in self.pointer_params:
                pointer, other = arg.right, arg.left
            if pointer is not None and other is not None:
                value = self.analysis.eval(other, dict(env))
                if value.kind == "const":
                    sign = -1 if arg.op == "-" else 1
                    return pointer.name, sign * value.value
                return pointer.name, None
        return None, None


def _children(expr: ast.Expr) -> list[ast.Expr]:
    """Direct sub-expressions of *expr* (for node kinds without
    bespoke handling in the collector)."""
    if isinstance(expr, ast.Unary):
        return [expr.operand]
    if isinstance(expr, (ast.PreIncDec, ast.PostIncDec)):
        return [expr.operand]
    if isinstance(expr, ast.Binary):
        return [expr.left, expr.right]
    if isinstance(expr, ast.Ternary):
        return [expr.cond, expr.then, expr.otherwise]
    if isinstance(expr, ast.Cast):
        return [expr.operand]
    if isinstance(expr, ast.Member):
        return [expr.base]
    return []


# -- vectorization verdict ---------------------------------------------------

def vectorize_blockers(func: ast.FunctionDef) -> list[str]:
    """Why the numpy fast path cannot evaluate *func* (empty: it can).

    The rules match the historical admissibility walk of
    :mod:`repro.clc.vectorize` exactly: straight-line scalar
    declarations and assignments, a trailing ``return``, pointer reads
    only, and no work-item function but ``get_global_id``.
    """
    blockers: list[str] = []
    if func.body is None:
        return [f"{func.name} has no body"]
    for stmt in func.body.body:
        _stmt_blockers(stmt, blockers)
    if not func.body.body or not isinstance(func.body.body[-1],
                                            ast.ReturnStmt):
        blockers.append("body does not end in a return statement")
    return blockers


def _stmt_blockers(stmt: ast.Stmt, blockers: list[str]) -> None:
    where = f"line {stmt.line}"
    if isinstance(stmt, ast.DeclStmt):
        for decl in stmt.declarators:
            if decl.array_size is not None or decl.pointer:
                blockers.append(f"{where}: array or pointer "
                                f"declaration of '{decl.name}'")
                continue
            if not isinstance(stmt.base_type, ScalarType):
                blockers.append(f"{where}: non-scalar declaration "
                                f"of '{decl.name}'")
                continue
            if decl.init is not None:
                _expr_blockers(decl.init, blockers)
        return
    if isinstance(stmt, ast.ExprStmt):
        expr = stmt.expr
        if isinstance(expr, ast.Assign):
            if not isinstance(expr.target, ast.Identifier):
                blockers.append(f"{where}: assignment target is not "
                                "a scalar local")
                return
            _expr_blockers(expr.value, blockers)
            return
        blockers.append(f"{where}: expression statement is not an "
                        "assignment")
        return
    if isinstance(stmt, ast.ReturnStmt):
        if stmt.value is None:
            blockers.append(f"{where}: return without a value")
            return
        _expr_blockers(stmt.value, blockers)
        return
    blockers.append(f"{where}: {type(stmt).__name__} is not "
                    "straight-line code")


def _expr_blockers(expr: ast.Expr, blockers: list[str]) -> None:
    where = f"line {expr.line}"
    if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral,
                         ast.BoolLiteral, ast.Identifier)):
        return
    if isinstance(expr, ast.Unary):
        if expr.op in ("&", "*"):
            blockers.append(f"{where}: address-of/dereference "
                            "operator")
            return
        _expr_blockers(expr.operand, blockers)
        return
    if isinstance(expr, ast.Binary):
        if expr.op == ",":
            blockers.append(f"{where}: comma operator")
            return
        _expr_blockers(expr.left, blockers)
        _expr_blockers(expr.right, blockers)
        return
    if isinstance(expr, ast.Ternary):
        _expr_blockers(expr.cond, blockers)
        _expr_blockers(expr.then, blockers)
        _expr_blockers(expr.otherwise, blockers)
        return
    if isinstance(expr, ast.Cast):
        _expr_blockers(expr.operand, blockers)
        return
    if isinstance(expr, ast.Index):
        # pointer reads vectorize via fancy indexing
        if not isinstance(expr.base, ast.Identifier):
            blockers.append(f"{where}: indexing of a computed base")
            return
        _expr_blockers(expr.index, blockers)
        return
    if isinstance(expr, ast.Member):
        _expr_blockers(expr.base, blockers)
        return
    if isinstance(expr, ast.Call):
        if expr.name in WORK_ITEM_FUNCTIONS:
            if expr.name != "get_global_id":
                blockers.append(f"{where}: work-item function "
                                f"{expr.name}() has no vectorized "
                                "meaning")
            return
        builtin = BUILTINS.get(expr.name)
        if builtin is None or builtin.impl is None:
            blockers.append(f"{where}: call to {expr.name}() is not "
                            "a pure builtin")
            return
        for arg in expr.args:
            _expr_blockers(arg, blockers)
        return
    blockers.append(f"{where}: {type(expr).__name__} expression")


# -- batch-engine verdict -----------------------------------------------------

def batch_blockers(func: ast.FunctionDef,
                   unit: ast.TranslationUnit | None = None) -> list[str]:
    """Why the batch engine cannot lower *func* (empty: it can).

    Unlike :func:`vectorize_blockers` — which requires straight-line
    code — the batch engine predicates control flow, so this list is a
    handful of structural gaps: atomics used for their return value,
    pointer locals being reassigned, array sizes or work-item
    dimensions that are not literals, pointer arithmetic on ``__local``
    or private arrays, and arrays forwarded to helper functions.
    Helper functions reachable from *func* are checked too (they are
    interpreted inline); pass *unit* to resolve them.
    """
    blockers: list[str] = []
    seen: set[str] = set()
    functions = {f.name: f for f in unit.functions} if unit else {}
    _batch_func_blockers(func, functions, seen, blockers)
    return blockers


def _batch_func_blockers(func: ast.FunctionDef,
                         functions: dict[str, ast.FunctionDef],
                         seen: set[str], blockers: list[str]) -> None:
    if func.name in seen:
        return
    seen.add(func.name)
    if func.body is None:
        blockers.append(f"{func.name} has no body")
        return
    ctx = _BatchCtx(functions, seen, blockers, func.name)
    for param in func.params:
        if isinstance(param.ctype, PointerType):
            ctx.pointer_names.add(param.name)
            space = param.address_space or getattr(
                param.ctype, "address_space", "")
            if "local" in (space or ""):
                ctx.group_arrays.add(param.name)
    for stmt in func.body.body:
        ctx.stmt(stmt)


class _BatchCtx:
    """Walk state for :func:`batch_blockers` over one function."""

    def __init__(self, functions: dict[str, ast.FunctionDef],
                 seen: set[str], blockers: list[str],
                 func_name: str) -> None:
        self.functions = functions
        self.seen = seen
        self.blockers = blockers
        self.func_name = func_name
        #: names bound to pointers (params or initialized locals)
        self.pointer_names: set[str] = set()
        #: private / ``__local`` array locals and local pointer params
        self.array_locals: set[str] = set()
        self.group_arrays: set[str] = set()

    def blocked(self, node: ast.Node, why: str) -> None:
        self.blockers.append(
            f"{self.func_name}: line {node.line}: {why}")

    # -- statements -----------------------------------------------------------

    def stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.CompoundStmt):
            for s in stmt.body:
                self.stmt(s)
        elif isinstance(stmt, ast.DeclStmt):
            self.decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.expr_stmt(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self.expr(stmt.cond)
            self.stmt(stmt.then)
            if stmt.otherwise is not None:
                self.stmt(stmt.otherwise)
        elif isinstance(stmt, ast.WhileStmt):
            self.expr(stmt.cond)
            self.stmt(stmt.body)
        elif isinstance(stmt, ast.DoWhileStmt):
            self.stmt(stmt.body)
            self.expr(stmt.cond)
        elif isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self.stmt(stmt.init)
            if stmt.cond is not None:
                self.expr(stmt.cond)
            if stmt.step is not None:
                self.expr_stmt(stmt.step)
            self.stmt(stmt.body)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self.expr(stmt.value)
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            pass
        else:
            self.blocked(stmt, f"{type(stmt).__name__} is not "
                               "supported by the batch engine")

    def decl(self, stmt: ast.DeclStmt) -> None:
        local = "local" in (stmt.address_space or "")
        for decl in stmt.declarators:
            if decl.array_size is not None:
                if not isinstance(decl.array_size, ast.IntLiteral):
                    self.blocked(
                        stmt, f"array '{decl.name}' has a non-literal "
                              "size (batch arrays are shaped up front)")
                (self.group_arrays if local
                 else self.array_locals).add(decl.name)
            elif decl.pointer:
                if decl.init is None:
                    self.blocked(
                        stmt, f"pointer '{decl.name}' declared without "
                              "an initializer (batch pointers are "
                              "immutable bindings)")
                self.pointer_names.add(decl.name)
            if decl.init is not None:
                self.expr(decl.init)

    def expr_stmt(self, expr: ast.Expr) -> None:
        """A statement-position expression: atomics are allowed here
        (their return value is discarded)."""
        if isinstance(expr, ast.Call) and expr.name in ATOMIC_FUNCTIONS:
            for arg in expr.args[1:]:
                self.expr(arg)
            first = expr.args[0] if expr.args else None
            if isinstance(first, ast.Unary) and first.op == "&":
                target = first.operand
                if isinstance(target, ast.Index):
                    self.expr(target.index)
                    return
            if first is not None:
                self.expr(first)
            return
        if isinstance(expr, ast.Binary) and expr.op == ",":
            self.expr_stmt(expr.left)
            self.expr_stmt(expr.right)
            return
        self.expr(expr)

    # -- expressions ----------------------------------------------------------

    def expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral,
                             ast.BoolLiteral, ast.Identifier)):
            return
        if isinstance(expr, ast.Assign):
            self.assign(expr)
            return
        if isinstance(expr, ast.Call):
            self.call(expr)
            return
        if isinstance(expr, ast.Index):
            self.expr(expr.base)
            self.expr(expr.index)
            return
        if isinstance(expr, ast.Member):
            if not isinstance(expr.base, (ast.Identifier, ast.Index)):
                self.blocked(expr, "nested member access (batch "
                                   "structs are one level deep)")
                return
            self.expr(expr.base)
            return
        if isinstance(expr, ast.Binary):
            if expr.op in ("+", "-"):
                for side in (expr.left, expr.right):
                    if isinstance(side, ast.Identifier) and (
                            side.name in self.array_locals
                            or side.name in self.group_arrays):
                        self.blocked(
                            expr, f"pointer arithmetic on array "
                                  f"'{side.name}' (only __global "
                                  "pointers support offsets in batch)")
            self.expr(expr.left)
            self.expr(expr.right)
            return
        if isinstance(expr, ast.Unary):
            if expr.op == "&":
                self.blocked(expr, "address-of outside an atomic "
                                   "call")
                return
            self.expr(expr.operand)
            return
        if isinstance(expr, (ast.PreIncDec, ast.PostIncDec)):
            self.expr(expr.operand)
            return
        if isinstance(expr, ast.Ternary):
            self.expr(expr.cond)
            self.expr(expr.then)
            self.expr(expr.otherwise)
            return
        if isinstance(expr, ast.Cast):
            self.expr(expr.operand)
            return
        self.blocked(expr, f"{type(expr).__name__} expression is not "
                           "supported by the batch engine")

    def assign(self, expr: ast.Assign) -> None:
        target = expr.target
        if isinstance(target, ast.Identifier):
            if target.name in self.pointer_names:
                self.blocked(expr, f"reassignment of pointer "
                                   f"'{target.name}'")
        elif isinstance(target, ast.Index):
            self.expr(target.base)
            self.expr(target.index)
        elif isinstance(target, ast.Member):
            if not isinstance(target.base, (ast.Identifier, ast.Index)):
                self.blocked(expr, "nested member store")
            else:
                self.expr(target.base)
        elif isinstance(target, ast.Unary) and target.op == "*":
            self.expr(target.operand)
        else:
            self.blocked(expr, f"unsupported assignment target "
                               f"{type(target).__name__}")
        self.expr(expr.value)

    def call(self, expr: ast.Call) -> None:
        if expr.name in ATOMIC_FUNCTIONS:
            self.blocked(expr, f"{expr.name}() used for its return "
                               "value (batch atomics are "
                               "statement-only)")
            return
        if expr.name in WORK_ITEM_FUNCTIONS:
            if expr.args and not isinstance(expr.args[0],
                                            ast.IntLiteral):
                self.blocked(expr, f"{expr.name}() with a non-literal "
                                   "dimension")
            return
        if expr.name == "barrier":
            return
        for arg in expr.args:
            if isinstance(arg, ast.Identifier) and (
                    arg.name in self.array_locals
                    or arg.name in self.group_arrays):
                self.blocked(expr, f"array '{arg.name}' passed to "
                                   f"{expr.name}() (batch arrays "
                                   "cannot cross call frames)")
            else:
                self.expr(arg)
        callee = self.functions.get(expr.name)
        if callee is not None:
            _batch_func_blockers(callee, self.functions, self.seen,
                                 self.blockers)
        elif expr.name not in BUILTINS:
            self.blocked(expr, f"call to unknown function "
                               f"{expr.name}()")
