"""A small forward-dataflow framework over :mod:`.cfg` graphs.

Analyses subclass :class:`ForwardAnalysis`, define their lattice
(:meth:`boundary_state`, :meth:`empty_state`, :meth:`join`) and the
per-statement/per-condition transfer functions, and call :meth:`run`.
The solver iterates a worklist in reverse postorder until the block
in-states reach a fixpoint, which the finite lattices used by the
checkers guarantee.  States must be immutable values with structural
equality (frozensets, tuples, mappings wrapped in tuples, ...).

:class:`Solution` keeps the per-block in-states and replays transfer
functions on demand to recover the state *before* any individual
statement — what the checkers consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Iterator, TypeVar

from repro.clc import astnodes as ast
from repro.clc.analysis.cfg import CFG

S = TypeVar("S")


class ForwardAnalysis(Generic[S]):
    """Abstract forward dataflow problem; subclasses fill in the lattice."""

    def boundary_state(self) -> S:
        """State on entry to the function."""
        raise NotImplementedError

    def empty_state(self) -> S:
        """Identity of :meth:`join` (state of an unreachable block)."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def transfer_stmt(self, stmt: ast.Stmt, state: S) -> S:
        raise NotImplementedError

    def transfer_cond(self, cond: ast.Expr, state: S) -> S:
        """Evaluate a branch condition's side effects (default: none)."""
        return state

    # -- solver -------------------------------------------------------------

    def run(self, cfg: CFG) -> "Solution[S]":
        order = cfg.reverse_postorder()
        position = {bid: i for i, bid in enumerate(order)}
        in_states: dict[int, S] = {bid: self.empty_state()
                                   for bid in cfg.blocks}
        in_states[cfg.entry] = self.boundary_state()
        worklist = list(order)
        pending = set(worklist)
        iterations = 0
        limit = 64 * max(len(cfg.blocks), 1) ** 2 + 1024
        while worklist:
            iterations += 1
            if iterations > limit:  # pragma: no cover - lattice bug guard
                raise RuntimeError(
                    f"dataflow did not converge in {limit} iterations "
                    f"(analysis {type(self).__name__})")
            block_id = worklist.pop(0)
            pending.discard(block_id)
            block = cfg.blocks[block_id]
            state = in_states[block_id]
            for stmt in block.stmts:
                state = self.transfer_stmt(stmt, state)
            if block.cond is not None:
                state = self.transfer_cond(block.cond, state)
            for succ in block.succs:
                merged = self.join(in_states[succ], state)
                if merged != in_states[succ]:
                    in_states[succ] = merged
                    if succ not in pending:
                        pending.add(succ)
                        worklist.append(succ)
            worklist.sort(key=lambda bid: position.get(bid, 0))
        return Solution(analysis=self, cfg=cfg, block_in=in_states)


@dataclass
class Solution(Generic[S]):
    """Fixpoint in-states per block, with per-statement replay."""

    analysis: ForwardAnalysis[S]
    cfg: CFG
    block_in: dict[int, S]

    def state_into(self, block_id: int) -> S:
        return self.block_in[block_id]

    def state_out(self, block_id: int) -> S:
        block = self.cfg.blocks[block_id]
        state = self.block_in[block_id]
        for stmt in block.stmts:
            state = self.analysis.transfer_stmt(stmt, state)
        if block.cond is not None:
            state = self.analysis.transfer_cond(block.cond, state)
        return state

    def statement_states(self) -> Iterator[tuple[int, ast.Stmt, S]]:
        """Yield ``(block_id, stmt, state_before_stmt)`` for every
        simple statement in the graph."""
        for block_id, block in self.cfg.blocks.items():
            state = self.block_in[block_id]
            for stmt in block.stmts:
                yield block_id, stmt, state
                state = self.analysis.transfer_stmt(stmt, state)
