"""The kernel checkers: barrier divergence, races, bounds, definite
assignment, and distribution safety.

Each checker appends :class:`~repro.clc.analysis.diagnostics.Diagnostic`
records to a shared report; none of them raises.  They share the value
analysis of :mod:`repro.clc.analysis.values`: the race and divergence
checks are only meaningful for ``__kernel`` functions (the dialect
allows ``barrier``/``__local`` nowhere else), bounds and definite
assignment run everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clc import astnodes as ast
from repro.clc.analysis.cfg import CFG, Guard
from repro.clc.analysis.dataflow import ForwardAnalysis, Solution
from repro.clc.analysis.diagnostics import (CHECKS, AnalysisReport,
                                            Diagnostic)
from repro.clc.analysis.values import AbstractValue, ValueAnalysis
from repro.clc.builtins import ATOMIC_FUNCTIONS

ValueEnv = dict


def _diag(report: AnalysisReport, check_id: str, message: str,
          node: ast.Node, function: str) -> None:
    severity, _summary = CHECKS[check_id]
    report.add(Diagnostic(check_id=check_id, severity=severity,
                          message=message, line=node.line,
                          col=node.col, function=function))


# ---------------------------------------------------------------------------
# shared per-function context


class FunctionContext:
    """Value-analysis solution plus per-statement lookup tables that
    several checkers share for one function."""

    def __init__(self, func: ast.FunctionDef, cfg: CFG,
                 analysis: ValueAnalysis,
                 solution: Solution) -> None:
        self.func = func
        self.cfg = cfg
        self.analysis = analysis
        self.solution = solution
        #: id(stmt) -> value environment before the statement
        self.stmt_env: dict[int, ValueEnv] = {}
        #: id(stmt) -> guards of the block holding the statement
        self.stmt_guards: dict[int, tuple[Guard, ...]] = {}
        for block_id, stmt, env in solution.statement_states():
            self.stmt_env[id(stmt)] = dict(env)
            self.stmt_guards[id(stmt)] = cfg.blocks[block_id].guards
        #: block id -> environment the block's condition sees
        self.cond_env: dict[int, ValueEnv] = {}
        for block_id, block in cfg.blocks.items():
            if block.cond is not None:
                env = dict(solution.state_into(block_id))
                for stmt in block.stmts:
                    env = dict(analysis.transfer_stmt(stmt, env))
                self.cond_env[block_id] = env

    def guard_value(self, guard: Guard) -> AbstractValue:
        env = dict(self.cond_env.get(guard.block_id, {}))
        return self.analysis.eval(guard.cond, env)

    def divergent_guards(self, guards: tuple[Guard, ...]
                         ) -> list[Guard]:
        return [g for g in guards if self.guard_value(g).divergent]

    def single_item_guard_ids(self, guards: tuple[Guard, ...]
                              ) -> frozenset[int]:
        """Ids of enclosing guard blocks of the shape ``id == uniform``
        — conditions at most one work item per group satisfies."""
        ids = set()
        for guard in guards:
            if self._is_single_item(guard):
                ids.add(guard.block_id)
        return frozenset(ids)

    def _is_single_item(self, guard: Guard) -> bool:
        cond = guard.cond
        if not (isinstance(cond, ast.Binary) and cond.op == "=="):
            return False
        env = dict(self.cond_env.get(guard.block_id, {}))
        left = self.analysis.eval(cond.left, dict(env))
        right = self.analysis.eval(cond.right, dict(env))
        for a, b in ((left, right), (right, left)):
            if a.kind == "affine" and a.coeff not in (None, 0) \
                    and b.uniform:
                return True
        return False


def make_context(func: ast.FunctionDef,
                 id_free_functions: frozenset[str] = frozenset()
                 ) -> FunctionContext:
    from repro.clc.analysis.cfg import build_cfg
    analysis = ValueAnalysis([p.name for p in func.params],
                             id_free_functions=id_free_functions)
    cfg = build_cfg(func)
    return FunctionContext(func, cfg, analysis, analysis.run(cfg))


# ---------------------------------------------------------------------------
# BD001 / BD002 — barrier divergence


def check_barriers(ctx: FunctionContext,
                   report: AnalysisReport) -> None:
    """All-or-none: ``barrier()`` hangs unless every work item of the
    group reaches it, so a barrier under a work-item-dependent branch
    or loop condition is an error (BD001); an early ``return`` on a
    divergent path in a barrier-using kernel skips barriers for part
    of the group (BD002)."""
    func = ctx.func
    barrier_sites: list[tuple[ast.Call, tuple[Guard, ...]]] = []
    returns: list[tuple[ast.ReturnStmt, tuple[Guard, ...]]] = []
    for stmt, guards in _stmts_with_guards(ctx):
        for call in _find_calls(stmt, "barrier"):
            barrier_sites.append((call, guards))
        if isinstance(stmt, ast.ReturnStmt):
            returns.append((stmt, guards))

    for call, guards in barrier_sites:
        for guard in ctx.divergent_guards(guards):
            what = ("loop with a work-item-dependent trip count"
                    if guard.kind == "loop" else
                    "branch on a work-item-dependent condition")
            _diag(report, "BD001",
                  f"barrier() inside a {what} (line {guard.cond.line}) "
                  "is not reached by every work item of the group",
                  call, func.name)
            break  # one report per barrier site

    if barrier_sites:
        for ret, guards in returns:
            if ctx.divergent_guards(guards):
                _diag(report, "BD002",
                      "return on a work-item-dependent path skips the "
                      "barrier(s) below for part of the group",
                      ret, func.name)


def _stmts_with_guards(ctx: FunctionContext
                       ) -> list[tuple[ast.Stmt, tuple[Guard, ...]]]:
    out = []
    for block in ctx.cfg.blocks.values():
        for stmt in block.stmts:
            out.append((stmt, block.guards))
    return out


def _find_calls(node: ast.Stmt | ast.Expr, name: str
                ) -> list[ast.Call]:
    found: list[ast.Call] = []

    def walk_expr(expr: ast.Expr | None) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Call):
            if expr.name == name:
                found.append(expr)
            for arg in expr.args:
                walk_expr(arg)
            return
        for child in _expr_children(expr):
            walk_expr(child)

    if isinstance(node, ast.DeclStmt):
        for decl in node.declarators:
            walk_expr(decl.init)
    elif isinstance(node, ast.ExprStmt):
        walk_expr(node.expr)
    elif isinstance(node, ast.ReturnStmt):
        walk_expr(node.value)
    return found


def _expr_children(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.Unary):
        return [expr.operand]
    if isinstance(expr, (ast.PreIncDec, ast.PostIncDec)):
        return [expr.operand]
    if isinstance(expr, ast.Binary):
        return [expr.left, expr.right]
    if isinstance(expr, ast.Ternary):
        return [expr.cond, expr.then, expr.otherwise]
    if isinstance(expr, ast.Assign):
        return [expr.target, expr.value]
    if isinstance(expr, ast.Cast):
        return [expr.operand]
    if isinstance(expr, ast.Index):
        return [expr.base, expr.index]
    if isinstance(expr, ast.Member):
        return [expr.base]
    return []


# ---------------------------------------------------------------------------
# RC001 / RC002 / RC003 — shared-memory races


@dataclass(frozen=True)
class _Write:
    """One unsynchronized shared-memory write pending since the last
    barrier."""

    space: str  # "local" | "global"
    name: str
    index: AbstractValue
    #: single-item guard blocks enclosing the write (``lid == 0``)
    single_guard_ids: frozenset[int]
    line: int
    col: int


class _RaceAnalysis(ForwardAnalysis[frozenset]):
    """State: the set of shared-memory writes since the last barrier.

    ``barrier()`` clears the set; the reporting pass replays the same
    transfer and flags reads/writes that conflict with a pending write
    another work item may have issued."""

    def __init__(self, ctx: FunctionContext, shared: dict[str, str]
                 ) -> None:
        self.ctx = ctx
        self.shared = shared  # array name -> "local" | "global"

    def boundary_state(self) -> frozenset:
        return frozenset()

    def empty_state(self) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer_stmt(self, stmt: ast.Stmt,
                      state: frozenset) -> frozenset:
        return self._process(stmt, state, report=None,
                             func_name="")

    # -- shared transfer/report walk ----------------------------------------

    def _process(self, stmt: ast.Stmt, state: frozenset,
                 report: AnalysisReport | None,
                 func_name: str) -> frozenset:
        env = self.ctx.stmt_env.get(id(stmt), {})
        guards = self.ctx.stmt_guards.get(id(stmt), ())
        single_ids = self.ctx.single_item_guard_ids(guards)

        accesses: list[tuple[ast.Index, bool]] = []
        has_barrier = bool(_find_calls(stmt, "barrier"))
        atomic_targets: set[int] = set()
        exprs: list[ast.Expr] = []
        if isinstance(stmt, ast.DeclStmt):
            exprs = [d.init for d in stmt.declarators
                     if d.init is not None]
        elif isinstance(stmt, ast.ExprStmt) and stmt.expr is not None:
            exprs = [stmt.expr]
        elif isinstance(stmt, ast.ReturnStmt) and stmt.value is not None:
            exprs = [stmt.value]
        for expr in exprs:
            self._collect(expr, accesses, atomic_targets,
                          is_write=False)

        new_state = set(state)
        for index_expr, is_write in accesses:
            if id(index_expr) in atomic_targets:
                continue  # atomics synchronize their own access
            base = index_expr.base
            assert isinstance(base, ast.Identifier)
            space = self.shared[base.name]
            value = self.ctx.analysis.eval(index_expr.index, dict(env))
            if report is not None:
                self._report_conflicts(index_expr, base.name, space,
                                       value, single_ids, is_write,
                                       state, report, func_name)
            if is_write:
                new_state.add(_Write(space=space, name=base.name,
                                     index=value,
                                     single_guard_ids=single_ids,
                                     line=index_expr.line,
                                     col=index_expr.col))
        if has_barrier:
            return frozenset()
        return frozenset(new_state)

    def _collect(self, expr: ast.Expr,
                 accesses: list[tuple[ast.Index, bool]],
                 atomic_targets: set[int], is_write: bool) -> None:
        """Gather shared-array index accesses in evaluation order."""
        if isinstance(expr, ast.Assign):
            self._collect(expr.value, accesses, atomic_targets, False)
            if isinstance(expr.target, ast.Index):
                # compound assignment reads too, but flagging the
                # write covers the same conflict
                self._collect(expr.target, accesses, atomic_targets,
                              True)
            else:
                self._collect(expr.target, accesses, atomic_targets,
                              False)
            return
        if isinstance(expr, (ast.PreIncDec, ast.PostIncDec)):
            self._collect(expr.operand, accesses, atomic_targets,
                          True)
            return
        if isinstance(expr, ast.Call):
            if expr.name in ATOMIC_FUNCTIONS and expr.args:
                target = expr.args[0]
                if isinstance(target, ast.Unary) and target.op == "&" \
                        and isinstance(target.operand, ast.Index):
                    atomic_targets.add(id(target.operand))
            for arg in expr.args:
                self._collect(arg, accesses, atomic_targets, False)
            return
        if isinstance(expr, ast.Index):
            if isinstance(expr.base, ast.Identifier) \
                    and expr.base.name in self.shared:
                accesses.append((expr, is_write))
            self._collect(expr.index, accesses, atomic_targets, False)
            if not isinstance(expr.base, ast.Identifier):
                self._collect(expr.base, accesses, atomic_targets,
                              False)
            return
        for child in _expr_children(expr):
            self._collect(child, accesses, atomic_targets, False)

    def _report_conflicts(self, site: ast.Index, name: str, space: str,
                          value: AbstractValue,
                          single_ids: frozenset[int], is_write: bool,
                          pending: frozenset, report: AnalysisReport,
                          func_name: str) -> None:
        for write in pending:
            if write.name != name:
                continue
            if write.single_guard_ids & single_ids:
                continue  # both on the same single-item path
            if write.index == value and not value.uniform:
                continue  # provably the item's own slot
            if write.index == value and value.uniform \
                    and not write.single_guard_ids:
                # every item writes the same cell; flagged as RC002 at
                # the write, don't repeat per read
                continue
            what = "write to" if is_write else "read of"
            check = "RC001" if space == "local" else "RC003"
            _diag(report, check,
                  f"{what} __{space} '{name}' may race with the "
                  f"write at line {write.line} — no barrier in "
                  "between", site, func_name)
            return  # one report per access site

    def report_write_sharing(self, stmt: ast.Stmt,
                             report: AnalysisReport,
                             func_name: str) -> None:
        """RC002: every work item stores to the same location."""
        env = self.ctx.stmt_env.get(id(stmt), {})
        guards = self.ctx.stmt_guards.get(id(stmt), ())
        if self.ctx.single_item_guard_ids(guards):
            return
        accesses: list[tuple[ast.Index, bool]] = []
        atomic_targets: set[int] = set()
        exprs: list[ast.Expr] = []
        if isinstance(stmt, ast.ExprStmt) and stmt.expr is not None:
            exprs = [stmt.expr]
        for expr in exprs:
            self._collect(expr, accesses, atomic_targets, False)
        for index_expr, is_write in accesses:
            if not is_write or id(index_expr) in atomic_targets:
                continue
            base = index_expr.base
            assert isinstance(base, ast.Identifier)
            value = self.ctx.analysis.eval(index_expr.index, dict(env))
            if value.uniform:
                space = self.shared[base.name]
                _diag(report, "RC002",
                      f"every work item writes __{space} "
                      f"'{base.name}' at the same index — last "
                      "writer wins; guard with a single work item "
                      "or use atomics", index_expr, func_name)


def check_races(ctx: FunctionContext,
                report: AnalysisReport) -> None:
    """Flag unsynchronized cross-work-item conflicts on ``__local``
    arrays (RC001, error) and ``__global`` pointers (RC003, warning),
    plus all-items-same-cell stores (RC002)."""
    shared = _shared_arrays(ctx.func)
    if not shared:
        return
    analysis = _RaceAnalysis(ctx, shared)
    solution = analysis.run(ctx.cfg)
    for _block_id, stmt, state in solution.statement_states():
        analysis._process(stmt, state, report=report,
                          func_name=ctx.func.name)
        analysis.report_write_sharing(stmt, report, ctx.func.name)


def _shared_arrays(func: ast.FunctionDef) -> dict[str, str]:
    """Names of ``__local`` arrays and ``__global`` pointer params."""
    shared: dict[str, str] = {}
    for param in func.params:
        if getattr(param.ctype, "is_pointer", False) \
                and param.address_space == "global":
            shared[param.name] = "global"

    def walk(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.DeclStmt):
            if stmt.address_space == "local":
                for decl in stmt.declarators:
                    shared[decl.name] = "local"
        elif isinstance(stmt, ast.CompoundStmt):
            for inner in stmt.body:
                walk(inner)
        elif isinstance(stmt, ast.IfStmt):
            walk(stmt.then)
            if stmt.otherwise is not None:
                walk(stmt.otherwise)
        elif isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                walk(stmt.init)
            walk(stmt.body)
        elif isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
            walk(stmt.body)

    if func.body is not None:
        walk(func.body)
    return shared


# ---------------------------------------------------------------------------
# OB001 — constant index out of bounds


def check_bounds(ctx: FunctionContext,
                 report: AnalysisReport) -> None:
    """Constant indices outside a fixed-size array's extent."""
    sizes = _array_sizes(ctx.func)
    if not sizes:
        return
    for stmt, _guards in _stmts_with_guards(ctx):
        env = ctx.stmt_env.get(id(stmt), {})
        for index_expr in _find_indexes(stmt):
            base = index_expr.base
            if not (isinstance(base, ast.Identifier)
                    and base.name in sizes):
                continue
            value = ctx.analysis.eval(index_expr.index, dict(env))
            size = sizes[base.name]
            if value.kind == "const" and value.value is not None \
                    and not 0 <= value.value < size:
                _diag(report, "OB001",
                      f"index {value.value} is outside "
                      f"'{base.name}[{size}]'", index_expr,
                      ctx.func.name)


def _array_sizes(func: ast.FunctionDef) -> dict[str, int]:
    sizes: dict[str, int] = {}

    def walk(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.declarators:
                if isinstance(decl.array_size, ast.IntLiteral):
                    sizes[decl.name] = decl.array_size.value
        elif isinstance(stmt, ast.CompoundStmt):
            for inner in stmt.body:
                walk(inner)
        elif isinstance(stmt, ast.IfStmt):
            walk(stmt.then)
            if stmt.otherwise is not None:
                walk(stmt.otherwise)
        elif isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                walk(stmt.init)
            walk(stmt.body)
        elif isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
            walk(stmt.body)

    if func.body is not None:
        walk(func.body)
    return sizes


def _find_indexes(stmt: ast.Stmt) -> list[ast.Index]:
    found: list[ast.Index] = []

    def walk(expr: ast.Expr | None) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Index):
            found.append(expr)
        if isinstance(expr, ast.Call):
            for arg in expr.args:
                walk(arg)
            return
        for child in _expr_children(expr):
            walk(child)

    if isinstance(stmt, ast.DeclStmt):
        for decl in stmt.declarators:
            walk(decl.init)
    elif isinstance(stmt, ast.ExprStmt):
        walk(stmt.expr)
    elif isinstance(stmt, ast.ReturnStmt):
        walk(stmt.value)
    return found


# ---------------------------------------------------------------------------
# UD001 — use before definite assignment


class _AssignedAnalysis(ForwardAnalysis):
    """State: the set of names definitely assigned on every path; the
    join is intersection (``None`` marks the unreachable top)."""

    def __init__(self, params: list[str]) -> None:
        self.params = params

    def boundary_state(self):
        return frozenset(self.params)

    def empty_state(self):
        return None

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a & b

    def transfer_stmt(self, stmt: ast.Stmt, state):
        if state is None:
            return None
        assigned = set(state)
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.declarators:
                if decl.init is not None:
                    _collect_assignments(decl.init, assigned)
                    assigned.add(decl.name)
                elif decl.array_size is not None:
                    assigned.add(decl.name)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                _collect_assignments(stmt.expr, assigned)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                _collect_assignments(stmt.value, assigned)
        return frozenset(assigned)

    def transfer_cond(self, cond: ast.Expr, state):
        if state is None:
            return None
        assigned = set(state)
        _collect_assignments(cond, assigned)
        return frozenset(assigned)


def _member_root(expr: ast.Expr) -> ast.Identifier | None:
    """The identifier at the bottom of a ``a.b.c`` member chain."""
    while isinstance(expr, ast.Member):
        expr = expr.base
    return expr if isinstance(expr, ast.Identifier) else None


def _collect_assignments(expr: ast.Expr, assigned: set) -> None:
    if isinstance(expr, ast.Assign):
        _collect_assignments(expr.value, assigned)
        if isinstance(expr.target, ast.Identifier):
            assigned.add(expr.target.name)
            return
        # a member store initializes (part of) the struct — treated
        # as assigning the whole, matching the C compilers' leniency
        root = _member_root(expr.target)
        if root is not None:
            assigned.add(root.name)
            return
        _collect_assignments(expr.target, assigned)
        return
    if isinstance(expr, (ast.PreIncDec, ast.PostIncDec)):
        if isinstance(expr.operand, ast.Identifier):
            assigned.add(expr.operand.name)
        return
    for child in _expr_children(expr):
        _collect_assignments(child, assigned)
    if isinstance(expr, ast.Call):
        for arg in expr.args:
            _collect_assignments(arg, assigned)


def check_uninit(ctx: FunctionContext,
                 report: AnalysisReport) -> None:
    """Scalar locals declared without an initializer and read on some
    path before any assignment."""
    func = ctx.func
    tracked = _uninit_tracked(func)
    if not tracked:
        return
    analysis = _AssignedAnalysis([p.name for p in func.params])
    solution = analysis.run(ctx.cfg)
    reported: set[str] = set()

    def flag(ident: ast.Identifier) -> None:
        if ident.name in reported:
            return
        reported.add(ident.name)
        _diag(report, "UD001",
              f"'{ident.name}' may be read before it is assigned",
              ident, func.name)

    for _block_id, stmt, state in solution.statement_states():
        if state is None:
            continue
        for ident in _reads_in_stmt(stmt):
            if ident.name in tracked and ident.name not in state:
                flag(ident)
    for block_id, block in ctx.cfg.blocks.items():
        if block.cond is None:
            continue
        state = solution.state_into(block_id)
        if state is None:
            continue
        for stmt in block.stmts:
            state = analysis.transfer_stmt(stmt, state)
        for ident in _reads_in_expr(block.cond):
            if ident.name in tracked and ident.name not in state:
                flag(ident)


def _uninit_tracked(func: ast.FunctionDef) -> set[str]:
    """Locals worth tracking: declared exactly once (shadowing makes
    the name ambiguous across scopes) and without initializer."""
    declared: list[tuple[str, bool]] = []

    def walk(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.declarators:
                declared.append((decl.name,
                                 decl.init is None
                                 and decl.array_size is None))
        elif isinstance(stmt, ast.CompoundStmt):
            for inner in stmt.body:
                walk(inner)
        elif isinstance(stmt, ast.IfStmt):
            walk(stmt.then)
            if stmt.otherwise is not None:
                walk(stmt.otherwise)
        elif isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                walk(stmt.init)
            walk(stmt.body)
        elif isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
            walk(stmt.body)

    if func.body is not None:
        walk(func.body)
    counts: dict[str, int] = {}
    for name, _ in declared:
        counts[name] = counts.get(name, 0) + 1
    return {name for name, uninit in declared
            if uninit and counts[name] == 1}


def _reads_in_stmt(stmt: ast.Stmt) -> list[ast.Identifier]:
    reads: list[ast.Identifier] = []
    if isinstance(stmt, ast.DeclStmt):
        for decl in stmt.declarators:
            if decl.init is not None:
                _reads(decl.init, reads)
    elif isinstance(stmt, ast.ExprStmt):
        if stmt.expr is not None:
            _reads(stmt.expr, reads)
    elif isinstance(stmt, ast.ReturnStmt):
        if stmt.value is not None:
            _reads(stmt.value, reads)
    return reads


def _reads_in_expr(expr: ast.Expr) -> list[ast.Identifier]:
    reads: list[ast.Identifier] = []
    _reads(expr, reads)
    return reads


def _reads(expr: ast.Expr, out: list[ast.Identifier]) -> None:
    if isinstance(expr, ast.Identifier):
        out.append(expr)
        return
    if isinstance(expr, ast.Assign):
        _reads(expr.value, out)
        target = expr.target
        if isinstance(target, ast.Identifier):
            if expr.op != "=":
                out.append(target)  # compound assigns read
        elif isinstance(target, ast.Member) \
                and _member_root(target) is not None:
            if expr.op != "=":
                out.append(_member_root(target))
        else:
            _reads(target, out)
        return
    if isinstance(expr, ast.Call):
        for arg in expr.args:
            _reads(arg, out)
        return
    for child in _expr_children(expr):
        _reads(child, out)


# ---------------------------------------------------------------------------
# DIST001 — block-distribution-unsafe neighbour gathers


def check_distribution(func: ast.FunctionDef, summary,
                       report: AnalysisReport) -> None:
    """A kernel indexing a ``__global`` pointer at its own index plus a
    constant reads its neighbour's element — correct on one device,
    silently wrong at block boundaries once the vector is split."""
    global_params = {p.name for p in func.params
                     if getattr(p.ctype, "is_pointer", False)
                     and p.address_space == "global"}
    from repro.clc.analysis.access import AccessPattern
    for name, access in summary.param_access.items():
        if name not in global_params:
            continue
        for site in access.sites:
            if not site.direct \
                    or site.pattern is not AccessPattern.NEIGHBORHOOD:
                continue
            offset = site.offset if site.offset is not None else 0
            _diag(report, "DIST001",
                  f"'{name}' is accessed at get_global_id(0)"
                  f"{offset:+d}; under block distribution each device "
                  "holds only its slice — use copy distribution or "
                  "the map_overlap skeleton",
                  _Pos(site.line, site.col), func.name)


class _Pos:
    """Duck-typed position carrier for :func:`_diag`."""

    def __init__(self, line: int, col: int) -> None:
        self.line = line
        self.col = col
