"""Static analysis of kernel dialect sources.

The subsystem layers on top of the :mod:`repro.clc` front end:

- :mod:`.cfg` — basic blocks + guard stacks per function;
- :mod:`.dataflow` — a small forward-dataflow framework;
- :mod:`.values` — the work-item variance lattice;
- :mod:`.access` — pointer access-pattern classification and the
  vectorization verdict;
- :mod:`.checks` — barrier divergence, race, bounds, definite
  assignment and distribution-safety checkers;
- :mod:`.diagnostics` — the report model;
- :mod:`.driver` — ties it all together.
"""

from repro.clc.analysis.access import (AccessPattern, AccessSite,
                                       AccessSummary, FunctionSummary,
                                       batch_blockers,
                                       summarize_function,
                                       summarize_unit,
                                       vectorize_blockers)
from repro.clc.analysis.cfg import CFG, BasicBlock, Guard, build_cfg
from repro.clc.analysis.dataflow import ForwardAnalysis, Solution
from repro.clc.analysis.diagnostics import (CHECKS, SCHEMA_VERSION,
                                            AnalysisReport, Diagnostic,
                                            Severity)
from repro.clc.analysis.driver import (analyze_source, analyze_unit,
                                       engine_report,
                                       engine_report_tiers,
                                       kernel_engine_blockers,
                                       kernel_native_blockers)
from repro.clc.analysis.values import (AbstractValue, ValueAnalysis,
                                       add_values, affine, const,
                                       join_values, mul_values)

__all__ = [
    "AbstractValue",
    "AccessPattern",
    "AccessSite",
    "AccessSummary",
    "AnalysisReport",
    "BasicBlock",
    "CFG",
    "CHECKS",
    "Diagnostic",
    "SCHEMA_VERSION",
    "ForwardAnalysis",
    "FunctionSummary",
    "Guard",
    "Severity",
    "Solution",
    "ValueAnalysis",
    "add_values",
    "affine",
    "analyze_source",
    "analyze_unit",
    "batch_blockers",
    "build_cfg",
    "engine_report",
    "engine_report_tiers",
    "kernel_engine_blockers",
    "kernel_native_blockers",
    "const",
    "join_values",
    "mul_values",
    "summarize_function",
    "summarize_unit",
    "vectorize_blockers",
]
