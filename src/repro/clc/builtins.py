"""Built-in functions of the mini OpenCL-C dialect.

Covers the work-item functions, the common math built-ins the paper's
kernels use, integer helpers, and ``atomic_add``/``atomic_inc`` on
global integer buffers.  ``barrier`` provides real work-group
synchronization: the code generator turns barrier-containing kernel
bodies into generators and the launcher advances a group's items in
lockstep rounds (see :mod:`repro.clc.codegen`).

Each builtin has a result-type rule and a Python implementation used by
both the scalar (per-work-item) and the vectorized execution paths —
numpy ufuncs behave identically for scalars and arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.clc.types import (CType, FLOAT, INT, SIZE_T, UINT, VOID,
                             promote)
from repro.errors import TypeCheckError


@dataclass(frozen=True)
class Builtin:
    """A built-in function: its typing rule and evaluator."""

    name: str
    arity: tuple[int, ...]
    result_type: Callable[[Sequence[CType]], CType]
    impl: Callable
    #: approximate device cost in "simple operations" (for the timing model)
    op_cost: float = 1.0


def _float_result(args: Sequence[CType]) -> CType:
    """Math builtins: float args stay float, ints promote to float."""
    result: CType = FLOAT
    for arg in args:
        if arg.is_scalar and arg.is_float:
            result = promote(result, arg)
    return result


def _same_as_args(args: Sequence[CType]) -> CType:
    result = args[0]
    for arg in args[1:]:
        result = promote(result, arg)
    return result


def _fixed(ctype: CType) -> Callable[[Sequence[CType]], CType]:
    return lambda args: ctype


def _clamp(x, lo, hi):
    return np.minimum(np.maximum(x, lo), hi)


def _mad(a, b, c):
    return a * b + c


def _sign(x):
    return np.sign(x)


def _native(fn):
    """OpenCL native_* variants: same math, modelled as cheaper."""
    return fn


_MATH_1 = {
    "sqrt": (np.sqrt, 4.0), "rsqrt": (lambda x: 1.0 / np.sqrt(x), 5.0),
    "fabs": (np.abs, 1.0), "exp": (np.exp, 8.0), "exp2": (np.exp2, 8.0),
    "log": (np.log, 8.0), "log2": (np.log2, 8.0), "log10": (np.log10, 8.0),
    "sin": (np.sin, 8.0), "cos": (np.cos, 8.0), "tan": (np.tan, 10.0),
    "asin": (np.arcsin, 10.0), "acos": (np.arccos, 10.0),
    "atan": (np.arctan, 10.0), "floor": (np.floor, 1.0),
    "ceil": (np.ceil, 1.0), "trunc": (np.trunc, 1.0),
    "round": (np.round, 1.0), "sign": (_sign, 1.0),
}

_MATH_2 = {
    "pow": (np.power, 12.0), "fmin": (np.minimum, 1.0),
    "fmax": (np.maximum, 1.0), "atan2": (np.arctan2, 12.0),
    "fmod": (np.fmod, 4.0), "hypot": (np.hypot, 8.0),
    "copysign": (np.copysign, 1.0),
}


def _int_abs(x):
    return np.abs(x)


def _build_table() -> dict[str, Builtin]:
    table: dict[str, Builtin] = {}

    def add(b: Builtin) -> None:
        table[b.name] = b

    for name, (fn, cost) in _MATH_1.items():
        add(Builtin(name, (1,), _float_result, fn, cost))
        add(Builtin(f"native_{name}", (1,), _float_result, _native(fn),
                    max(1.0, cost / 2)))
    for name, (fn, cost) in _MATH_2.items():
        add(Builtin(name, (2,), _float_result, fn, cost))

    add(Builtin("min", (2,), _same_as_args, np.minimum, 1.0))
    add(Builtin("max", (2,), _same_as_args, np.maximum, 1.0))
    add(Builtin("abs", (1,), _same_as_args, _int_abs, 1.0))
    add(Builtin("clamp", (3,), _same_as_args, _clamp, 2.0))
    add(Builtin("mad", (3,), _float_result, _mad, 1.0))
    add(Builtin("fma", (3,), _float_result, _mad, 1.0))
    add(Builtin("native_divide", (2,), _float_result,
                lambda a, b: a / b, 2.0))
    add(Builtin("isnan", (1,), _fixed(INT), lambda x: np.isnan(x), 1.0))
    add(Builtin("isinf", (1,), _fixed(INT), lambda x: np.isinf(x), 1.0))

    # Work-item functions: implementations are placeholders — the code
    # generator rewrites these calls to read the per-item context, so the
    # impl is only consulted for typing.
    for name in ("get_global_id", "get_local_id", "get_group_id",
                 "get_global_size", "get_local_size", "get_num_groups"):
        add(Builtin(name, (1,), _fixed(SIZE_T), None, 0.0))
    add(Builtin("get_work_dim", (0,), _fixed(UINT), None, 0.0))

    # Synchronization / atomics: rewritten by codegen as well.
    add(Builtin("barrier", (0, 1), _fixed(VOID), None, 0.0))
    add(Builtin("atomic_add", (2,), _same_as_args, None, 4.0))
    add(Builtin("atomic_sub", (2,), _same_as_args, None, 4.0))
    add(Builtin("atomic_inc", (1,), _same_as_args, None, 4.0))

    return table


BUILTINS: dict[str, Builtin] = _build_table()

#: names whose calls the code generator rewrites rather than dispatching
#: through the builtin table's ``impl``
WORK_ITEM_FUNCTIONS = {
    "get_global_id", "get_local_id", "get_group_id", "get_global_size",
    "get_local_size", "get_num_groups", "get_work_dim",
}
ATOMIC_FUNCTIONS = {"atomic_add", "atomic_sub", "atomic_inc"}


def builtin_result_type(name: str, args: Sequence[CType], line: int,
                        col: int) -> CType:
    """Type a builtin call, raising :class:`TypeCheckError` on misuse."""
    builtin = BUILTINS.get(name)
    if builtin is None:
        raise TypeCheckError(f"unknown function {name!r}", line, col)
    if len(args) not in builtin.arity:
        raise TypeCheckError(
            f"{name} expects {' or '.join(map(str, builtin.arity))} "
            f"argument(s), got {len(args)}", line, col)
    if name in ATOMIC_FUNCTIONS:
        first = args[0]
        if not (first.is_pointer and first.pointee.is_scalar):  # type: ignore[attr-defined]
            raise TypeCheckError(
                f"{name} expects a pointer first argument", line, col)
        return first.pointee  # type: ignore[attr-defined]
    if name == "barrier":
        return VOID
    scalar_args = [a for a in args if a.is_scalar]
    if len(scalar_args) != len(args):
        raise TypeCheckError(
            f"{name} expects scalar arguments", line, col)
    return builtin.result_type(args)
