"""Python code generation for the mini OpenCL-C dialect.

Each C function becomes a Python function; each ``__kernel`` function
additionally gets a launcher that iterates the NDRange work group by
work group.  Barrier-free bodies execute eagerly per item; bodies
containing ``barrier()`` compile to generators yielding at each
barrier, and the launcher advances all items of a work group in
lockstep rounds — real work-group synchronization, sufficient for the
classic staged-reduction and local-memory-tiling idioms (``__local``
arrays are shared per work group through the item context).

Numeric model: C ``float``/``double`` compute in Python floats
(float64); stores into ``float`` buffers round to float32 on
assignment, matching OpenCL results within rounding tolerance.  Integer
division/modulo use C truncation semantics via helpers.  Fixed-width
integer overflow is not emulated (none of the paper's kernels rely on
it).
"""

from __future__ import annotations

from collections import namedtuple
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.clc import astnodes as ast
from repro.clc.builtins import (ATOMIC_FUNCTIONS, BUILTINS,
                                WORK_ITEM_FUNCTIONS)
from repro.clc.types import CType, ScalarType, StructType
from repro.errors import ClcError, InterpError

WorkItem = namedtuple("WorkItem",
                      ["gid", "lid", "grp", "gsz", "lsz", "wg"])
WorkItem.__new__.__defaults__ = (None,)  # wg: work-group shared dict


# -- runtime helpers injected into the generated module's namespace -----------

def _idiv(a, b):
    """C integer division: truncation toward zero."""
    q = abs(int(a)) // abs(int(b))
    return -q if (a < 0) != (b < 0) else q


def _imod(a, b):
    """C integer modulo: sign of the dividend."""
    return int(a) - _idiv(a, b) * int(b)


def _as_int(x):
    """C cast-to-integer: truncation toward zero."""
    return int(x)


def _struct_copy(value):
    """Value-copy semantics for struct assignment/initialization.

    ``np.array(void_scalar, copy=True)`` keeps a view of the parent
    array's memory, so an explicit fresh 0-d array is filled instead.
    """
    src = np.asarray(value)
    out = np.zeros((), dtype=src.dtype)
    out[()] = value
    return out


def _atomic_add(arr, idx, value):
    old = arr[idx]
    arr[idx] = old + value
    return old


def _atomic_sub(arr, idx, value):
    old = arr[idx]
    arr[idx] = old - value
    return old


def _atomic_inc(arr, idx):
    old = arr[idx]
    arr[idx] = old + 1
    return old


_ATOMIC_IMPLS = {"atomic_add": "_atomic_add", "atomic_sub": "_atomic_sub",
                 "atomic_inc": "_atomic_inc"}

_WI_ACCESS = {
    "get_global_id": "_wi.gid",
    "get_local_id": "_wi.lid",
    "get_group_id": "_wi.grp",
    "get_global_size": "_wi.gsz",
    "get_local_size": "_wi.lsz",
}


@dataclass
class CompiledFunction:
    """One compiled C function: metadata plus its Python callable."""

    name: str
    callable: Callable
    param_types: list[CType]
    return_type: CType
    is_kernel: bool
    #: static per-work-item op estimate from the type checker
    op_count: float = 1.0


@dataclass
class CompiledUnit:
    """All functions of a compiled translation unit."""

    kernels: dict[str, CompiledFunction] = field(default_factory=dict)
    functions: dict[str, CompiledFunction] = field(default_factory=dict)
    structs: dict[str, StructType] = field(default_factory=dict)
    python_source: str = ""


class _Emitter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class CodeGenerator:
    """Generates a Python module for one type-checked translation unit."""

    def __init__(self, unit: ast.TranslationUnit,
                 op_counts: dict[str, float]) -> None:
        self.unit = unit
        self.op_counts = op_counts
        self.user_functions = {f.name for f in unit.functions}
        self._emitter = _Emitter()
        #: stack of "step" source lines for the innermost C loop, used to
        #: give ``continue`` correct C semantics (run the step first)
        self._loop_steps: list[list[str]] = []

    # -- public entry ---------------------------------------------------------

    def generate(self) -> CompiledUnit:
        emitter = self._emitter
        for func in self.unit.functions:
            self._gen_function(func)
            emitter.emit("")
        return materialize(self.unit, self.op_counts, emitter.source())

    # -- functions -------------------------------------------------------------

    def _gen_function(self, func: ast.FunctionDef) -> None:
        e = self._emitter
        params = ", ".join(f"v_{p.name}" for p in func.params)
        sep = ", " if params else ""
        e.emit(f"def _fn_{func.name}({params}{sep}_wi=None):")
        e.indent += 1
        body_stmts = func.body.body if func.body else []
        if not body_stmts:
            e.emit("pass")
        else:
            for stmt in body_stmts:
                self._gen_stmt(stmt)
        e.indent -= 1
        if func.is_kernel:
            e.emit("")
            self._gen_kernel_launcher(func)

    def _gen_kernel_launcher(self, func: ast.FunctionDef) -> None:
        e = self._emitter
        args = ", ".join(f"_args[{i}]" for i in range(len(func.params)))
        sep = ", " if args else ""
        e.emit(f"def _kernel_{func.name}(_args, _gsize, _lsize):")
        e.indent += 1
        e.emit(f"if len(_args) != {len(func.params)}:")
        e.indent += 1
        e.emit(f"raise InterpError('kernel {func.name} expects "
               f"{len(func.params)} args, got %d' % len(_args))")
        e.indent -= 1
        # Work items execute group by group.  Barrier-free bodies run
        # eagerly at call time; bodies containing barrier() compile to
        # generators that yield at each barrier, and all items of a
        # group advance in lockstep rounds between barriers.
        e.emit("_ngrp = tuple(g // l for g, l in zip(_gsize, _lsize))")
        e.emit("for _grp in np.ndindex(*_ngrp):")
        e.indent += 1
        e.emit("_wg = {}")
        e.emit("_pending = []")
        e.emit("for _lid in np.ndindex(*_lsize):")
        e.indent += 1
        e.emit("_idx = tuple(g * l + i for g, l, i in "
               "zip(_grp, _lsize, _lid))")
        e.emit("_wi = WorkItem(gid=_idx, lid=_lid, grp=_grp, "
               "gsz=_gsize, lsz=_lsize, wg=_wg)")
        e.emit(f"_r = _fn_{func.name}({args}{sep}_wi=_wi)")
        e.emit("if _r is not None and hasattr(_r, '__next__'):")
        e.indent += 1
        e.emit("_pending.append(_r)")
        e.indent -= 2
        e.emit("while _pending:")
        e.indent += 1
        e.emit("_nxt = []")
        e.emit("for _g in _pending:")
        e.indent += 1
        e.emit("try:")
        e.indent += 1
        e.emit("next(_g)")
        e.emit("_nxt.append(_g)")
        e.indent -= 1
        e.emit("except StopIteration:")
        e.indent += 1
        e.emit("pass")
        e.indent -= 2
        e.emit("_pending = _nxt")
        e.indent -= 2

    # -- statements --------------------------------------------------------------

    def _gen_stmt(self, stmt: ast.Stmt) -> None:
        e = self._emitter
        if isinstance(stmt, ast.CompoundStmt):
            if not stmt.body:
                e.emit("pass")
            for sub in stmt.body:
                self._gen_stmt(sub)
            return
        if isinstance(stmt, ast.DeclStmt):
            self._gen_decl(stmt)
            return
        if isinstance(stmt, ast.ExprStmt):
            self._gen_expr_stmt(stmt.expr)
            return
        if isinstance(stmt, ast.IfStmt):
            e.emit(f"if {self._expr(stmt.cond)}:")
            e.indent += 1
            self._gen_stmt(stmt.then)
            e.indent -= 1
            if stmt.otherwise is not None:
                e.emit("else:")
                e.indent += 1
                self._gen_stmt(stmt.otherwise)
                e.indent -= 1
            return
        if isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self._gen_stmt(stmt.init)
            cond = self._expr(stmt.cond) if stmt.cond is not None else "True"
            e.emit(f"while {cond}:")
            e.indent += 1
            step_lines = self._capture_step(stmt.step)
            self._loop_steps.append(step_lines)
            self._gen_stmt(stmt.body)
            self._loop_steps.pop()
            for line in step_lines:
                e.emit(line)
            e.indent -= 1
            return
        if isinstance(stmt, ast.WhileStmt):
            e.emit(f"while {self._expr(stmt.cond)}:")
            e.indent += 1
            self._loop_steps.append([])
            self._gen_stmt(stmt.body)
            self._loop_steps.pop()
            e.indent -= 1
            return
        if isinstance(stmt, ast.DoWhileStmt):
            e.emit("while True:")
            e.indent += 1
            exit_line = f"if not ({self._expr(stmt.cond)}): break"
            self._loop_steps.append([exit_line])
            self._gen_stmt(stmt.body)
            self._loop_steps.pop()
            e.emit(exit_line)
            e.indent -= 1
            return
        if isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                e.emit("return None")
            else:
                e.emit(f"return {self._expr(stmt.value)}")
            return
        if isinstance(stmt, ast.BreakStmt):
            e.emit("break")
            return
        if isinstance(stmt, ast.ContinueStmt):
            # C continue runs the for-step (or do-while test) first.
            for line in (self._loop_steps[-1] if self._loop_steps else []):
                e.emit(line)
            e.emit("continue")
            return
        raise ClcError(f"codegen: unsupported statement "
                       f"{type(stmt).__name__}", stmt.line, stmt.col)

    def _capture_step(self, step: ast.Expr | None) -> list[str]:
        """Render the for-step expression as statement lines."""
        if step is None:
            return []
        sub = CodeGenerator(self.unit, self.op_counts)
        sub._loop_steps = []
        sub._gen_expr_stmt(step)
        return sub._emitter.lines

    def _gen_decl(self, stmt: ast.DeclStmt) -> None:
        e = self._emitter
        for decl in stmt.declarators:
            name = f"v_{decl.name}"
            base = stmt.base_type
            if decl.array_size is not None:
                dtype = self._np_dtype_expr(base)
                size = self._expr(decl.array_size)
                if stmt.address_space == "local":
                    # __local arrays are shared by the work group: the
                    # first item allocates, the rest reuse
                    e.emit(f"{name} = _wi.wg.setdefault("
                           f"{decl.name!r}, np.zeros({size}, "
                           f"dtype={dtype}))")
                else:
                    e.emit(f"{name} = np.zeros({size}, dtype={dtype})")
                continue
            if decl.init is not None:
                init = self._expr(decl.init)
                if isinstance(base, StructType) and not decl.pointer:
                    e.emit(f"{name} = _struct_copy({init})")
                elif isinstance(base, ScalarType) and not decl.pointer:
                    e.emit(f"{name} = {self._scalar_coerce(base, init)}")
                else:
                    e.emit(f"{name} = {init}")
            else:
                if isinstance(base, StructType) and not decl.pointer:
                    dtype = self._np_dtype_expr(base)
                    e.emit(f"{name} = np.zeros((), dtype={dtype})")
                elif isinstance(base, ScalarType) and base.is_float:
                    e.emit(f"{name} = 0.0")
                else:
                    e.emit(f"{name} = 0")

    def _gen_expr_stmt(self, expr: ast.Expr) -> None:
        e = self._emitter
        if isinstance(expr, ast.Assign):
            self._gen_assign(expr)
            return
        if isinstance(expr, (ast.PreIncDec, ast.PostIncDec)):
            target = self._lvalue(expr.operand)
            op = "+" if expr.op == "++" else "-"
            e.emit(f"{target} {op}= 1")
            return
        if isinstance(expr, ast.Binary) and expr.op == ",":
            self._gen_expr_stmt(expr.left)
            self._gen_expr_stmt(expr.right)
            return
        if isinstance(expr, ast.Call) and expr.name == "barrier":
            # work-group synchronization point: the body becomes a
            # generator and the launcher advances items in lockstep
            e.emit("yield")
            return
        e.emit(self._expr(expr))

    def _gen_assign(self, expr: ast.Assign) -> None:
        e = self._emitter
        target = self._lvalue(expr.target)
        value = self._expr(expr.value)
        if expr.op == "=":
            ttype = expr.target.ctype
            if isinstance(ttype, StructType):
                e.emit(f"{target} = _struct_copy({value})")
            elif (isinstance(expr.target, ast.Identifier)
                  and isinstance(ttype, ScalarType)):
                e.emit(f"{target} = {self._scalar_coerce(ttype, value)}")
            else:
                e.emit(f"{target} = {value}")
            return
        base_op = expr.op[:-1]
        ttype = expr.target.ctype
        if (base_op in ("/", "%") and ttype is not None
                and ttype.is_integer and expr.value.ctype is not None
                and expr.value.ctype.is_integer):
            helper = "_idiv" if base_op == "/" else "_imod"
            e.emit(f"{target} = {helper}({target}, {value})")
            return
        py_op = {"<<": "<<", ">>": ">>"}.get(base_op, base_op)
        e.emit(f"{target} {py_op}= {value}")

    # -- expressions -----------------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.IntLiteral):
            return repr(expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return repr(expr.value)
        if isinstance(expr, ast.BoolLiteral):
            return "True" if expr.value else "False"
        if isinstance(expr, ast.Identifier):
            return f"v_{expr.name}"
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Ternary):
            return (f"({self._expr(expr.then)} if {self._expr(expr.cond)} "
                    f"else {self._expr(expr.otherwise)})")
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Index):
            base_t = expr.base.ctype
            elem = (f"{self._expr(expr.base)}"
                    f"[{self._index_expr(expr.index)}]")
            return elem
        if isinstance(expr, ast.Member):
            return f"{self._expr(expr.base)}[{expr.member!r}]"
        if isinstance(expr, ast.Cast):
            return self._cast(expr)
        if isinstance(expr, (ast.Assign, ast.PreIncDec, ast.PostIncDec)):
            raise ClcError(
                "assignment/increment used as a value is not supported by "
                "this dialect; split the statement", expr.line, expr.col)
        raise ClcError(f"codegen: unsupported expression "
                       f"{type(expr).__name__}", expr.line, expr.col)

    def _index_expr(self, index: ast.Expr) -> str:
        """Indices must be Python ints (numpy rejects float indices)."""
        text = self._expr(index)
        if isinstance(index, (ast.IntLiteral, ast.Identifier)):
            return text if isinstance(index, ast.IntLiteral) else f"int({text})"
        return f"int({text})"

    def _unary(self, expr: ast.Unary) -> str:
        operand = self._expr(expr.operand)
        if expr.op == "!":
            return f"(not {operand})"
        if expr.op == "&":
            # Only reachable for atomics (checked by the type checker);
            # rendered as-is only for error clarity if it leaks through.
            raise ClcError("& outside an atomic call is not supported",
                           expr.line, expr.col)
        if expr.op == "*":
            return f"{operand}[0]"
        return f"({expr.op}{operand})"

    def _binary(self, expr: ast.Binary) -> str:
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        op = expr.op
        if op == ",":
            raise ClcError("comma expression used as a value is not "
                           "supported", expr.line, expr.col)
        lt, rt = expr.left.ctype, expr.right.ctype
        if op == "/" and lt is not None and rt is not None \
                and lt.is_integer and rt.is_integer:
            return f"_idiv({left}, {right})"
        if op == "%":
            return f"_imod({left}, {right})"
        if op in ("&&", "||"):
            py = "and" if op == "&&" else "or"
            return f"(bool({left}) {py} bool({right}))"
        if op in ("+",) and lt is not None and lt.is_pointer \
                and rt is not None and rt.is_integer:
            return f"{left}[int({right}):]"
        if op in ("+",) and rt is not None and rt.is_pointer \
                and lt is not None and lt.is_integer:
            return f"{right}[int({left}):]"
        if op == "-" and lt is not None and lt.is_pointer \
                and rt is not None and rt.is_integer:
            raise ClcError("negative pointer arithmetic is not supported",
                           expr.line, expr.col)
        return f"({left} {op} {right})"

    def _call(self, expr: ast.Call) -> str:
        name = expr.name
        if name in WORK_ITEM_FUNCTIONS:
            if name == "get_work_dim":
                return "len(_wi.gid)"
            if name == "get_num_groups":
                dim = self._expr(expr.args[0])
                return f"(_wi.gsz[int({dim})] // _wi.lsz[int({dim})])"
            dim = self._expr(expr.args[0])
            return f"{_WI_ACCESS[name]}[int({dim})]"
        if name in ATOMIC_FUNCTIONS:
            addr = expr.args[0]
            assert isinstance(addr, ast.Unary) and isinstance(
                addr.operand, ast.Index)
            arr = self._expr(addr.operand.base)
            idx = self._index_expr(addr.operand.index)
            rest = ", ".join(self._expr(a) for a in expr.args[1:])
            sep = ", " if rest else ""
            return f"{_ATOMIC_IMPLS[name]}({arr}, {idx}{sep}{rest})"
        if name == "barrier":
            return "None"
        args = ", ".join(self._expr(a) for a in expr.args)
        if name in self.user_functions:
            sep = ", " if args else ""
            return f"_fn_{name}({args}{sep}_wi=_wi)"
        return f"_bi_{name}({args})"

    def _cast(self, expr: ast.Cast) -> str:
        operand = self._expr(expr.operand)
        target = expr.target_type
        if isinstance(target, ScalarType):
            return self._scalar_coerce(target, operand)
        return operand  # pointer casts: no-op in the simulator

    @staticmethod
    def _scalar_coerce(ctype: ScalarType, value_expr: str) -> str:
        if ctype.name == "bool":
            return f"bool({value_expr})"
        if ctype.is_integer:
            return f"_as_int({value_expr})"
        return f"float({value_expr})"

    # -- lvalues -----------------------------------------------------------------------

    def _lvalue(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.Identifier):
            return f"v_{expr.name}"
        if isinstance(expr, ast.Index):
            return f"{self._expr(expr.base)}[{self._index_expr(expr.index)}]"
        if isinstance(expr, ast.Member):
            return f"{self._expr(expr.base)}[{expr.member!r}]"
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return f"{self._expr(expr.operand)}[0]"
        raise ClcError("unsupported assignment target", expr.line, expr.col)

    def _np_dtype_expr(self, ctype: CType) -> str:
        if isinstance(ctype, ScalarType):
            return f"np.dtype({ctype.np_dtype!r})"
        if isinstance(ctype, StructType):
            return f"np.dtype({_dtype_descr(ctype)!r})"
        raise ClcError(f"cannot allocate array of {ctype}")


def _dtype_descr(struct: StructType) -> list[tuple[str, str]]:
    descr = []
    for fname, ftype in struct.fields:
        if isinstance(ftype, ScalarType):
            descr.append((fname, ftype.np_dtype))
        else:
            raise ClcError(
                f"nested struct field {struct.name}.{fname} not supported "
                "for local arrays")
    return descr


def materialize(unit: ast.TranslationUnit, op_counts: dict[str, float],
                python_source: str) -> CompiledUnit:
    """Exec already-generated Python source and build the
    :class:`CompiledUnit` records.

    Split out of :meth:`CodeGenerator.generate` so the on-disk compile
    cache (:mod:`repro.clc.cache`) can rebuild a unit from stored
    Python source without re-running parse/typecheck/emit.
    """
    namespace: dict[str, Any] = {
        "np": np,
        "WorkItem": WorkItem,
        "_idiv": _idiv, "_imod": _imod, "_as_int": _as_int,
        "_struct_copy": _struct_copy,
        "_atomic_add": _atomic_add, "_atomic_sub": _atomic_sub,
        "_atomic_inc": _atomic_inc,
        "InterpError": InterpError,
    }
    for name, builtin in BUILTINS.items():
        if builtin.impl is not None:
            namespace[f"_bi_{name}"] = builtin.impl
    try:
        exec(compile(python_source, "<clc-codegen>", "exec"), namespace)
    except SyntaxError as exc:  # pragma: no cover - codegen bug guard
        raise ClcError(f"internal codegen error: {exc}\n{python_source}")
    compiled = CompiledUnit(python_source=python_source)
    for func in unit.functions:
        py_fn = namespace[f"_fn_{func.name}"]
        record = CompiledFunction(
            name=func.name, callable=py_fn,
            param_types=[p.ctype for p in func.params],
            return_type=func.return_type, is_kernel=func.is_kernel,
            op_count=op_counts.get(func.name, 1.0))
        compiled.functions[func.name] = record
        if func.is_kernel:
            launcher = namespace[f"_kernel_{func.name}"]
            compiled.kernels[func.name] = CompiledFunction(
                name=func.name, callable=launcher,
                param_types=record.param_types,
                return_type=record.return_type, is_kernel=True,
                op_count=record.op_count)
    return compiled


def generate(unit: ast.TranslationUnit,
             op_counts: dict[str, float]) -> CompiledUnit:
    """Generate and exec Python code for a type-checked unit."""
    return CodeGenerator(unit, op_counts).generate()
