"""AST node definitions for the mini OpenCL-C dialect.

Nodes carry source positions for error messages.  The type checker
annotates expression nodes in-place via their ``ctype`` attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.clc.types import CType


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)


# -- expressions -------------------------------------------------------------

@dataclass
class Expr(Node):
    #: filled in by the type checker
    ctype: Optional[CType] = field(default=None, kw_only=True, repr=False)


@dataclass
class IntLiteral(Expr):
    value: int = 0
    suffix: str = ""  # "u", "l", ...


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0
    suffix: str = ""  # "f" for float32


@dataclass
class BoolLiteral(Expr):
    value: bool = False


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""  # "-", "+", "!", "~", "&", "*"
    operand: Expr | None = None


@dataclass
class PreIncDec(Expr):
    op: str = ""  # "++" or "--"
    operand: Expr | None = None


@dataclass
class PostIncDec(Expr):
    op: str = ""
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Ternary(Expr):
    cond: Expr | None = None
    then: Expr | None = None
    otherwise: Expr | None = None


@dataclass
class Assign(Expr):
    op: str = "="  # "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="
    target: Expr | None = None
    value: Expr | None = None


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr | None = None
    index: Expr | None = None


@dataclass
class Member(Expr):
    base: Expr | None = None
    member: str = ""
    arrow: bool = False  # True for "->"


@dataclass
class Cast(Expr):
    target_type: CType | None = None
    operand: Expr | None = None


# -- statements ----------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class Declarator(Node):
    """One declared name within a declaration: ``x = init`` or ``arr[n]``."""

    name: str = ""
    init: Expr | None = None
    array_size: Expr | None = None  # fixed-size local array, if any
    pointer: bool = False


@dataclass
class DeclStmt(Stmt):
    base_type: CType | None = None
    declarators: list[Declarator] = field(default_factory=list)
    #: "local" for ``__local`` work-group-shared declarations
    address_space: str = ""


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class CompoundStmt(Stmt):
    body: list[Stmt] = field(default_factory=list)


@dataclass
class IfStmt(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    otherwise: Stmt | None = None


@dataclass
class ForStmt(Stmt):
    init: Stmt | None = None  # DeclStmt or ExprStmt or None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class DoWhileStmt(Stmt):
    body: Stmt | None = None
    cond: Expr | None = None


@dataclass
class ReturnStmt(Stmt):
    value: Expr | None = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


# -- top level -----------------------------------------------------------------

@dataclass
class Param(Node):
    name: str = ""
    ctype: CType | None = None
    address_space: str = ""  # "global", "local", "" (private)
    is_const: bool = False


@dataclass
class FunctionDef(Node):
    name: str = ""
    return_type: CType | None = None
    params: list[Param] = field(default_factory=list)
    body: CompoundStmt | None = None
    is_kernel: bool = False


@dataclass
class StructDef(Node):
    name: str = ""
    fields: list[Param] = field(default_factory=list)


@dataclass
class TranslationUnit(Node):
    structs: list[StructDef] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)
