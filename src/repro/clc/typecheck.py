"""Semantic analysis for the mini OpenCL-C dialect.

Walks the AST, resolves identifiers through lexically-scoped symbol
tables, annotates every expression node's ``ctype`` in place, and
rejects ill-typed programs.  Also derives a static per-work-item
operation-count estimate used by the device timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clc import astnodes as ast
from repro.clc.builtins import (ATOMIC_FUNCTIONS, BUILTINS,
                                builtin_result_type)
from repro.clc.types import (BOOL, CType, DOUBLE, FLOAT, INT, PointerType,
                             StructType, promote)
from repro.errors import TypeCheckError


@dataclass
class FunctionSignature:
    name: str
    return_type: CType
    param_types: list[CType]
    is_kernel: bool


@dataclass
class _Scope:
    parent: "_Scope | None" = None
    names: dict[str, CType] = field(default_factory=dict)

    def lookup(self, name: str) -> CType | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None

    def declare(self, name: str, ctype: CType, line: int,
                col: int) -> None:
        if name in self.names:
            raise TypeCheckError(f"redeclaration of {name!r}", line, col)
        self.names[name] = ctype


@dataclass
class _ArrayType(CType):
    """Local fixed-size array; decays to pointer-like indexing."""

    element: CType = None  # type: ignore[assignment]
    is_pointer = True  # indexable

    @property
    def pointee(self) -> CType:
        return self.element

    def __str__(self) -> str:  # pragma: no cover
        return f"{self.element}[]"


class TypeChecker:
    """Checks one translation unit; collects per-function signatures."""

    def __init__(self, unit: ast.TranslationUnit) -> None:
        self.unit = unit
        self.functions: dict[str, FunctionSignature] = {}
        #: static op-count estimate per function (per work item)
        self.op_counts: dict[str, float] = {}
        self._current_return: CType | None = None
        self._current_function: str | None = None
        self._in_kernel = False
        #: functions whose definitions have been fully checked; calls
        #: may only target these (single-pass C: no forward references,
        #: and OpenCL C forbids recursion)
        self._checked: set[str] = set()
        self._loop_depth = 0
        #: assumed trip count for statically-unknown loops (cost model only)
        self.loop_cost_multiplier = 16.0

    # -- entry point ---------------------------------------------------------

    def check(self) -> None:
        for func in self.unit.functions:
            if func.name in self.functions:
                raise TypeCheckError(f"redefinition of function "
                                     f"{func.name!r}", func.line, func.col)
            if func.name in BUILTINS:
                raise TypeCheckError(
                    f"function {func.name!r} shadows a builtin",
                    func.line, func.col)
            self.functions[func.name] = FunctionSignature(
                name=func.name, return_type=func.return_type,
                param_types=[p.ctype for p in func.params],
                is_kernel=func.is_kernel)
        for func in self.unit.functions:
            self.op_counts[func.name] = self._check_function(func)
            self._checked.add(func.name)

    # -- functions -----------------------------------------------------------

    def _check_function(self, func: ast.FunctionDef) -> float:
        scope = _Scope()
        for param in func.params:
            if param.ctype.is_void:
                raise TypeCheckError(f"parameter {param.name!r} has type "
                                     "void", param.line, param.col)
            scope.declare(param.name, param.ctype, param.line, param.col)
        if func.is_kernel and not func.return_type.is_void:
            raise TypeCheckError("kernel functions must return void",
                                 func.line, func.col)
        self._current_return = func.return_type
        self._current_function = func.name
        self._in_kernel = func.is_kernel
        # the body's outermost block shares the parameter scope, as in
        # C: locals may not redeclare parameters
        cost = sum(self._check_stmt(s, scope)
                   for s in (func.body.body if func.body else []))
        self._current_return = None
        self._current_function = None
        self._in_kernel = False
        return cost

    # -- statements (return estimated op cost) --------------------------------

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> float:
        if isinstance(stmt, ast.CompoundStmt):
            inner = _Scope(parent=scope)
            return sum(self._check_stmt(s, inner) for s in stmt.body)
        if isinstance(stmt, ast.DeclStmt):
            return self._check_decl(stmt, scope)
        if isinstance(stmt, ast.ExprStmt):
            return self._check_expr(stmt.expr, scope)[1]
        if isinstance(stmt, ast.IfStmt):
            _, ccost = self._check_expr(stmt.cond, scope)
            tcost = self._check_stmt(stmt.then, scope)
            ecost = (self._check_stmt(stmt.otherwise, scope)
                     if stmt.otherwise else 0.0)
            return ccost + max(tcost, ecost)
        if isinstance(stmt, ast.ForStmt):
            inner = _Scope(parent=scope)
            icost = self._check_stmt(stmt.init, inner) if stmt.init else 0.0
            ccost = (self._check_expr(stmt.cond, inner)[1]
                     if stmt.cond else 0.0)
            scost = (self._check_expr(stmt.step, inner)[1]
                     if stmt.step else 0.0)
            self._loop_depth += 1
            bcost = self._check_stmt(stmt.body, inner)
            self._loop_depth -= 1
            return icost + self.loop_cost_multiplier * (ccost + scost
                                                        + bcost)
        if isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
            ccost = self._check_expr(stmt.cond, scope)[1]
            self._loop_depth += 1
            bcost = self._check_stmt(stmt.body, scope)
            self._loop_depth -= 1
            return self.loop_cost_multiplier * (ccost + bcost)
        if isinstance(stmt, ast.ReturnStmt):
            assert self._current_return is not None
            if stmt.value is None:
                if not self._current_return.is_void:
                    raise TypeCheckError("missing return value", stmt.line,
                                         stmt.col)
                return 0.0
            vtype, vcost = self._check_expr(stmt.value, scope)
            self._require_convertible(vtype, self._current_return,
                                      stmt.line, stmt.col)
            return vcost
        if isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            if self._loop_depth == 0:
                raise TypeCheckError("break/continue outside loop",
                                     stmt.line, stmt.col)
            return 0.0
        raise TypeCheckError(f"unsupported statement {type(stmt).__name__}",
                             stmt.line, stmt.col)

    def _check_decl(self, stmt: ast.DeclStmt, scope: _Scope) -> float:
        cost = 0.0
        if stmt.address_space == "local":
            if not self._in_kernel:
                raise TypeCheckError(
                    "__local declarations are only allowed inside "
                    "kernel functions", stmt.line, stmt.col)
            for decl in stmt.declarators:
                if decl.array_size is None:
                    raise TypeCheckError(
                        "__local variables must be fixed-size arrays",
                        decl.line, decl.col)
                if decl.init is not None:
                    raise TypeCheckError(
                        "__local arrays cannot have initializers",
                        decl.line, decl.col)
        for decl in stmt.declarators:
            ctype: CType = stmt.base_type
            if decl.pointer:
                ctype = PointerType(ctype, "private")
            if decl.array_size is not None:
                size_type, c = self._check_expr(decl.array_size, scope)
                cost += c
                if not size_type.is_integer:
                    raise TypeCheckError("array size must be an integer",
                                         decl.line, decl.col)
                ctype = _ArrayType(element=ctype)
            if ctype.is_void:
                raise TypeCheckError(f"variable {decl.name!r} has type void",
                                     decl.line, decl.col)
            if decl.init is not None:
                itype, c = self._check_expr(decl.init, scope)
                cost += c + 1.0
                self._require_convertible(itype, ctype, decl.line, decl.col)
            scope.declare(decl.name, ctype, decl.line, decl.col)
        return cost

    # -- expressions (return (type, op cost)) ----------------------------------

    def _check_expr(self, expr: ast.Expr,
                    scope: _Scope) -> tuple[CType, float]:
        ctype, cost = self._check_expr_inner(expr, scope)
        expr.ctype = ctype
        return ctype, cost

    def _check_expr_inner(self, expr: ast.Expr,
                          scope: _Scope) -> tuple[CType, float]:
        if isinstance(expr, ast.IntLiteral):
            return (INT, 0.0)
        if isinstance(expr, ast.FloatLiteral):
            return (FLOAT if expr.suffix == "f" else DOUBLE, 0.0)
        if isinstance(expr, ast.BoolLiteral):
            return (BOOL, 0.0)
        if isinstance(expr, ast.Identifier):
            ctype = scope.lookup(expr.name)
            if ctype is None:
                raise TypeCheckError(f"undeclared identifier {expr.name!r}",
                                     expr.line, expr.col)
            return (ctype, 0.0)
        if isinstance(expr, ast.Unary):
            return self._check_unary(expr, scope)
        if isinstance(expr, (ast.PreIncDec, ast.PostIncDec)):
            otype, ocost = self._check_expr(expr.operand, scope)
            self._require_lvalue(expr.operand)
            if not otype.is_scalar:
                raise TypeCheckError("++/-- requires a scalar", expr.line,
                                     expr.col)
            return (otype, ocost + 1.0)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr, scope)
        if isinstance(expr, ast.Ternary):
            _, ccost = self._check_expr(expr.cond, scope)
            ttype, tcost = self._check_expr(expr.then, scope)
            etype, ecost = self._check_expr(expr.otherwise, scope)
            if ttype.is_scalar and etype.is_scalar:
                result = promote(ttype, etype)
            elif ttype == etype:
                result = ttype
            else:
                raise TypeCheckError("incompatible ternary branches",
                                     expr.line, expr.col)
            return (result, ccost + max(tcost, ecost) + 1.0)
        if isinstance(expr, ast.Assign):
            return self._check_assign(expr, scope)
        if isinstance(expr, ast.Call):
            return self._check_call(expr, scope)
        if isinstance(expr, ast.Index):
            btype, bcost = self._check_expr(expr.base, scope)
            itype, icost = self._check_expr(expr.index, scope)
            if not btype.is_pointer:
                raise TypeCheckError("indexing a non-pointer", expr.line,
                                     expr.col)
            if not itype.is_integer:
                raise TypeCheckError("array index must be an integer",
                                     expr.line, expr.col)
            return (btype.pointee, bcost + icost + 1.0)  # type: ignore[attr-defined]
        if isinstance(expr, ast.Member):
            btype, bcost = self._check_expr(expr.base, scope)
            if expr.arrow:
                if not btype.is_pointer:
                    raise TypeCheckError("-> on a non-pointer", expr.line,
                                         expr.col)
                btype = btype.pointee  # type: ignore[attr-defined]
            if not isinstance(btype, StructType):
                raise TypeCheckError(
                    f"member access on non-struct type {btype}", expr.line,
                    expr.col)
            ftype = btype.field_type(expr.member)
            if ftype is None:
                raise TypeCheckError(
                    f"struct {btype.name} has no field {expr.member!r}",
                    expr.line, expr.col)
            return (ftype, bcost + 1.0)
        if isinstance(expr, ast.Cast):
            otype, ocost = self._check_expr(expr.operand, scope)
            target = expr.target_type
            if target.is_scalar and not otype.is_scalar:
                raise TypeCheckError(f"cannot cast {otype} to {target}",
                                     expr.line, expr.col)
            return (target, ocost + 0.5)
        raise TypeCheckError(f"unsupported expression "
                             f"{type(expr).__name__}", expr.line, expr.col)

    def _check_unary(self, expr: ast.Unary,
                     scope: _Scope) -> tuple[CType, float]:
        otype, ocost = self._check_expr(expr.operand, scope)
        op = expr.op
        if op in ("-", "+"):
            if not otype.is_scalar:
                raise TypeCheckError(f"unary {op} on non-scalar", expr.line,
                                     expr.col)
            return (otype, ocost + 1.0)
        if op == "!":
            return (BOOL, ocost + 1.0)
        if op == "~":
            if not otype.is_integer:
                raise TypeCheckError("~ requires an integer", expr.line,
                                     expr.col)
            return (otype, ocost + 1.0)
        if op == "&":
            # Address-of is supported only where atomics need it:
            # &buffer[i] and &variable.
            if not isinstance(expr.operand, (ast.Index, ast.Identifier)):
                raise TypeCheckError(
                    "& is only supported on identifiers and indexed "
                    "elements", expr.line, expr.col)
            return (PointerType(otype, "global"), ocost)
        if op == "*":
            if not otype.is_pointer:
                raise TypeCheckError("dereferencing a non-pointer",
                                     expr.line, expr.col)
            return (otype.pointee, ocost + 1.0)  # type: ignore[attr-defined]
        raise TypeCheckError(f"unsupported unary operator {op!r}",
                             expr.line, expr.col)

    def _check_binary(self, expr: ast.Binary,
                      scope: _Scope) -> tuple[CType, float]:
        ltype, lcost = self._check_expr(expr.left, scope)
        rtype, rcost = self._check_expr(expr.right, scope)
        op = expr.op
        cost = lcost + rcost + 1.0
        if op == ",":
            return (rtype, cost)
        if op in ("&&", "||"):
            return (BOOL, cost)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if ltype.is_scalar and rtype.is_scalar:
                return (BOOL, cost)
            if ltype.is_pointer and rtype.is_pointer:
                return (BOOL, cost)
            raise TypeCheckError(f"invalid comparison {ltype} {op} {rtype}",
                                 expr.line, expr.col)
        if op in ("<<", ">>", "&", "|", "^", "%"):
            if not (ltype.is_integer and rtype.is_integer):
                raise TypeCheckError(
                    f"operator {op} requires integers, got {ltype} and "
                    f"{rtype}", expr.line, expr.col)
            return (promote(ltype, rtype), cost)
        if op in ("+", "-"):
            # pointer arithmetic: pointer +/- integer
            if ltype.is_pointer and rtype.is_integer:
                return (ltype, cost)
            if op == "+" and ltype.is_integer and rtype.is_pointer:
                return (rtype, cost)
        if op in ("+", "-", "*", "/"):
            if ltype.is_scalar and rtype.is_scalar:
                result = promote(ltype, rtype)
                if op == "/":
                    cost += 3.0
                return (result, cost)
            raise TypeCheckError(f"invalid operands to {op}: {ltype} and "
                                 f"{rtype}", expr.line, expr.col)
        raise TypeCheckError(f"unsupported binary operator {op!r}",
                             expr.line, expr.col)

    def _check_assign(self, expr: ast.Assign,
                      scope: _Scope) -> tuple[CType, float]:
        ttype, tcost = self._check_expr(expr.target, scope)
        vtype, vcost = self._check_expr(expr.value, scope)
        self._require_lvalue(expr.target)
        if expr.op != "=":
            base_op = expr.op[:-1]
            if base_op in ("<<", ">>", "&", "|", "^", "%"):
                if not (ttype.is_integer and vtype.is_integer):
                    raise TypeCheckError(
                        f"operator {expr.op} requires integers", expr.line,
                        expr.col)
            elif not (ttype.is_scalar and vtype.is_scalar):
                raise TypeCheckError(
                    f"operator {expr.op} requires scalars", expr.line,
                    expr.col)
        else:
            self._require_convertible(vtype, ttype, expr.line, expr.col)
        return (ttype, tcost + vcost + 1.0)

    def _check_call(self, expr: ast.Call,
                    scope: _Scope) -> tuple[CType, float]:
        arg_types: list[CType] = []
        cost = 0.0
        for arg in expr.args:
            atype, acost = self._check_expr(arg, scope)
            arg_types.append(atype)
            cost += acost
        sig = self.functions.get(expr.name)
        if sig is not None:
            if expr.name == self._current_function:
                raise TypeCheckError(
                    f"recursive call to {expr.name!r} (OpenCL C forbids "
                    "recursion)", expr.line, expr.col)
            if expr.name not in self._checked:
                raise TypeCheckError(
                    f"call to {expr.name!r} before its definition "
                    "(no forward references)", expr.line, expr.col)
            if len(arg_types) != len(sig.param_types):
                raise TypeCheckError(
                    f"{expr.name} expects {len(sig.param_types)} "
                    f"argument(s), got {len(arg_types)}", expr.line,
                    expr.col)
            for atype, ptype in zip(arg_types, sig.param_types):
                self._require_convertible(atype, ptype, expr.line, expr.col)
            callee_cost = self.op_counts.get(expr.name, 8.0)
            return (sig.return_type, cost + callee_cost)
        builtin = BUILTINS.get(expr.name)
        if builtin is None:
            raise TypeCheckError(f"call to unknown function {expr.name!r}",
                                 expr.line, expr.col)
        if expr.name == "barrier" and not self._in_kernel:
            raise TypeCheckError(
                "barrier() may only be called from a kernel function "
                "(the simulator synchronizes work items per launch)",
                expr.line, expr.col)
        result = builtin_result_type(expr.name, arg_types, expr.line,
                                     expr.col)
        if expr.name in ATOMIC_FUNCTIONS:
            first = expr.args[0]
            if not (isinstance(first, ast.Unary) and first.op == "&"
                    and isinstance(first.operand, ast.Index)):
                raise TypeCheckError(
                    f"{expr.name} expects &buffer[index] as its first "
                    "argument", expr.line, expr.col)
        return (result, cost + builtin.op_cost)

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _require_lvalue(expr: ast.Expr) -> None:
        if isinstance(expr, (ast.Identifier, ast.Index, ast.Member)):
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return
        raise TypeCheckError("assignment target is not an lvalue",
                             expr.line, expr.col)

    @staticmethod
    def _require_convertible(src: CType, dst: CType, line: int,
                             col: int) -> None:
        if src.is_scalar and dst.is_scalar:
            return
        if src.is_pointer and dst.is_pointer:
            return
        if src == dst:
            return
        raise TypeCheckError(f"cannot convert {src} to {dst}", line, col)


def typecheck(unit: ast.TranslationUnit) -> TypeChecker:
    """Type-check *unit*; returns the checker with signatures/op counts."""
    checker = TypeChecker(unit)
    checker.check()
    return checker
