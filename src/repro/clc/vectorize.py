"""Vectorized evaluation of straight-line user functions.

Skeleton user functions are usually tiny, branch-light elementwise
functions (the paper's saxpy, image update, etc.).  For those, running
the per-work-item Python path would dominate simulation wall time, so
this module evaluates the function body directly over whole numpy
arrays: declarations and assignments become array expressions, ternaries
become ``np.where``, and reads through pointer arguments become fancy
indexing.

A function is vectorizable when its body consists only of scalar
declarations-with-initializer, assignments to scalar locals, and a final
``return`` — no loops, no if statements, no pointer writes, no calls to
other user functions.  The verdict comes from the static-analysis
subsystem (:func:`repro.clc.analysis.access.vectorize_blockers`), which
classifies every function anyway; :func:`try_vectorize` returns ``None``
when the classifier lists any blocker and the caller falls back to the
per-item path.
"""

from __future__ import annotations

import operator
from typing import Callable

import numpy as np

from repro.clc import astnodes as ast
from repro.clc.analysis.access import vectorize_blockers
from repro.clc.builtins import BUILTINS
from repro.clc.types import ScalarType


def try_vectorize(func: ast.FunctionDef) -> Callable | None:
    """Build a vectorized evaluator for *func*, or return ``None``.

    The returned callable takes one positional argument per C parameter
    — numpy arrays for elementwise scalar parameters (all of equal
    length), scalars for scalar "additional arguments", and numpy arrays
    for pointer parameters — plus an optional ``_element_index`` array
    supplying the value of ``get_global_id(0)`` per element.  It returns
    the function's result as an array.
    """
    if vectorize_blockers(func):
        return None
    return _Vectorizer(func).build()


class _Vectorizer:
    def __init__(self, func: ast.FunctionDef) -> None:
        self.func = func

    # -- evaluation ----------------------------------------------------------

    def build(self) -> Callable:
        func = self.func
        param_names = [p.name for p in func.params]

        def evaluate(*args, _element_index: np.ndarray | None = None):
            if len(args) != len(param_names):
                raise TypeError(
                    f"{func.name} expects {len(param_names)} arguments, "
                    f"got {len(args)}")
            env: dict[str, object] = dict(zip(param_names, args))
            env["__gid__"] = _element_index
            result = None
            for stmt in func.body.body:  # type: ignore[union-attr]
                if isinstance(stmt, ast.DeclStmt):
                    for decl in stmt.declarators:
                        env[decl.name] = (_eval(decl.init, env)
                                          if decl.init is not None else 0)
                elif isinstance(stmt, ast.ExprStmt):
                    assign = stmt.expr
                    assert isinstance(assign, ast.Assign)
                    assert isinstance(assign.target, ast.Identifier)
                    value = _eval(assign.value, env)
                    name = assign.target.name
                    if assign.op == "=":
                        env[name] = value
                    else:
                        env[name] = _typed_binop(
                            assign.op[:-1], env[name], value,
                            assign.target.ctype, assign.value.ctype)
                elif isinstance(stmt, ast.ReturnStmt):
                    result = _eval(stmt.value, env)
                    break
            return result

        evaluate.__name__ = f"vectorized_{func.name}"
        return evaluate


_CMP = {"==": operator.eq, "!=": operator.ne,
        "<": operator.lt, ">": operator.gt,
        "<=": operator.le, ">=": operator.ge}


def _typed_binop(op: str, left, right, left_type, right_type):
    """Apply *op* honouring the operands' C types.

    Integer ``/`` is C truncating division — plain ``left / right``
    would produce floats (this bit compound ``/=`` assignments, which
    used to skip the typed lowering entirely).
    """
    if op == "/" and left_type is not None and left_type.is_integer \
            and right_type is not None and right_type.is_integer:
        q = np.floor_divide(np.abs(left), np.abs(right))
        return np.where(np.logical_xor(np.asarray(left) < 0,
                                       np.asarray(right) < 0), -q, q)
    return _apply_binop(op, left, right)


def _apply_binop(op: str, left, right):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right
    if op == "%":
        return np.fmod(left, right)
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return left << right
    if op == ">>":
        return left >> right
    raise ValueError(f"unsupported operator {op!r}")


def _eval(expr: ast.Expr, env: dict[str, object]):
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.FloatLiteral):
        return expr.value
    if isinstance(expr, ast.BoolLiteral):
        return expr.value
    if isinstance(expr, ast.Identifier):
        return env[expr.name]
    if isinstance(expr, ast.Unary):
        value = _eval(expr.operand, env)
        if expr.op == "-":
            return -value
        if expr.op == "+":
            return +value
        if expr.op == "!":
            return np.logical_not(value)
        if expr.op == "~":
            return np.invert(value)
        raise ValueError(f"unsupported unary {expr.op}")
    if isinstance(expr, ast.Binary):
        op = expr.op
        left = _eval(expr.left, env)
        right = _eval(expr.right, env)
        if op in ("&&", "||"):
            fn = np.logical_and if op == "&&" else np.logical_or
            return fn(left, right)
        if op in _CMP:
            return _CMP[op](left, right)
        return _typed_binop(op, left, right, expr.left.ctype,
                            expr.right.ctype)
    if isinstance(expr, ast.Ternary):
        cond = _eval(expr.cond, env)
        then = _eval(expr.then, env)
        otherwise = _eval(expr.otherwise, env)
        return np.where(cond, then, otherwise)
    if isinstance(expr, ast.Cast):
        value = _eval(expr.operand, env)
        target = expr.target_type
        if isinstance(target, ScalarType):
            dtype = target.dtype()
            arr = np.asarray(value)
            if target.is_integer and arr.dtype.kind == "f":
                return np.trunc(arr).astype(dtype)
            return arr.astype(dtype)
        return value
    if isinstance(expr, ast.Index):
        base = _eval(expr.base, env)
        index = _eval(expr.index, env)
        idx = np.asarray(index)
        if idx.dtype.kind == "f":
            idx = np.trunc(idx).astype(np.int64)
        return np.asarray(base)[idx]
    if isinstance(expr, ast.Member):
        base = _eval(expr.base, env)
        return np.asarray(base)[expr.member]
    if isinstance(expr, ast.Call):
        if expr.name == "get_global_id":
            gid = env.get("__gid__")
            if gid is None:
                raise ValueError(
                    "get_global_id used but no element index supplied")
            return gid
        builtin = BUILTINS[expr.name]
        args = [_eval(a, env) for a in expr.args]
        return builtin.impl(*args)
    raise ValueError(f"unsupported expression {type(expr).__name__}")
