"""Type system for the mini OpenCL-C dialect.

The dialect supports the scalar types the paper's kernels need, pointers
into ``__global`` memory, and plain-old-data struct types (used by the
OSEM kernels for event/path records).  Types are interned value objects;
equality is structural.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class CType:
    """Base class for all types in the dialect."""

    #: True for integer scalar types.
    is_integer = False
    #: True for floating scalar types.
    is_float = False
    is_scalar = False
    is_pointer = False
    is_struct = False
    is_void = False


@dataclass(frozen=True)
class ScalarType(CType):
    """A scalar type such as ``int`` or ``float``."""

    name: str
    np_dtype: str
    integer: bool
    signed: bool = True
    rank: int = 0  # promotion rank; higher wins

    is_scalar = True

    @property
    def is_integer(self) -> bool:  # type: ignore[override]
        return self.integer

    @property
    def is_float(self) -> bool:  # type: ignore[override]
        return not self.integer

    def dtype(self) -> np.dtype:
        return np.dtype(self.np_dtype)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class VoidType(CType):
    is_void = True

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class PointerType(CType):
    """Pointer to global (or local) memory of *pointee* type."""

    pointee: CType
    address_space: str = "global"

    is_pointer = True

    def __str__(self) -> str:
        return f"__{self.address_space} {self.pointee}*"


@dataclass(frozen=True)
class StructType(CType):
    """A POD struct; fields are (name, scalar type) pairs, in order."""

    name: str
    fields: tuple[tuple[str, CType], ...] = field(default_factory=tuple)

    is_struct = True

    def field_type(self, fname: str) -> CType | None:
        for n, t in self.fields:
            if n == fname:
                return t
        return None

    def dtype(self) -> np.dtype:
        """Numpy structured dtype laying out this struct."""
        parts = []
        for fname, ftype in self.fields:
            if isinstance(ftype, ScalarType):
                parts.append((fname, ftype.np_dtype))
            elif isinstance(ftype, StructType):
                parts.append((fname, ftype.dtype()))
            else:
                raise TypeError(
                    f"struct field {self.name}.{fname} has unsupported "
                    f"type {ftype}")
        return np.dtype(parts)

    def __str__(self) -> str:
        return f"struct {self.name}"


# -- the scalar type table ---------------------------------------------------

BOOL = ScalarType("bool", "bool", integer=True, signed=False, rank=0)
CHAR = ScalarType("char", "int8", integer=True, rank=1)
UCHAR = ScalarType("uchar", "uint8", integer=True, signed=False, rank=1)
SHORT = ScalarType("short", "int16", integer=True, rank=2)
USHORT = ScalarType("ushort", "uint16", integer=True, signed=False, rank=2)
INT = ScalarType("int", "int32", integer=True, rank=3)
UINT = ScalarType("uint", "uint32", integer=True, signed=False, rank=3)
LONG = ScalarType("long", "int64", integer=True, rank=4)
ULONG = ScalarType("ulong", "uint64", integer=True, signed=False, rank=4)
SIZE_T = ScalarType("size_t", "uint64", integer=True, signed=False, rank=4)
FLOAT = ScalarType("float", "float32", integer=False, rank=5)
DOUBLE = ScalarType("double", "float64", integer=False, rank=6)
VOID = VoidType()

SCALAR_TYPES: dict[str, ScalarType] = {
    t.name: t
    for t in (BOOL, CHAR, UCHAR, SHORT, USHORT, INT, UINT, LONG, ULONG,
              SIZE_T, FLOAT, DOUBLE)
}

#: Type-name keywords recognized by the lexer/parser (incl. void).
TYPE_KEYWORDS = set(SCALAR_TYPES) | {"void", "struct"}


def promote(a: CType, b: CType) -> CType:
    """Usual arithmetic conversions (simplified): highest rank wins;
    unsigned wins ties, matching C's behaviour closely enough for the
    dialect's kernels."""
    if not (a.is_scalar and b.is_scalar):
        raise TypeError(f"cannot promote {a} and {b}")
    assert isinstance(a, ScalarType) and isinstance(b, ScalarType)
    if a.rank > b.rank:
        return a
    if b.rank > a.rank:
        return b
    if not a.signed:
        return a
    return b


def dtype_to_ctype(dtype: np.dtype) -> CType:
    """Map a numpy dtype to the dialect type used for buffers of it."""
    dtype = np.dtype(dtype)
    if dtype.fields:
        fields = tuple(
            (name, dtype_to_ctype(sub[0])) for name, sub in dtype.fields.items())
        return StructType(name=f"anon_{dtype.str}", fields=fields)
    table = {
        "bool": BOOL, "int8": CHAR, "uint8": UCHAR, "int16": SHORT,
        "uint16": USHORT, "int32": INT, "uint32": UINT, "int64": LONG,
        "uint64": ULONG, "float32": FLOAT, "float64": DOUBLE,
    }
    key = dtype.name
    if key not in table:
        raise TypeError(f"no dialect type for numpy dtype {dtype}")
    return table[key]
