"""The simulated machine: host + devices + shared virtual timeline."""

from __future__ import annotations

from repro.util.timeline import Timeline
from repro.ocl.device import Device
from repro.ocl.specs import DeviceSpec, TESLA_C1060, XEON_E5520
from repro.ocl.timing import API_CALL_OVERHEAD_S


class System:
    """One simulated stand-alone machine.

    Mirrors the paper's testbed by default: a host CPU driving
    ``num_gpus`` Tesla-class GPUs.  All runtimes (simulated OpenCL,
    simulated CUDA, SkelCL on top) that share a ``System`` share its
    virtual timeline, so their measurements are directly comparable.

    Args:
        num_gpus: number of GPU devices (the paper uses 1, 2, and 4).
        gpu_spec: hardware model for each GPU.
        cpu_device: also expose the host CPU as an OpenCL device
            (Section V heterogeneous experiments).
        runtime_efficiency: multiplicative efficiency of the runtime
            layer driving the devices — 1.0 for the OpenCL baseline; the
            CUDA runtime model passes ~1.2 (the paper measures CUDA
            about 20 % faster than OpenCL on the same hardware).
        timeline: share an existing virtual timeline (used by dOpenCL).
    """

    def __init__(self, num_gpus: int = 1,
                 gpu_spec: DeviceSpec = TESLA_C1060,
                 cpu_device: bool = False,
                 cpu_spec: DeviceSpec = XEON_E5520,
                 runtime_efficiency: float = 1.0,
                 timeline: Timeline | None = None,
                 name: str = "system") -> None:
        if num_gpus < 0:
            raise ValueError("num_gpus must be >= 0")
        self.name = name
        self.timeline = timeline if timeline is not None else Timeline()
        self.host_resource = self.timeline.resource(f"{name}.host")
        self.devices: list[Device] = []
        for i in range(num_gpus):
            spec = gpu_spec.with_efficiency(
                gpu_spec.runtime_efficiency * runtime_efficiency)
            self.devices.append(Device(self, i, spec))
        if cpu_device:
            spec = cpu_spec.with_efficiency(
                cpu_spec.runtime_efficiency * runtime_efficiency)
            self.devices.append(Device(self, len(self.devices), spec))

    # -- host virtual time ------------------------------------------------------

    def host_now(self) -> float:
        return self.host_resource.available_at

    def host_step(self, duration: float = API_CALL_OVERHEAD_S,
                  label: str = "api") -> float:
        """Charge host-side work; returns its completion time."""
        span = self.timeline.schedule(self.host_resource, duration,
                                      label=label)
        return span.end

    def host_wait_until(self, t: float) -> None:
        """Block the host until virtual time *t* (e.g. event.wait())."""
        if t > self.host_resource.available_at:
            self.timeline.schedule(self.host_resource,
                                   t - self.host_resource.available_at,
                                   label="wait")

    # -- convenience ---------------------------------------------------------------

    def gpu_devices(self) -> list[Device]:
        return [d for d in self.devices if d.device_type == "GPU"]

    def cpu_devices(self) -> list[Device]:
        return [d for d in self.devices if d.device_type == "CPU"]

    def __repr__(self) -> str:
        return (f"<System {self.name!r}: "
                f"{len(self.gpu_devices())} GPU(s), "
                f"{len(self.cpu_devices())} CPU device(s)>")
