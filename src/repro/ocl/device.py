"""Simulated OpenCL devices."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import OutOfResourcesError
from repro.ocl.specs import DeviceSpec

if TYPE_CHECKING:
    from repro.ocl.system import System


class Device:
    """One simulated OpenCL device.

    A device owns two virtual-time resources: its in-order execution
    engine (``dev{i}.queue``) and its host link (``dev{i}.link``), so
    kernel execution and host transfers of *different* devices overlap
    while work on one device serializes.
    """

    def __init__(self, system: "System", device_id: int,
                 spec: DeviceSpec) -> None:
        self.system = system
        self.id = device_id
        self.spec = spec
        self.allocated_bytes = 0
        self._queue_resource = system.timeline.resource(
            f"dev{device_id}.queue")
        self._link_resource = system.timeline.resource(
            f"dev{device_id}.link")

    # -- identity -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def device_type(self) -> str:
        return self.spec.device_type

    def __repr__(self) -> str:
        return f"<Device {self.id}: {self.name}>"

    # -- virtual-time resources ----------------------------------------------

    @property
    def queue_resource(self):
        return self._queue_resource

    @property
    def link_resource(self):
        return self._link_resource

    #: extra host->device command-forwarding latency (zero for local
    #: devices; dOpenCL's forwarded devices pay a network round trip)
    command_latency_s = 0.0

    def schedule_transfer(self, nbytes: int, ready_at: float,
                          label: str):
        """Occupy this device's transfer path; returns the span.

        Local devices use their PCIe link only; subclasses may chain
        additional hops (see
        :class:`repro.dopencl.client.ForwardedDevice`).
        """
        from repro.ocl.timing import transfer_duration
        duration = transfer_duration(self.spec, nbytes)
        return self.system.timeline.schedule(
            self._link_resource, duration, ready_at=ready_at, label=label)

    # -- memory accounting -----------------------------------------------------

    @property
    def free_mem_bytes(self) -> int:
        return self.spec.global_mem_bytes - self.allocated_bytes

    def allocate(self, nbytes: int) -> None:
        """Account for a device-memory allocation of *nbytes*."""
        if nbytes > self.free_mem_bytes:
            raise OutOfResourcesError(
                f"device {self.id} ({self.name}): cannot allocate "
                f"{nbytes} bytes; {self.free_mem_bytes} free of "
                f"{self.spec.global_mem_bytes}")
        self.allocated_bytes += nbytes

    def release(self, nbytes: int) -> None:
        self.allocated_bytes = max(0, self.allocated_bytes - nbytes)
