"""Simulated OpenCL programs: runtime-compiled source or native kernels.

Source programs go through the mini OpenCL-C compiler at ``build()``
time, exactly like the paper's workflow (SkelCL merges user code into
skeleton code and has the underlying OpenCL implementation compile it).

Source kernels execute through one of two engines — a simulator
implementation detail that never changes the virtual-time cost model:

- ``batch``: the whole-NDRange numpy transpiler
  (:mod:`repro.clc.batch`), the default whenever the engine-selection
  analysis finds no blockers;
- ``per-item``: the per-work-item interpreter loop, the fallback for
  kernels the batch engine cannot lower (every fallback carries a
  concrete reason in ``Kernel.engine_blockers``; see
  ``repro lint --engine-report``).

Native programs are the analogue of ``clCreateProgramWithBinary``: a
pre-built kernel implemented as a vectorized Python function — the
escape hatch from the era when every compiled kernel ran per work
item.  Their cost model parameters are declared explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro import clc
from repro.clc.types import PointerType, ScalarType, StructType
from repro.errors import BuildProgramFailure, ClcError
from repro.ocl.context import Context
from repro.ocl.timing import BUILD_TIME_S


@dataclass
class KernelParam:
    """Resolved parameter info used for argument binding."""

    name: str
    is_pointer: bool
    dtype: np.dtype | None  # element dtype for pointers, scalar dtype else
    #: ``__global const T*`` parameters don't invalidate other copies
    is_const: bool = False


@dataclass
class NativeKernelDef:
    """Descriptor of a pre-built (native) kernel.

    ``fn(args, global_size)`` receives, per parameter, either a typed
    numpy view of the bound buffer or the scalar value, and must write
    its outputs in place.

    ``ops_per_item``/``bytes_per_item`` feed the roofline cost model,
    standing in for the statically-estimated cost of compiled kernels.
    """

    name: str
    fn: Callable[[list, tuple], None]
    arg_dtypes: Sequence[np.dtype | None]
    ops_per_item: float
    bytes_per_item: float = 8.0
    #: indices of pointer arguments the kernel only reads
    const_args: frozenset = frozenset()


class Kernel:
    """A launchable kernel with OpenCL-style positional arguments."""

    def __init__(self, program: "Program", name: str,
                 params: list[KernelParam],
                 launcher: Callable, ops_per_item: float,
                 bytes_per_item: float, native: bool,
                 engine: str = "host",
                 engine_blockers: Sequence[str] = (),
                 tier_blockers: dict[str, list[str]] | None = None) -> None:
        self.program = program
        self.name = name
        self.params = params
        self.launcher = launcher
        self.ops_per_item = ops_per_item
        self.bytes_per_item = bytes_per_item
        self.native = native
        #: execution strategy: "native" (JIT-compiled C), "batch",
        #: "per-item", or "host" (pre-built Python kernels) — a
        #: simulator implementation detail; the virtual-time cost
        #: model is identical across engines
        self.engine = engine
        #: why the batch engine declined (empty when batch lowered it)
        self.engine_blockers = list(engine_blockers)
        #: per-tier blocker lists for every tier evaluated during
        #: selection: {"per-item": [], "batch": [...], "native": [...]}
        self.tier_blockers: dict[str, list[str]] = dict(tier_blockers or {})
        self._args: list = [None] * len(params)
        self._args_set = [False] * len(params)

    @property
    def context(self) -> Context:
        return self.program.context

    def set_arg(self, index: int, value) -> None:
        """Bind argument *index* (``clSetKernelArg``)."""
        if index < 0 or index >= len(self.params):
            from repro.errors import InvalidKernelArgs
            raise InvalidKernelArgs(
                f"kernel {self.name}: argument index {index} out of range "
                f"(expects {len(self.params)})")
        self._args[index] = value
        self._args_set[index] = True

    def set_args(self, *values) -> None:
        if len(values) != len(self.params):
            from repro.errors import InvalidKernelArgs
            raise InvalidKernelArgs(
                f"kernel {self.name} expects {len(self.params)} args, "
                f"got {len(values)}")
        for i, value in enumerate(values):
            self.set_arg(i, value)

    def bound_args(self) -> list:
        from repro.errors import InvalidKernelArgs
        missing = [p.name for p, ok in zip(self.params, self._args_set)
                   if not ok]
        if missing:
            raise InvalidKernelArgs(
                f"kernel {self.name}: unset argument(s) {missing}")
        return list(self._args)

    def __repr__(self) -> str:
        kind = "native" if self.native else "source"
        return f"<Kernel {self.name!r} ({kind}, {len(self.params)} params)>"


class Program:
    """A program created from dialect source (``clCreateProgramWithSource``)."""

    def __init__(self, context: Context, source: str) -> None:
        self.context = context
        self.source = source
        self.build_log = ""
        self._compiled: clc.Program | None = None

    def build(self) -> "Program":
        """Compile at runtime; charges build time to the virtual host.

        Raises :class:`BuildProgramFailure` with a build log on invalid
        source, mirroring ``CL_BUILD_PROGRAM_FAILURE``.
        """
        try:
            self._compiled = clc.compile_source(self.source)
        except ClcError as exc:
            self.build_log = str(exc)
            raise BuildProgramFailure(
                f"program build failed: {exc}", build_log=self.build_log
            ) from exc
        self.build_log = "build successful"
        self.context.system.host_step(BUILD_TIME_S, label="clBuildProgram")
        return self

    @property
    def compiled(self) -> clc.Program:
        if self._compiled is None:
            raise BuildProgramFailure(
                "program used before build() (CL_INVALID_PROGRAM_EXECUTABLE)")
        return self._compiled

    def kernel_names(self) -> list[str]:
        return sorted(self.compiled.kernels)

    def create_kernel(self, name: str, engine: str | None = None) -> Kernel:
        """Create a launchable kernel, selecting its execution engine.

        *engine* is ``"auto"`` (default: native when a C toolchain can
        lower the kernel, else batch, else the per-item launcher),
        ``"native"``, ``"batch"`` (both fail loudly when a structural
        blocker rules the tier out) or ``"per-item"``.  The
        ``REPRO_CLC_ENGINE`` environment variable overrides the
        default.  Engine choice is wall-clock only — the virtual-time
        cost model is charged identically either way.

        A merely *environmental* native blocker — no C compiler, no
        cffi (``[ND001]``) — degrades gracefully to the batch tier even
        for an explicit ``engine="native"`` request, recording the
        reason in ``Kernel.tier_blockers["native"]``; structural
        blockers on an explicit request raise
        :class:`BuildProgramFailure` (no silent wrong-tier selection).
        """
        compiled = self.compiled
        if name not in compiled.kernels:
            raise BuildProgramFailure(
                f"no kernel named {name!r}; available: "
                f"{sorted(compiled.kernels)}")
        if engine is None:
            engine = os.environ.get("REPRO_CLC_ENGINE", "auto")
        if engine not in ("auto", "native", "batch", "per-item"):
            raise BuildProgramFailure(
                f"unknown engine {engine!r} (expected auto, native, "
                "batch or per-item)")
        fn = compiled.kernels[name]
        func_def = next(f for f in compiled.unit.functions
                        if f.name == name)
        params = [_resolve_param(p.ctype, i, name, p.is_const, p.name)
                  for i, p in enumerate(func_def.params)]
        bytes_per_item = sum(p.dtype.itemsize for p in params
                             if p.is_pointer and p.dtype is not None)
        launcher = fn.callable
        chosen = "per-item"
        tier_blockers: dict[str, list[str]] = {"per-item": []}
        if engine in ("auto", "native"):
            native_k, nblockers = compiled.native_kernel(name)
            tier_blockers["native"] = nblockers
            if native_k is not None:
                launcher = native_k
                chosen = "native"
            elif engine == "native":
                structural = [b for b in nblockers
                              if "[ND001]" not in b]
                if structural:
                    raise BuildProgramFailure(
                        f"kernel {name!r}: native engine requested but "
                        "blocked:\n  " + "\n  ".join(structural))
                # toolchain-only blockers: graceful fallback to batch
        batch_blockers: list[str] = []
        if engine in ("auto", "native", "batch"):
            batch, batch_blockers = compiled.batch_kernel(name)
            tier_blockers["batch"] = batch_blockers
            if chosen != "native":
                if batch is not None:
                    launcher = batch
                    chosen = "batch"
                elif engine == "batch":
                    raise BuildProgramFailure(
                        f"kernel {name!r}: batch engine requested but "
                        "blocked:\n  " + "\n  ".join(batch_blockers))
        return Kernel(self, name, params, launcher,
                      ops_per_item=fn.op_count,
                      bytes_per_item=max(bytes_per_item, 4.0),
                      native=False, engine=chosen,
                      engine_blockers=batch_blockers,
                      tier_blockers=tier_blockers)


class NativeProgram:
    """A program backed by pre-built Python kernels (binary analogue)."""

    def __init__(self, context: Context,
                 kernels: Sequence[NativeKernelDef]) -> None:
        self.context = context
        self._defs = {k.name: k for k in kernels}

    def kernel_names(self) -> list[str]:
        return sorted(self._defs)

    def create_kernel(self, name: str) -> Kernel:
        if name not in self._defs:
            raise BuildProgramFailure(
                f"no native kernel named {name!r}; available: "
                f"{sorted(self._defs)}")
        kdef = self._defs[name]
        params = []
        for i, dtype in enumerate(kdef.arg_dtypes):
            if dtype is None:
                params.append(KernelParam(name=f"arg{i}", is_pointer=False,
                                          dtype=None))
            else:
                params.append(KernelParam(name=f"arg{i}", is_pointer=True,
                                          dtype=np.dtype(dtype),
                                          is_const=i in kdef.const_args))

        def launcher(args, gsize, lsize, _fn=kdef.fn):
            _fn(args, gsize)

        return Kernel(self, name, params, launcher,
                      ops_per_item=kdef.ops_per_item,
                      bytes_per_item=kdef.bytes_per_item, native=True)


def _resolve_param(ctype, index: int, kernel_name: str,
                   is_const: bool = False,
                   pname: str | None = None) -> KernelParam:
    name = pname or f"arg{index}"
    if isinstance(ctype, PointerType):
        pointee = ctype.pointee
        if isinstance(pointee, (ScalarType, StructType)):
            return KernelParam(name=name, is_pointer=True,
                               dtype=pointee.dtype(), is_const=is_const)
        raise BuildProgramFailure(
            f"kernel {kernel_name}: unsupported pointer parameter "
            f"{ctype}")
    if isinstance(ctype, ScalarType):
        return KernelParam(name=name, is_pointer=False,
                           dtype=ctype.dtype(), is_const=is_const)
    raise BuildProgramFailure(
        f"kernel {kernel_name}: unsupported parameter type {ctype}")
