"""Simulated OpenCL contexts."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import ContextMismatchError
from repro.ocl.device import Device

if TYPE_CHECKING:
    from repro.ocl.system import System


class Context:
    """A container tying devices, buffers, and programs together.

    All devices of a context must belong to the same system (dOpenCL's
    aggregated platform presents remote devices as local ones of the
    client system, so this invariant holds there too).
    """

    def __init__(self, devices: Iterable[Device]) -> None:
        self.devices: list[Device] = list(devices)
        if not self.devices:
            raise ContextMismatchError("context requires at least one device")
        systems = {d.system for d in self.devices}
        if len(systems) != 1:
            raise ContextMismatchError(
                "all devices of a context must belong to one system")
        self.system: "System" = self.devices[0].system
        self._buffers: list = []
        self._memory_stats = None

    @property
    def memory_stats(self):
        """Charged-vs-performed transfer accounting for this context
        (:class:`repro.ocl.memory.MemoryStats`)."""
        if self._memory_stats is None:
            from repro.ocl.memory import MemoryStats
            self._memory_stats = MemoryStats()
        return self._memory_stats

    def device_index(self, device: Device) -> int:
        try:
            return self.devices.index(device)
        except ValueError:
            raise ContextMismatchError(
                f"{device!r} is not part of this context") from None

    def check_device(self, device: Device) -> None:
        if device not in self.devices:
            raise ContextMismatchError(
                f"{device!r} is not part of this context")

    def _register_buffer(self, buf) -> None:
        self._buffers.append(buf)

    @property
    def buffers(self) -> list:
        return list(self._buffers)

    def __repr__(self) -> str:
        return f"<Context on {len(self.devices)} device(s)>"
