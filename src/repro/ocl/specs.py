"""Simulated device hardware specifications.

The catalog mirrors the paper's testbed (Section IV-C): an NVIDIA Tesla
S1070 server — four Tesla-class GPUs with 240 streaming processors and
4 GB memory each — driven by a quad-core Intel Xeon E5520 host.

The numbers feed the virtual-time cost model (:mod:`repro.ocl.timing`).
They are calibrated for *shape* fidelity (relative speeds, transfer/
compute ratios), not absolute agreement with the 2012 hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one simulated OpenCL device."""

    name: str
    device_type: str  # "GPU" or "CPU"
    compute_units: int
    clock_mhz: float
    #: simple arithmetic operations retired per compute unit per cycle
    ops_per_cu_per_cycle: float
    global_mem_bytes: int
    mem_bandwidth_gbs: float
    #: host<->device interconnect
    link_bandwidth_gbs: float
    link_latency_s: float
    kernel_launch_overhead_s: float
    #: multiplicative efficiency of the runtime driving this device
    #: (OpenCL baseline = 1.0; the CUDA runtime model raises it)
    runtime_efficiency: float = 1.0

    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6

    @property
    def ops_per_second(self) -> float:
        return (self.compute_units * self.clock_hz
                * self.ops_per_cu_per_cycle * self.runtime_efficiency)

    def with_efficiency(self, efficiency: float) -> "DeviceSpec":
        return replace(self, runtime_efficiency=efficiency)


#: One GPU of the paper's Tesla S1070 system (essentially a Tesla C1060):
#: 240 streaming processors grouped in 30 multiprocessors at 1.30 GHz,
#: 4 GB GDDR3 at ~102 GB/s, PCIe 2.0 x16 (~5.2 GB/s effective).
TESLA_C1060 = DeviceSpec(
    name="Tesla C1060 (simulated)",
    device_type="GPU",
    compute_units=30,
    clock_mhz=1296.0,
    ops_per_cu_per_cycle=8.0,
    global_mem_bytes=4 * 1024 ** 3,
    mem_bandwidth_gbs=102.0,
    link_bandwidth_gbs=5.2,
    link_latency_s=15e-6,
    kernel_launch_overhead_s=12e-6,
)

#: The paper's host CPU: quad-core Intel Xeon E5520 @ 2.26 GHz, 12 GB.
#: As an OpenCL device it is far slower than a GPU for data-parallel
#: kernels but has no PCIe hop (link models memcpy within host RAM).
XEON_E5520 = DeviceSpec(
    name="Intel Xeon E5520 (simulated)",
    device_type="CPU",
    compute_units=4,
    clock_mhz=2260.0,
    ops_per_cu_per_cycle=4.0,
    global_mem_bytes=12 * 1024 ** 3,
    mem_bandwidth_gbs=25.6,
    link_bandwidth_gbs=12.0,
    link_latency_s=1e-6,
    kernel_launch_overhead_s=3e-6,
)

#: A smaller consumer GPU used by heterogeneous-scheduling experiments.
GTX_480 = DeviceSpec(
    name="GeForce GTX 480 (simulated)",
    device_type="GPU",
    compute_units=15,
    clock_mhz=1401.0,
    ops_per_cu_per_cycle=32.0,
    global_mem_bytes=1536 * 1024 ** 2,
    mem_bandwidth_gbs=177.0,
    link_bandwidth_gbs=5.2,
    link_latency_s=15e-6,
    kernel_launch_overhead_s=10e-6,
)

CATALOG: dict[str, DeviceSpec] = {
    "tesla_c1060": TESLA_C1060,
    "xeon_e5520": XEON_E5520,
    "gtx_480": GTX_480,
}
