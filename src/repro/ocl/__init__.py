"""Simulated OpenCL substrate.

Faithful-to-the-API, simulated-in-time: real numerical results, virtual
clocks.  See DESIGN.md §5.1 and :mod:`repro.ocl.timing` for the cost
model, :mod:`repro.ocl.specs` for the hardware catalog mirroring the
paper's Tesla S1070 testbed.
"""

from repro.ocl.context import Context
from repro.ocl.device import Device
from repro.ocl.event import Event, wait_for_events
from repro.ocl.memory import (Buffer, MemoryStats, buffer_from_array,
                              lazy_memory_enabled, same_memory,
                              set_lazy_memory)
from repro.ocl.platform import Platform, create_system_platform
from repro.ocl.program import (Kernel, KernelParam, NativeKernelDef,
                               NativeProgram, Program)
from repro.ocl.queue import CommandQueue, create_queue
from repro.ocl.specs import (CATALOG, DeviceSpec, GTX_480, TESLA_C1060,
                             XEON_E5520)
from repro.ocl.system import System
from repro.ocl.timing import (API_CALL_OVERHEAD_S, BUILD_TIME_S, KernelCost,
                              kernel_duration, transfer_duration)

__all__ = [
    "System", "Platform", "Device", "Context", "CommandQueue", "Buffer",
    "Event", "Program", "NativeProgram", "NativeKernelDef", "Kernel",
    "KernelParam", "DeviceSpec", "KernelCost", "MemoryStats",
    "buffer_from_array", "wait_for_events", "create_system_platform",
    "create_queue",
    "lazy_memory_enabled", "set_lazy_memory", "same_memory",
    "kernel_duration", "transfer_duration",
    "TESLA_C1060", "XEON_E5520", "GTX_480", "CATALOG",
    "API_CALL_OVERHEAD_S", "BUILD_TIME_S",
]
