"""C-style OpenCL host API.

A thin functional facade over the object layer, mirroring the verbosity
of the real OpenCL host API.  The low-level baseline implementations
(the paper's "OpenCL versions") are written against this module, so the
Figure 4a lines-of-code comparison reflects the same boilerplate
obligations real OpenCL imposes: platform/device discovery, context and
queue setup, runtime kernel compilation, explicit buffer management and
transfers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ocl.context import Context
from repro.ocl.device import Device
from repro.ocl.event import Event
from repro.ocl.memory import Buffer
from repro.ocl.platform import Platform
from repro.ocl.program import Kernel, Program
from repro.ocl.queue import CommandQueue

CL_DEVICE_TYPE_GPU = "GPU"
CL_DEVICE_TYPE_CPU = "CPU"
CL_DEVICE_TYPE_ALL = "ALL"


def get_platform_ids(system_or_platform) -> list[Platform]:
    """Enumerate platforms (``clGetPlatformIDs``)."""
    if isinstance(system_or_platform, Platform):
        return [system_or_platform]
    return [Platform(system_or_platform)]


def get_device_ids(platform: Platform,
                   device_type: str = CL_DEVICE_TYPE_ALL) -> list[Device]:
    """Enumerate devices of a platform (``clGetDeviceIDs``)."""
    return platform.get_devices(device_type)


def create_context(devices: Sequence[Device]) -> Context:
    """Create a context (``clCreateContext``)."""
    return Context(devices)


def create_command_queue(context: Context, device: Device) -> CommandQueue:
    """Create an in-order queue (``clCreateCommandQueue``)."""
    return CommandQueue(context, device)


def create_buffer(context: Context, nbytes: int) -> Buffer:
    """Allocate a buffer object (``clCreateBuffer``)."""
    return Buffer(context, nbytes)


def create_program_with_source(context: Context, source: str) -> Program:
    """Create a program from source (``clCreateProgramWithSource``)."""
    return Program(context, source)


def build_program(program: Program) -> Program:
    """Compile the program at runtime (``clBuildProgram``)."""
    return program.build()


def create_kernel(program, name: str) -> Kernel:
    """Extract a kernel object (``clCreateKernel``)."""
    return program.create_kernel(name)


def set_kernel_arg(kernel: Kernel, index: int, value) -> None:
    """Bind one kernel argument (``clSetKernelArg``)."""
    kernel.set_arg(index, value)


def enqueue_write_buffer(queue: CommandQueue, buf: Buffer,
                         src: np.ndarray, offset_bytes: int = 0,
                         wait_for=None) -> Event:
    """Upload host memory to the device (``clEnqueueWriteBuffer``)."""
    return queue.enqueue_write_buffer(buf, src, offset_bytes, wait_for)


def enqueue_read_buffer(queue: CommandQueue, buf: Buffer, dst: np.ndarray,
                        offset_bytes: int = 0, wait_for=None) -> Event:
    """Download device memory to the host (``clEnqueueReadBuffer``)."""
    return queue.enqueue_read_buffer(buf, dst, offset_bytes, wait_for)


def enqueue_copy_buffer(queue: CommandQueue, src: Buffer, dst: Buffer,
                        src_offset: int = 0, dst_offset: int = 0,
                        nbytes: int | None = None, wait_for=None) -> Event:
    """Copy between buffers (``clEnqueueCopyBuffer``)."""
    return queue.enqueue_copy_buffer(src, dst, src_offset, dst_offset,
                                     nbytes, wait_for)


def enqueue_nd_range_kernel(queue: CommandQueue, kernel: Kernel,
                            global_size, local_size=None, wait_for=None,
                            **cost_overrides) -> Event:
    """Launch a kernel (``clEnqueueNDRangeKernel``)."""
    return queue.enqueue_nd_range_kernel(kernel, global_size, local_size,
                                         wait_for, **cost_overrides)


def finish(queue: CommandQueue) -> None:
    """Block until the queue drains (``clFinish``)."""
    queue.finish()


def release_mem_object(buf: Buffer) -> None:
    """Release a buffer (``clReleaseMemObject``)."""
    buf.release()
