"""Simulated OpenCL events with profiling info."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.util.timeline import VirtualSpan

if TYPE_CHECKING:
    from repro.ocl.system import System


class Event:
    """Completion handle for an enqueued command.

    ``profile_start``/``profile_end`` expose the command's virtual-time
    span like ``CL_PROFILING_COMMAND_START/END``; :meth:`wait` blocks
    the (virtual) host until completion.
    """

    def __init__(self, system: "System", span: VirtualSpan,
                 kind: str = "command") -> None:
        self._system = system
        self.span = span
        self.kind = kind

    @property
    def profile_start(self) -> float:
        return self.span.start

    @property
    def profile_end(self) -> float:
        return self.span.end

    @property
    def duration(self) -> float:
        return self.span.duration

    def wait(self) -> None:
        """Block the virtual host until this command completes."""
        self._system.host_wait_until(self.span.end)

    def is_complete_at(self, t: float) -> bool:
        return self.span.end <= t

    def __repr__(self) -> str:
        return (f"<Event {self.kind} [{self.span.start:.6f}, "
                f"{self.span.end:.6f}] on {self.span.resource}>")


def wait_for_events(events: list["Event"]) -> None:
    """Block the host until every event in *events* completes."""
    for event in events:
        event.wait()
