"""Virtual-time cost model for simulated devices.

Durations follow a simple roofline: a kernel takes
``launch_overhead + max(compute_time, memory_time)`` where compute time
is total simple-ops divided by the device's op throughput and memory
time is global-memory traffic divided by memory bandwidth.  Transfers
over the host link take ``latency + bytes / bandwidth``.

All constants live in :class:`repro.ocl.specs.DeviceSpec`; the model is
deliberately first-order — the reproduction targets the *shape* of the
paper's results (scaling across GPUs, CUDA-vs-OpenCL ratio, SkelCL
overhead), not the absolute 2012 numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ocl.specs import DeviceSpec


@dataclass(frozen=True)
class KernelCost:
    """Per-launch cost description supplied by the caller.

    Attributes:
        work_items: number of logical work items the launch stands for
            (after any paper-scale ``scale_factor`` has been applied).
        ops_per_item: simple-operation estimate per work item (the
            compiler's static estimate, or a native kernel's declared
            cost).
        bytes_per_item: global-memory traffic per work item in bytes.
    """

    work_items: float
    ops_per_item: float
    bytes_per_item: float = 8.0


def kernel_duration(spec: DeviceSpec, cost: KernelCost) -> float:
    """Modelled execution time of one kernel launch on *spec*."""
    if cost.work_items <= 0:
        return spec.kernel_launch_overhead_s
    total_ops = cost.work_items * max(cost.ops_per_item, 1.0)
    compute_s = total_ops / spec.ops_per_second
    total_bytes = cost.work_items * max(cost.bytes_per_item, 0.0)
    memory_s = total_bytes / (spec.mem_bandwidth_gbs * 1e9
                              * spec.runtime_efficiency)
    return spec.kernel_launch_overhead_s + max(compute_s, memory_s)


def transfer_duration(spec: DeviceSpec, nbytes: int) -> float:
    """Modelled host<->device transfer time over the device's link."""
    if nbytes < 0:
        raise ValueError("negative transfer size")
    return spec.link_latency_s + nbytes / (spec.link_bandwidth_gbs * 1e9)


#: modelled host-side cost of one runtime API call (enqueue, set-arg...)
API_CALL_OVERHEAD_S = 2e-6

#: modelled runtime source-compilation time per kernel source build
#: (the paper excludes compile time from its measurements; we model it
#: so "compile once, excluded from subset iterations" is observable)
BUILD_TIME_S = 80e-3
