"""Simulated in-order command queues and the enqueue commands.

Every enqueue charges a small host-side API overhead, occupies the
right virtual resource (the device's link for transfers, its execution
engine for kernels), chains dependencies through buffer ready-times,
and executes the data movement / computation eagerly so results are
real while time is modelled.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import InterpError, InvalidCommand, InvalidKernelArgs
from repro.ocl.context import Context
from repro.ocl.device import Device
from repro.ocl.event import Event
from repro.ocl.memory import Buffer
from repro.ocl.program import Kernel
from repro.ocl.timing import KernelCost, kernel_duration

_sanitizer = None


def _get_sanitizer():
    """The runtime sanitizer module, imported on first launch.

    Lazy because :mod:`repro.analysis` sits above :mod:`repro.ocl` in
    the layering; importing it at module load would be cyclic.
    """
    global _sanitizer
    if _sanitizer is None:
        from repro.analysis import sanitizer
        _sanitizer = sanitizer
    return _sanitizer


class CommandQueue:
    """An in-order command queue bound to one device."""

    def __init__(self, context: Context, device: Device,
                 profiling: bool = True) -> None:
        context.check_device(device)
        self.context = context
        self.device = device
        self.profiling = profiling
        self._last_complete = 0.0

    # -- helpers ---------------------------------------------------------------

    @property
    def system(self):
        return self.context.system

    def _track(self, event: Event) -> Event:
        self._last_complete = max(self._last_complete, event.span.end)
        return event

    def _deps_ready(self, wait_for: Sequence[Event] | None) -> float:
        if not wait_for:
            return 0.0
        return max(e.span.end for e in wait_for)

    def _sanitizer_sync(self, buf: Buffer) -> None:
        """Make *buf*'s local bytes current before the sanitizer reads
        them.  In-process queues execute on the storage directly, so
        there is nothing to do; cluster queues override this to pull
        the worker-side copy (physical repair only — no virtual time)."""

    # -- transfers ----------------------------------------------------------------

    def enqueue_write_buffer(self, buf: Buffer, src: np.ndarray,
                             offset_bytes: int = 0,
                             wait_for: Sequence[Event] | None = None,
                             *, alias: bool = False,
                             zero_fill: bool = False) -> Event:
        """Upload host data into the buffer (``clEnqueueWriteBuffer``).

        The transfer is always charged on the device link; ``alias``
        and ``zero_fill`` only change the *physical* representation
        (zero-copy adoption / logical zeros — see
        :meth:`Buffer.write_bytes`), never the contents or the cost.
        """
        self._check_buffer(buf)
        ready = max(self.system.host_step(label="enqueueWrite")
                    + self.device.command_latency_s,
                    buf.ready_at, self._deps_ready(wait_for))
        nbytes = buf.write_bytes(src, offset_bytes, alias=alias,
                                 zero_fill=zero_fill)
        buf.ensure_resident(self.device)
        self.context.memory_stats.bytes_charged_h2d += nbytes
        span = self.device.schedule_transfer(nbytes, ready,
                                             f"H2D {nbytes}B")
        buf.ready_at = span.end
        buf.valid = {"host", self.device.id}
        return self._track(Event(self.system, span, kind="write"))

    def enqueue_read_buffer(self, buf: Buffer, dst: np.ndarray,
                            offset_bytes: int = 0,
                            wait_for: Sequence[Event] | None = None
                            ) -> Event:
        """Download buffer data into host memory (``clEnqueueReadBuffer``)."""
        self._check_buffer(buf)
        ready = max(self.system.host_step(label="enqueueRead")
                    + self.device.command_latency_s,
                    buf.ready_at, self._deps_ready(wait_for))
        nbytes = buf.read_bytes(dst, offset_bytes)
        self.context.memory_stats.bytes_charged_d2h += nbytes
        span = self.device.schedule_transfer(nbytes, ready,
                                             f"D2H {nbytes}B")
        buf.ready_at = span.end
        buf.valid.add("host")
        return self._track(Event(self.system, span, kind="read"))

    def enqueue_read_view(self, buf: Buffer, dtype,
                          count: int | None = None,
                          offset_bytes: int = 0,
                          wait_for: Sequence[Event] | None = None
                          ) -> tuple[Event, np.ndarray]:
        """Download returning a zero-copy read-only view of the data.

        Charged on the virtual timeline exactly like
        :meth:`enqueue_read_buffer` of the same byte range — only the
        physical host-side copy is elided.  The view reflects the
        buffer contents at call time under the simulator's eager
        in-order execution; callers must consume it before enqueueing
        further writes to the buffer.
        """
        self._check_buffer(buf)
        view = buf.view_readonly(dtype, offset_bytes, count)
        nbytes = view.nbytes
        ready = max(self.system.host_step(label="enqueueRead")
                    + self.device.command_latency_s,
                    buf.ready_at, self._deps_ready(wait_for))
        stats = self.context.memory_stats
        stats.bytes_charged_d2h += nbytes
        stats.downloads_elided += 1
        span = self.device.schedule_transfer(nbytes, ready,
                                             f"D2H {nbytes}B")
        buf.ready_at = span.end
        buf.valid.add("host")
        return self._track(Event(self.system, span, kind="read")), view

    def enqueue_copy_buffer(self, src: Buffer, dst: Buffer,
                            src_offset: int = 0, dst_offset: int = 0,
                            nbytes: int | None = None,
                            wait_for: Sequence[Event] | None = None
                            ) -> Event:
        """Device-side buffer copy (``clEnqueueCopyBuffer``).

        Charged on this queue's link (a same-device copy in real OpenCL
        is faster, but no code path in this library copies large
        same-device ranges, so one first-order rule suffices).
        """
        self._check_buffer(src)
        self._check_buffer(dst)
        if nbytes is None:
            nbytes = min(src.nbytes - src_offset, dst.nbytes - dst_offset)
        ready = max(self.system.host_step(label="enqueueCopy")
                    + self.device.command_latency_s,
                    src.ready_at, dst.ready_at, self._deps_ready(wait_for))
        if src is dst:
            # overlapping self-copy: stage through a scratch array
            tmp = np.empty(nbytes, dtype=np.uint8)
            src.read_bytes(tmp, src_offset)
            dst.write_bytes(tmp, dst_offset)
        else:
            dst.write_bytes(src.view_readonly(np.uint8, src_offset, nbytes),
                            dst_offset)
        dst.ensure_resident(self.device)
        self.context.memory_stats.bytes_charged_d2d += nbytes
        span = self.device.schedule_transfer(nbytes, ready,
                                             f"D2D {nbytes}B")
        src.ready_at = span.end
        dst.ready_at = span.end
        dst.valid = {self.device.id}
        return self._track(Event(self.system, span, kind="copy"))

    # -- kernels -----------------------------------------------------------------

    def enqueue_nd_range_kernel(self, kernel: Kernel,
                                global_size: Sequence[int],
                                local_size: Sequence[int] | None = None,
                                wait_for: Sequence[Event] | None = None,
                                scale_factor: float = 1.0,
                                ops_per_item: float | None = None,
                                bytes_per_item: float | None = None
                                ) -> Event:
        """Launch a kernel (``clEnqueueNDRangeKernel``).

        ``scale_factor`` lets layered code execute a downscaled problem
        while charging virtual time for the full-scale one (documented
        substitution for paper-scale workloads).  ``ops_per_item``/
        ``bytes_per_item`` override the kernel's static cost estimate.
        """
        if kernel.context is not self.context:
            raise InvalidCommand("kernel and queue belong to different "
                                 "contexts")
        gsize = tuple(int(g) for g in global_size)
        if not gsize or any(g <= 0 for g in gsize):
            raise InvalidCommand(f"invalid global size {global_size}")
        if local_size is None:
            lsize = tuple(1 for _ in gsize)
        else:
            lsize = tuple(int(l) for l in local_size)
            if len(lsize) != len(gsize) or any(l <= 0 for l in lsize):
                raise InvalidCommand(f"invalid local size {local_size}")
            if any(g % l for g, l in zip(gsize, lsize)):
                raise InvalidCommand(
                    f"global size {gsize} not divisible by local size "
                    f"{lsize}")
        args = kernel.bound_args()
        ready = max(self.system.host_step(label="enqueueNDRange")
                    + self.device.command_latency_s,
                    self._deps_ready(wait_for))
        bound: list = []
        buffers: list[tuple[Buffer, bool]] = []
        for param, arg in zip(kernel.params, args):
            if param.is_pointer:
                if not isinstance(arg, Buffer):
                    raise InvalidKernelArgs(
                        f"kernel {kernel.name}: parameter {param.name} "
                        f"expects a Buffer, got {type(arg).__name__}")
                self._check_buffer(arg)
                ready = max(ready, arg.ready_at)
                ready = max(ready, self._migrate_in(arg))
                # const pointers bind read-only views so aliased storage
                # stays shared; writable pointers trigger copy-on-write
                if param.is_const:
                    bound.append(arg.view_readonly(param.dtype))
                else:
                    bound.append(arg.view(param.dtype))
                buffers.append((arg, param.is_const))
            else:
                if isinstance(arg, Buffer):
                    raise InvalidKernelArgs(
                        f"kernel {kernel.name}: parameter {param.name} "
                        f"expects a scalar, got a Buffer")
                bound.append(arg)
        # execute for real (under the sanitizer when REPRO_SANITIZE=1)
        record = None
        sanitizer = _get_sanitizer()
        if sanitizer.sanitize_enabled():
            record = sanitizer.snapshot_launch(
                kernel, gsize, buffers, sync=self._sanitizer_sync)
        self._execute_kernel(kernel, bound, gsize, lsize, buffers)
        if record is not None:
            sanitizer.check_launch(record, sync=self._sanitizer_sync)
        # charge modelled time
        work_items = float(math.prod(gsize)) * scale_factor
        cost = KernelCost(
            work_items=work_items,
            ops_per_item=(ops_per_item if ops_per_item is not None
                          else kernel.ops_per_item),
            bytes_per_item=(bytes_per_item if bytes_per_item is not None
                            else kernel.bytes_per_item))
        duration = kernel_duration(self.device.spec, cost)
        span = self.system.timeline.schedule(
            self.device.queue_resource, duration, ready_at=ready,
            label=f"kernel:{kernel.name}")
        for buf, is_const in buffers:
            buf.ready_at = span.end
            if not is_const:
                buf.valid = {self.device.id}
        return self._track(Event(self.system, span, kind="kernel"))

    def _execute_kernel(self, kernel: Kernel, bound: list,
                        gsize: tuple, lsize: tuple,
                        buffers: list[tuple[Buffer, bool]]) -> None:
        """Run the kernel's launcher on the bound argument views.

        Subclasses may execute elsewhere — :mod:`repro.cluster` runs
        source-compiled kernels on a remote worker process — as long as
        the bound buffers end up holding the same results; the
        virtual-time charge in :meth:`enqueue_nd_range_kernel` is
        identical either way.
        """
        try:
            kernel.launcher(bound, gsize, lsize)
        except InterpError as exc:
            raise InterpError(
                f"kernel {kernel.name} ({kernel.engine} engine): "
                f"{exc}") from exc

    def _migrate_in(self, buf: Buffer) -> float:
        """Implicitly place a buffer on this device; returns ready time.

        Host-located data (created with ``buffer_from_array`` and never
        explicitly uploaded) and data last written by *another* device
        are transferred over this device's link, mirroring the implicit
        migration OpenCL performs for context-global buffers.
        """
        buf.ensure_resident(self.device)
        if self.device.id in buf.valid:
            return 0.0
        if buf.valid == {"host"} and not buf.initialized:
            # an output-only buffer: nothing to move
            buf.valid.add(self.device.id)
            return 0.0
        span = self.device.schedule_transfer(buf.nbytes, buf.ready_at,
                                             f"migrate {buf.nbytes}B")
        buf.ready_at = span.end
        buf.valid.add(self.device.id)
        return span.end

    # -- synchronization ------------------------------------------------------------

    def finish(self) -> None:
        """Block the virtual host until every enqueued command completes."""
        self.system.host_wait_until(self._last_complete)

    def flush(self) -> None:
        """No-op: commands are issued eagerly."""

    def _check_buffer(self, buf: Buffer) -> None:
        if buf.context is not self.context:
            raise InvalidCommand(
                "buffer and queue belong to different contexts")

    def __repr__(self) -> str:
        return f"<CommandQueue on {self.device!r}>"


def create_queue(context: Context, device: Device,
                 profiling: bool = True) -> CommandQueue:
    """Create the command queue appropriate for *device*.

    A device may advertise a specialized queue implementation via a
    ``queue_class`` attribute (cluster devices route their commands to
    a remote worker through :class:`repro.cluster.ClusterQueue`);
    ordinary simulated devices get a plain :class:`CommandQueue`.
    """
    queue_class = getattr(device, "queue_class", None) or CommandQueue
    return queue_class(context, device, profiling)
