"""Simulated device memory objects.

A :class:`Buffer` is a context-global memory object, like ``cl_mem``.
The simulator keeps one eager backing store (commands execute in
enqueue order, so a single logical copy is sufficient for values) and
separately tracks, per device, whether the buffer is *resident* there —
residency drives device-memory capacity accounting and implicit
migration costs, mirroring how OpenCL implementations lazily place
context-global buffers.

Layered code (SkelCL's distributions, the low-level OSEM programs)
creates one buffer per device part, so genuinely divergent per-device
contents (the paper's ``copy`` distribution) are represented by
distinct buffers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import InvalidCommand
from repro.ocl.context import Context

if TYPE_CHECKING:
    from repro.ocl.device import Device


class Buffer:
    """A simulated ``cl_mem`` buffer of ``nbytes`` bytes."""

    def __init__(self, context: Context, nbytes: int) -> None:
        if nbytes <= 0:
            raise InvalidCommand(f"invalid buffer size {nbytes}")
        self.context = context
        self.nbytes = int(nbytes)
        self._data = np.zeros(self.nbytes, dtype=np.uint8)
        #: device ids where the buffer is currently resident
        self._resident: set[int] = set()
        #: holders of an up-to-date copy: "host" and/or device ids.
        #: Writes shrink this to the writer; read-only uses grow it.
        self.valid: set[int | str] = {"host"}
        #: completion time of the last command that touched this buffer;
        #: later commands on any queue must not start before it
        self.ready_at = 0.0
        #: True once any data has been stored (drives implicit-upload cost)
        self.initialized = False
        self._released = False
        context._register_buffer(self)

    # -- residency / capacity ------------------------------------------------

    def ensure_resident(self, device: "Device") -> bool:
        """Account allocation on *device*; True if newly allocated."""
        self._check_alive()
        if device.id in self._resident:
            return False
        device.allocate(self.nbytes)
        self._resident.add(device.id)
        return True

    def is_resident(self, device: "Device") -> bool:
        return device.id in self._resident

    def release(self) -> None:
        """Free the buffer's device allocations (``clReleaseMemObject``)."""
        if self._released:
            return
        for device in self.context.devices:
            if device.id in self._resident:
                device.release(self.nbytes)
        self._resident.clear()
        self._released = True

    def _check_alive(self) -> None:
        if self._released:
            raise InvalidCommand("buffer used after release")

    # -- data access ----------------------------------------------------------

    def view(self, dtype, offset_bytes: int = 0,
             count: int | None = None) -> np.ndarray:
        """Typed view into the backing store (zero-copy)."""
        self._check_alive()
        dtype = np.dtype(dtype)
        if offset_bytes < 0 or offset_bytes % dtype.itemsize:
            raise InvalidCommand(
                f"offset {offset_bytes} misaligned for dtype {dtype}")
        avail = (self.nbytes - offset_bytes) // dtype.itemsize
        if count is None:
            count = avail
        if count < 0 or count > avail:
            raise InvalidCommand(
                f"view of {count} x {dtype} at offset {offset_bytes} "
                f"exceeds buffer of {self.nbytes} bytes")
        end = offset_bytes + count * dtype.itemsize
        return self._data[offset_bytes:end].view(dtype)

    def write_bytes(self, src: np.ndarray, offset_bytes: int = 0) -> int:
        """Copy *src* (any dtype) into the buffer; returns bytes written."""
        self._check_alive()
        raw = np.ascontiguousarray(src).view(np.uint8).reshape(-1)
        if offset_bytes < 0 or offset_bytes + raw.nbytes > self.nbytes:
            raise InvalidCommand(
                f"write of {raw.nbytes} bytes at offset {offset_bytes} "
                f"exceeds buffer of {self.nbytes} bytes")
        self._data[offset_bytes:offset_bytes + raw.nbytes] = raw
        self.initialized = True
        return raw.nbytes

    def read_bytes(self, dst: np.ndarray, offset_bytes: int = 0) -> int:
        """Copy buffer contents into *dst*; returns bytes read."""
        self._check_alive()
        if not isinstance(dst, np.ndarray):
            raise InvalidCommand("read destination must be a numpy array")
        if not dst.flags.c_contiguous:
            raise InvalidCommand("read destination must be contiguous")
        nbytes = dst.nbytes
        if offset_bytes < 0 or offset_bytes + nbytes > self.nbytes:
            raise InvalidCommand(
                f"read of {nbytes} bytes at offset {offset_bytes} exceeds "
                f"buffer of {self.nbytes} bytes")
        flat = dst.view(np.uint8).reshape(-1)
        flat[:] = self._data[offset_bytes:offset_bytes + nbytes]
        return nbytes

    def __repr__(self) -> str:
        return (f"<Buffer {self.nbytes}B resident_on={sorted(self._resident)} "
                f"valid_on={sorted(map(str, self.valid))}>")


def buffer_from_array(context: Context, array: np.ndarray) -> Buffer:
    """Create a buffer sized and pre-filled from a host array.

    Note: like ``CL_MEM_COPY_HOST_PTR``, the fill happens at creation
    and is charged as a host-side copy, not a device transfer; the
    transfer cost is charged when a queue first uses the buffer.
    """
    buf = Buffer(context, array.nbytes)
    buf.write_bytes(array)
    return buf
